#!/usr/bin/env bash
# Fleet smoke: a running ptb_serve coordinator, three ptb_worker
# processes over loopback — one SIGKILLed while it provably holds a
# lease, the survivors under seeded network chaos — then end-to-end
# assertions: the batch settles, the dead worker's lease expired and
# was requeued, nothing diverged, nothing failed, and every report the
# server hands back is byte-identical to a direct in-process run
# (submit_batch does the byte comparison).
#
# Parameters (env): SEED (chaos seed, default 11), RATE (fault rate,
# default 0.10), BIN_DIR (default target/release), WORK_DIR (scratch +
# logs, default target/fleet-smoke). Exit 0 on success; logs and the
# quarantine manifest stay in WORK_DIR for artifact upload on failure.
set -euo pipefail

SEED="${SEED:-11}"
RATE="${RATE:-0.10}"
BIN_DIR="${BIN_DIR:-target/release}"
WORK_DIR="${WORK_DIR:-target/fleet-smoke}"
ADDR="127.0.0.1:7910"

rm -rf "$WORK_DIR"
mkdir -p "$WORK_DIR"
FARM_DIR="$WORK_DIR/farm"

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== fleet smoke: seed=$SEED rate=$RATE =="

# A pure coordinator: every job must flow through the fleet endpoints.
"$BIN_DIR/ptb_serve" --addr "$ADDR" --farm-dir "$FARM_DIR" --no-local \
  --lease-ttl-ms 2000 --reaper-tick-ms 100 --max-claims 10 \
  >"$WORK_DIR/server.log" 2>&1 &
pids+=($!)
for _ in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null

# The victim parks between claim and simulate so the SIGKILL provably
# lands while its lease is live.
"$BIN_DIR/ptb_worker" --addr "$ADDR" --name victim --poll-ms 50 \
  --ttl-ms 2000 --hold-ms 60000 >"$WORK_DIR/victim.log" 2>&1 &
VICTIM_PID=$!
pids+=($VICTIM_PID)

# Volume batch (shorthand wire form) so the survivors have real work.
BATCH=$(curl -sf -X POST "http://$ADDR/v1/batches" -d '{"jobs": [
  {"bench": "fft",    "n_cores": 2, "scale": "Test"},
  {"bench": "radix",  "n_cores": 2, "scale": "Test"},
  {"bench": "cholesky", "n_cores": 2, "scale": "Test"},
  {"bench": "fft",    "n_cores": 2, "scale": "Test", "mechanism": "Dvfs"},
  {"bench": "radix",  "n_cores": 2, "scale": "Test", "mechanism": "Dvfs"},
  {"bench": "fft",    "n_cores": 4, "scale": "Test"}
]}' | python3 -c "import json,sys; print(json.load(sys.stdin)['batch'])")
echo "submitted batch $BATCH"

# Wait until the victim holds a lease, then SIGKILL it mid-job.
for _ in $(seq 1 100); do
  HELD=$("$BIN_DIR/farm_ctl" workers --addr "$ADDR" --json \
    | python3 -c "import json,sys; w=json.load(sys.stdin); print(sum(1 for l in w['leases'] if l['worker']=='victim'))")
  [ "$HELD" -ge 1 ] && break
  sleep 0.1
done
[ "$HELD" -ge 1 ] || { echo "victim never claimed a lease"; exit 1; }
kill -9 "$VICTIM_PID"
echo "victim SIGKILLed while holding a lease"

# Two survivors under seeded network chaos drain the queue, including
# the job the victim died holding.
"$BIN_DIR/ptb_worker" --addr "$ADDR" --name w2 --poll-ms 50 --ttl-ms 2000 \
  --chaos "$RATE" --chaos-seed "$SEED" >"$WORK_DIR/w2.log" 2>&1 &
pids+=($!)
"$BIN_DIR/ptb_worker" --addr "$ADDR" --name w3 --poll-ms 50 --ttl-ms 2000 \
  --chaos "$RATE" --chaos-seed "$((SEED + 100))" >"$WORK_DIR/w3.log" 2>&1 &
pids+=($!)

# submit_batch byte-compares its reports against direct in-process
# simulations — through the same chaos-ridden fleet.
"$BIN_DIR/examples/submit_batch" --addr "$ADDR"

# Poll the volume batch to completion.
for _ in $(seq 1 600); do
  DONE=$(curl -sf "http://$ADDR/v1/batches/$BATCH" \
    | python3 -c "import json,sys; print(int(json.load(sys.stdin)['done']))")
  [ "$DONE" = "1" ] && break
  sleep 0.5
done
[ "$DONE" = "1" ] || { echo "batch $BATCH did not settle"; exit 1; }

# The books must balance: the dead worker's lease expired and was
# requeued, nothing failed, nothing diverged, every job is done.
curl -sf "http://$ADDR/v1/metrics" | python3 -c "
import json, sys
m = json.load(sys.stdin)
assert m['serve.lease.expired'] >= 1, m
assert m['serve.lease.requeued'] >= 1, m
assert m['serve.lease.divergent'] == 0, m
assert m['serve.failed'] == 0, m
assert m['fleet.quarantined'] == 0, m
print('metrics OK: expired=%d requeued=%d stored=%d' % (
    m['serve.lease.expired'], m['serve.lease.requeued'],
    m['fleet.complete.stored']))
"
curl -sf "http://$ADDR/v1/status" | python3 -c "
import json, sys
s = json.load(sys.stdin)
assert s['divergent'] == [], s
assert s['jobs']['done'] == 6, s
assert s['jobs']['failed'] == 0 and s['jobs']['queued'] == 0, s
assert s['entries'] == 6, s
assert s['healthy'] is True, s
print('status OK: %d jobs done, %d store entries' % (s['jobs']['done'], s['entries']))
"
test ! -s "$FARM_DIR/failed.jsonl" || { echo "quarantine not empty"; exit 1; }

# The fleet view, for the CI log.
"$BIN_DIR/farm_ctl" workers --addr "$ADDR"
grep '\[fleet\]' "$WORK_DIR/server.log" || true
echo "fleet smoke OK (seed=$SEED rate=$RATE)"
