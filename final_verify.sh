#!/bin/sh
# Final verification pass: full test suite + benches, logs kept in-repo.
set -x
cd /root/repo
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt
echo FINAL_VERIFY_DONE
