#!/usr/bin/env bash
# Final verification pass: full test suite + benches, logs kept in-repo.
# Exits nonzero if any stage fails; partial logs are still written.
set -euo pipefail
cd /root/repo

cleanup() {
    find "${PTB_FARM_DIR:-target/farm}" -name '.*.tmp' -delete 2>/dev/null || true
}
trap cleanup EXIT

rc=0
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt || rc=1
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt || rc=1
# Throughput headline: simulated cycles per host second (quick matrix).
cargo run --release -q --bin sim_throughput -- \
    --quick --out /root/repo/BENCH_simthroughput.json 2>/dev/null \
    | grep '^SIM_THROUGHPUT:' || rc=1
if [ "$rc" -ne 0 ]; then
    echo "FINAL_VERIFY_FAILED (see test_output.txt / bench_output.txt)" >&2
    exit "$rc"
fi
echo FINAL_VERIFY_DONE
