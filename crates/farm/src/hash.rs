//! Stable content hashing for job keys.
//!
//! Keys must be identical across processes, platforms and time, so the
//! hash is computed over a *canonical* byte string — compact JSON with
//! sorted object keys (the serde stub's `Value` tree guarantees the
//! ordering) — with a dependency-free FNV-1a construction. Two
//! independent 64-bit lanes with different offset bases give a 128-bit
//! digest; and because [`crate::ResultStore::get`] additionally compares
//! the stored config tree against the requested one, even a hash
//! collision degrades to a re-simulation, never to a wrong result.

use ptb_core::SimConfig;
use ptb_workloads::WorkloadSpec;
use serde::{json, Map, Serialize, Value};

/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Standard FNV-1a 64-bit offset basis (lane 0).
const FNV_BASIS_A: u64 = 0xcbf2_9ce4_8422_2325;
/// Second lane basis: the standard basis xor a golden-ratio constant,
/// fixed forever (changing it invalidates every store).
const FNV_BASIS_B: u64 = FNV_BASIS_A ^ 0x9e37_79b9_7f4a_7c15;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit hex digest (32 lowercase hex chars) of `material`.
pub fn digest_hex(material: &[u8]) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a(material, FNV_BASIS_A),
        fnv1a(material, FNV_BASIS_B)
    )
}

/// The canonical key material for a job, as a JSON `Value` tree:
/// config, fully expanded workload spec (programs, profiles, seed), and
/// both format versions.
pub fn key_material(config: &SimConfig, spec: &WorkloadSpec) -> Value {
    let mut m = Map::new();
    m.insert("config".into(), config.to_value());
    m.insert("workload".into(), spec.to_value());
    m.insert(
        "report_format".into(),
        Value::U64(u64::from(ptb_core::report::REPORT_FORMAT)),
    );
    m.insert(
        "store_format".into(),
        Value::U64(u64::from(crate::STORE_FORMAT)),
    );
    Value::Object(m)
}

/// Content key of a `(config, workload)` pair.
pub fn job_key(config: &SimConfig, spec: &WorkloadSpec) -> String {
    digest_hex(json::to_string(&key_material(config, spec)).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptb_core::MechanismKind;
    use ptb_workloads::{Benchmark, Scale};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            n_cores: n,
            scale: Scale::Test,
            ..SimConfig::default()
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        assert_eq!(digest_hex(b"abc"), digest_hex(b"abc"));
        assert_ne!(digest_hex(b"abc"), digest_hex(b"abd"));
        assert_eq!(digest_hex(b"").len(), 32);
    }

    #[test]
    fn key_distinguishes_job_dimensions() {
        let spec2 = Benchmark::Fft.spec(2, Scale::Test);
        let spec4 = Benchmark::Fft.spec(4, Scale::Test);
        let radix2 = Benchmark::Radix.spec(2, Scale::Test);
        let base = job_key(&cfg(2), &spec2);
        assert_eq!(base, job_key(&cfg(2), &spec2), "deterministic");
        assert_ne!(base, job_key(&cfg(4), &spec4), "core count");
        assert_ne!(base, job_key(&cfg(2), &radix2), "benchmark");
        let dvfs = SimConfig {
            mechanism: MechanismKind::Dvfs,
            ..cfg(2)
        };
        assert_ne!(base, job_key(&dvfs, &spec2), "mechanism");
        let mut reseeded = spec2.clone();
        reseeded.seed ^= 1;
        assert_ne!(base, job_key(&cfg(2), &reseeded), "seed");
    }
}
