//! Typed failure taxonomy for the farm.
//!
//! Two layers:
//!
//! * [`FarmError`] — store/journal infrastructure failures (filesystem
//!   errors with their operation and path attached, malformed keys,
//!   reports that cannot be persisted). Replaces the `unwrap`/`expect`
//!   calls that used to panic the library on a corrupt store.
//! * [`JobError`] — per-job failures returned by the executor: a panic
//!   caught inside a worker, a simulation error, a wall-clock timeout,
//!   or an I/O error that survived retrying. One failed job no longer
//!   aborts a batch; it is reported alongside the other jobs' results
//!   and can be quarantined for later replay.

use std::io;
use std::path::{Path, PathBuf};

/// A store/journal infrastructure failure.
#[derive(Debug)]
pub enum FarmError {
    /// A filesystem operation failed.
    Io {
        /// What the farm was doing (`"write"`, `"rename"`, …).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A content key that cannot name a store entry (e.g. one that
    /// produces an entry path without a parent directory).
    BadKey {
        /// The offending key.
        key: String,
    },
    /// A report that does not survive the JSON round-trip losslessly
    /// and therefore cannot be cached (it is still correct in memory).
    Unstorable {
        /// Key of the job whose report was rejected.
        key: String,
        /// Why the round-trip failed.
        reason: String,
    },
}

impl FarmError {
    /// Wrap an [`io::Error`] with its operation and path.
    pub fn io(op: &'static str, path: impl AsRef<Path>, source: io::Error) -> Self {
        FarmError::Io {
            op,
            path: path.as_ref().to_path_buf(),
            source,
        }
    }

    /// True for failures that plausibly clear on retry (full disk being
    /// freed, interrupted syscalls, partial writes). Retrying a
    /// non-transient failure — a malformed key, an unstorable report —
    /// would fail identically every time.
    pub fn transient(&self) -> bool {
        match self {
            FarmError::Io { source, .. } => matches!(
                source.kind(),
                io::ErrorKind::StorageFull
                    | io::ErrorKind::Interrupted
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WriteZero
                    | io::ErrorKind::ResourceBusy
            ),
            FarmError::BadKey { .. } | FarmError::Unstorable { .. } => false,
        }
    }
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            FarmError::BadKey { key } => write!(f, "malformed store key {key:?}"),
            FarmError::Unstorable { key, reason } => {
                write!(f, "report for {key} cannot be persisted: {reason}")
            }
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Why one job of a batch produced no result.
///
/// Returned per-slot by [`crate::exec::run_work_stealing`] so a
/// poisoned simulation is isolated instead of aborting the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked inside its worker (caught with `catch_unwind`).
    /// Panics are never retried: a deterministic simulation that
    /// panicked once will panic again.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The job returned an error every time it ran.
    Failed {
        /// The final attempt's error.
        message: String,
        /// How many times it was attempted (> 1 only for transient
        /// failures under the retry policy).
        attempts: u32,
    },
    /// The job exceeded the per-job wall-clock watchdog.
    TimedOut {
        /// The final attempt's error (carries simulated-cycle progress).
        message: String,
    },
}

impl JobError {
    /// Short machine-readable class, used as the `kind` field of
    /// quarantine manifest entries.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Panicked { .. } => "panic",
            JobError::Failed { .. } => "error",
            JobError::TimedOut { .. } => "timeout",
        }
    }

    /// Attempts consumed (1 unless transient retries happened).
    pub fn attempts(&self) -> u32 {
        match self {
            JobError::Failed { attempts, .. } => *attempts,
            _ => 1,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked { message } => write!(f, "panicked: {message}"),
            JobError::Failed { message, attempts } => {
                write!(f, "failed after {attempts} attempt(s): {message}")
            }
            JobError::TimedOut { message } => write!(f, "timed out: {message}"),
        }
    }
}

impl std::error::Error for JobError {}
