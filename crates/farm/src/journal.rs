//! Append-only job journal for crash-safe resumption.
//!
//! One JSON object per line (`journal.jsonl`):
//!
//! * `{"submit":"<key>","job":{…}}` — the job was scheduled;
//! * `{"done":"<key>"}` — its result landed in the store.
//!
//! The pending set is recovered by replaying the lines in order: a
//! submit opens a job, a done closes it, and a re-submit after a done
//! re-opens it (the key was rescheduled). Lines are
//! written with a single `write` call each, so concurrent appends from
//! worker threads (behind a mutex) and sequential figure binaries
//! interleave at line granularity; a line truncated by a crash is
//! skipped by the loader rather than aborting recovery.

use crate::FarmJob;
use parking_lot::Mutex;
use serde::{json, Deserialize, Map, Serialize, Value};
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::Path;

/// Handle for appending to a journal file.
pub struct Journal {
    file: Mutex<std::fs::File>,
}

impl Journal {
    /// Open `path` for appending, creating it if absent.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Journal> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Journal {
            file: Mutex::new(file),
        })
    }

    /// Record that `job` (under `key`) has been scheduled.
    pub fn submit(&self, key: &str, job: &FarmJob) -> io::Result<()> {
        let mut m = Map::new();
        m.insert("submit".into(), Value::Str(key.to_owned()));
        m.insert("job".into(), job.to_value());
        self.append(&Value::Object(m))
    }

    /// Record that the job under `key` has completed and been stored.
    pub fn done(&self, key: &str) -> io::Result<()> {
        let mut m = Map::new();
        m.insert("done".into(), Value::Str(key.to_owned()));
        self.append(&Value::Object(m))
    }

    fn append(&self, v: &Value) -> io::Result<()> {
        let mut line = json::to_string(v);
        line.push('\n');
        let mut file = self.file.lock();
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Read the journal at `path` and return the jobs submitted but not
    /// done, in submission order.
    ///
    /// The journal is replayed sequentially: a `submit` opens a job, a
    /// later `done` closes it, and a submit *after* a done re-opens it
    /// (the key was rescheduled). A missing file means an empty pending
    /// set; unparsable (e.g. crash-truncated) lines are skipped.
    pub fn load_pending(path: impl AsRef<Path>) -> io::Result<Vec<(String, FarmJob)>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut order: Vec<String> = Vec::new();
        let mut open: HashMap<String, FarmJob> = HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = json::parse(line) else {
                continue; // truncated tail from a crash mid-write
            };
            if let Some(key) = v.get("done").and_then(Value::as_str) {
                open.remove(key);
            } else if let Some(key) = v.get("submit").and_then(Value::as_str) {
                if !open.contains_key(key) {
                    if let Some(job_v) = v.get("job") {
                        if let Ok(job) = FarmJob::from_value(job_v) {
                            order.push(key.to_owned());
                            open.insert(key.to_owned(), job);
                        }
                    }
                }
            }
        }
        // `order` can carry dead duplicates (submit → done → resubmit);
        // taking each key's job at its first live occurrence dedups.
        Ok(order
            .into_iter()
            .filter_map(|key| open.remove(&key).map(|job| (key, job)))
            .collect())
    }

    /// Reset the journal at `path` to empty (used once recovery
    /// information is no longer live).
    pub fn truncate(path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, b"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptb_core::SimConfig;
    use ptb_workloads::{Benchmark, Scale};

    fn job(bench: Benchmark) -> FarmJob {
        FarmJob::new(
            bench,
            SimConfig {
                n_cores: 2,
                scale: Scale::Test,
                ..SimConfig::default()
            },
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("ptb-journal-{}-{name}", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    #[test]
    fn pending_is_submits_minus_dones() {
        let path = tmp("pending");
        let j = Journal::open(&path).unwrap();
        let (a, b) = (job(Benchmark::Fft), job(Benchmark::Radix));
        j.submit(&a.key(), &a).unwrap();
        j.submit(&b.key(), &b).unwrap();
        j.done(&a.key()).unwrap();
        let pending = Journal::load_pending(&path).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, b.key());
        assert_eq!(pending[0].1.bench, Benchmark::Radix);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_skipped() {
        let path = tmp("truncated");
        let j = Journal::open(&path).unwrap();
        let a = job(Benchmark::Fft);
        j.submit(&a.key(), &a).unwrap();
        // Emulate a crash mid-append: garbage partial line at the end.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"submit\":\"deadbeef\",\"jo").unwrap();
        }
        let pending = Journal::load_pending(&path).unwrap();
        assert_eq!(pending.len(), 1, "valid entry survives, garbage skipped");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_means_empty() {
        let pending = Journal::load_pending(tmp("nonexistent-never-created")).unwrap();
        assert!(pending.is_empty());
    }
}
