//! Append-only job journal for crash-safe resumption.
//!
//! One JSON object per line (`journal.jsonl`):
//!
//! * `{"submit":"<key>","job":{…}}` — the job was scheduled;
//! * `{"done":"<key>"}` — its result landed in the store;
//! * `{"stats":{…}}` — batch outcome counters ([`JournalStats`]),
//!   ignored by pending-set recovery (and by loaders predating it,
//!   which skip objects without a `submit`/`done` key).
//!
//! The pending set is recovered by replaying the lines in order: a
//! submit opens a job, a done closes it, and a re-submit after a done
//! re-opens it (the key was rescheduled). Lines are
//! written with a single `write` call each, so concurrent appends from
//! worker threads (behind a mutex) and sequential figure binaries
//! interleave at line granularity; a line truncated by a crash is
//! skipped by the loader rather than aborting recovery.
//!
//! Appends flow through a [`FarmIo`] handle so the chaos suite can tear
//! lines and drop flushes; recovery must stay *idempotent* under torn
//! tails — replaying the same journal twice yields the same pending
//! set, and a torn record degrades to re-running its job, never to a
//! wrong result.

use crate::error::FarmError;
use crate::io::{FarmIo, RealIo};
use crate::FarmJob;
use parking_lot::Mutex;
use serde::{json, Deserialize, Map, Serialize, Value};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Batch outcome counters journalled as `{"stats":{…}}` lines so
/// `farm_ctl status` can report hit/miss traffic across processes.
///
/// The journal is compacted whenever a farm opens with nothing pending,
/// but [`Farm::open`](crate::Farm::open) carries the summed stats across
/// that truncation as a single aggregate line — so sums derived from
/// these records cover the farm's whole lifetime. `farm_ctl gc`
/// truncates without carrying and resets the ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalStats {
    /// Jobs served from the store.
    pub hits: u64,
    /// Jobs that had to simulate.
    pub misses: u64,
    /// Duplicate submissions collapsed.
    pub deduped: u64,
    /// Jobs simulated and persisted.
    pub completed: u64,
}

impl JournalStats {
    /// Component-wise sum.
    pub fn add(&mut self, other: &JournalStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.deduped += other.deduped;
        self.completed += other.completed;
    }

    /// True when every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == JournalStats::default()
    }
}

/// Handle for appending to a journal file.
pub struct Journal {
    file: Mutex<std::fs::File>,
    path: PathBuf,
    io: Arc<dyn FarmIo>,
}

impl Journal {
    /// Open `path` for appending on the real filesystem.
    pub fn open(path: impl AsRef<Path>) -> Result<Journal, FarmError> {
        Self::open_with(path, Arc::new(RealIo))
    }

    /// Open `path` for appending, creating it if absent, with all
    /// filesystem operations routed through `io`.
    pub fn open_with(path: impl AsRef<Path>, io: Arc<dyn FarmIo>) -> Result<Journal, FarmError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            io.create_dir_all(parent)
                .map_err(|e| FarmError::io("create journal dir", parent, e))?;
        }
        let file = io
            .open_append(&path)
            .map_err(|e| FarmError::io("open journal", &path, e))?;
        Ok(Journal {
            file: Mutex::new(file),
            path,
            io,
        })
    }

    /// Record that `job` (under `key`) has been scheduled.
    pub fn submit(&self, key: &str, job: &FarmJob) -> Result<(), FarmError> {
        let mut m = Map::new();
        m.insert("submit".into(), Value::Str(key.to_owned()));
        m.insert("job".into(), job.to_value());
        self.append(&Value::Object(m))
    }

    /// Record that the job under `key` has completed and been stored.
    pub fn done(&self, key: &str) -> Result<(), FarmError> {
        let mut m = Map::new();
        m.insert("done".into(), Value::Str(key.to_owned()));
        self.append(&Value::Object(m))
    }

    /// Append a batch's outcome counters as a `{"stats":{…}}` record
    /// (skipped when all-zero to keep the journal quiet).
    pub fn record_stats(&self, stats: &JournalStats) -> Result<(), FarmError> {
        if stats.is_empty() {
            return Ok(());
        }
        let mut m = Map::new();
        m.insert("stats".into(), stats.to_value());
        self.append(&Value::Object(m))
    }

    fn append(&self, v: &Value) -> Result<(), FarmError> {
        let mut line = json::to_string(v);
        line.push('\n');
        let mut file = self.file.lock();
        self.io
            .append_line(&mut file, &line, &self.path)
            .map_err(|e| FarmError::io("append journal", &self.path, e))
    }

    /// Read the journal at `path` (real filesystem) and return the jobs
    /// submitted but not done, in submission order.
    pub fn load_pending(path: impl AsRef<Path>) -> Result<Vec<(String, FarmJob)>, FarmError> {
        Self::load_pending_with(path, &RealIo)
    }

    /// [`Journal::load_pending`] through an explicit [`FarmIo`].
    ///
    /// The journal is replayed sequentially: a `submit` opens a job, a
    /// later `done` closes it, and a submit *after* a done re-opens it
    /// (the key was rescheduled). A missing file means an empty pending
    /// set; unparsable (e.g. crash-truncated or chaos-torn) lines are
    /// skipped. Replay is idempotent: loading the same bytes twice
    /// always yields the same pending set.
    pub fn load_pending_with(
        path: impl AsRef<Path>,
        io: &dyn FarmIo,
    ) -> Result<Vec<(String, FarmJob)>, FarmError> {
        let path = path.as_ref();
        let text = match io.read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(FarmError::io("read journal", path, e)),
        };
        let mut order: Vec<String> = Vec::new();
        let mut open: HashMap<String, FarmJob> = HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = json::parse(line) else {
                continue; // truncated tail from a crash mid-write
            };
            if let Some(key) = v.get("done").and_then(Value::as_str) {
                open.remove(key);
            } else if let Some(key) = v.get("submit").and_then(Value::as_str) {
                if !open.contains_key(key) {
                    if let Some(job_v) = v.get("job") {
                        if let Ok(job) = FarmJob::from_value(job_v) {
                            order.push(key.to_owned());
                            open.insert(key.to_owned(), job);
                        }
                    }
                }
            }
        }
        // `order` can carry dead duplicates (submit → done → resubmit);
        // taking each key's job at its first live occurrence dedups.
        Ok(order
            .into_iter()
            .filter_map(|key| open.remove(&key).map(|job| (key, job)))
            .collect())
    }

    /// Sum every `{"stats":{…}}` record in the journal at `path`
    /// through an explicit [`FarmIo`]. A missing file, and lines that
    /// are not stats records, contribute nothing. Open-time compaction
    /// re-appends the running total as one aggregate line, so the sum
    /// covers the farm's lifetime (until a `gc` resets it).
    pub fn load_stats_with(
        path: impl AsRef<Path>,
        io: &dyn FarmIo,
    ) -> Result<JournalStats, FarmError> {
        let path = path.as_ref();
        let text = match io.read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(JournalStats::default()),
            Err(e) => return Err(FarmError::io("read journal", path, e)),
        };
        let mut total = JournalStats::default();
        for line in text.lines() {
            let Ok(v) = json::parse(line.trim()) else {
                continue;
            };
            if let Some(s) = v.get("stats") {
                if let Ok(s) = JournalStats::from_value(s) {
                    total.add(&s);
                }
            }
        }
        Ok(total)
    }

    /// Best-effort writability probe: re-open the journal path for
    /// appending and report whether that succeeded. Used by liveness
    /// checks (`/healthz`) — a farm whose journal can no longer be
    /// opened cannot record crash-recovery information, so a server in
    /// that state should stop accepting work.
    pub fn probe_writable(&self) -> bool {
        self.io.open_append(&self.path).is_ok()
    }

    /// Reset the journal at `path` to empty (used once recovery
    /// information is no longer live).
    pub fn truncate(path: impl AsRef<Path>) -> Result<(), FarmError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| FarmError::io("create journal dir", parent, e))?;
        }
        std::fs::write(path, b"").map_err(|e| FarmError::io("truncate journal", path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{ChaosConfig, ChaosIo};
    use ptb_core::SimConfig;
    use ptb_workloads::{Benchmark, Scale};

    fn job(bench: Benchmark) -> FarmJob {
        FarmJob::new(
            bench,
            SimConfig {
                n_cores: 2,
                scale: Scale::Test,
                ..SimConfig::default()
            },
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("ptb-journal-{}-{name}", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    #[test]
    fn pending_is_submits_minus_dones() {
        let path = tmp("pending");
        let j = Journal::open(&path).unwrap();
        let (a, b) = (job(Benchmark::Fft), job(Benchmark::Radix));
        j.submit(&a.key(), &a).unwrap();
        j.submit(&b.key(), &b).unwrap();
        j.done(&a.key()).unwrap();
        let pending = Journal::load_pending(&path).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, b.key());
        assert_eq!(pending[0].1.bench, Benchmark::Radix);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_skipped() {
        let path = tmp("truncated");
        let j = Journal::open(&path).unwrap();
        let a = job(Benchmark::Fft);
        j.submit(&a.key(), &a).unwrap();
        // Emulate a crash mid-append: garbage partial line at the end.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"submit\":\"deadbeef\",\"jo").unwrap();
        }
        let pending = Journal::load_pending(&path).unwrap();
        assert_eq!(pending.len(), 1, "valid entry survives, garbage skipped");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_means_empty() {
        let pending = Journal::load_pending(tmp("nonexistent-never-created")).unwrap();
        assert!(pending.is_empty());
    }

    #[test]
    fn stats_records_sum_and_do_not_disturb_pending() {
        let path = tmp("stats");
        let j = Journal::open(&path).unwrap();
        let a = job(Benchmark::Fft);
        j.submit(&a.key(), &a).unwrap();
        j.record_stats(&JournalStats {
            hits: 2,
            misses: 1,
            deduped: 0,
            completed: 1,
        })
        .unwrap();
        j.record_stats(&JournalStats {
            hits: 1,
            misses: 3,
            deduped: 2,
            completed: 3,
        })
        .unwrap();
        // All-zero records are elided entirely.
        j.record_stats(&JournalStats::default()).unwrap();

        let total = Journal::load_stats_with(&path, &RealIo).unwrap();
        assert_eq!(total.hits, 3);
        assert_eq!(total.misses, 4);
        assert_eq!(total.deduped, 2);
        assert_eq!(total.completed, 4);
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines, 3, "submit + two non-empty stats records");

        // A loader that predates stats records still recovers pending.
        let pending = Journal::load_pending(&path).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, a.key());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_of_missing_file_are_zero() {
        let s = Journal::load_stats_with(tmp("stats-nonexistent"), &RealIo).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn chaos_torn_appends_degrade_to_skipped_lines() {
        let path = tmp("chaos-torn");
        let io = Arc::new(ChaosIo::new(ChaosConfig {
            torn_append: 1.0,
            ..ChaosConfig::uniform(11, 0.0)
        }));
        let j = Journal::open_with(&path, io.clone()).unwrap();
        let a = job(Benchmark::Fft);
        let err = j.submit(&a.key(), &a).unwrap_err();
        assert!(err.transient(), "torn append is a transient fault: {err}");
        assert_eq!(
            io.stats()
                .torn_appends
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // The torn prefix must not surface as a phantom pending job, and
        // replay must be idempotent.
        let once = Journal::load_pending(&path).unwrap();
        let twice = Journal::load_pending(&path).unwrap();
        assert!(once.is_empty());
        assert_eq!(once.len(), twice.len());
        std::fs::remove_file(&path).ok();
    }
}
