//! Content-addressed on-disk result store.
//!
//! Layout: one JSON file per result at `objects/<k₀k₁>/<key>.json`
//! (two-hex-char fan-out, git-style). Each file is a self-describing
//! envelope:
//!
//! ```json
//! {
//!   "store_format": 2,
//!   "report_format": 1,
//!   "key": "6f0c…",
//!   "job": { "bench": "fft", "config": { … } },
//!   "report": { … }
//! }
//! ```
//!
//! Writes are atomic (temp file + rename) and verified to round-trip
//! before they are published, so readers never observe a torn or
//! unparsable entry that was written by a healthy process. Reads
//! re-validate everything: the format versions, the embedded key
//! against the filename, and the embedded config against the request.
//!
//! All filesystem traffic flows through a [`FarmIo`] handle, so the
//! chaos test suite can inject ENOSPC, partial writes and read
//! corruption deterministically (see [`crate::io::ChaosIo`]); the store
//! must degrade — a failed write is reported as a typed
//! [`FarmError`], a corrupted read as a [`StoreLookup::Corrupt`] miss —
//! never panic or serve bad data.

use crate::error::FarmError;
use crate::io::{FarmIo, RealIo};
use crate::FarmJob;
use ptb_core::RunReport;
use serde::{json, Deserialize, Map, Serialize, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// On-disk format version of store envelopes. Bump on any layout or
/// semantics change; old entries then fail validation and re-run.
/// (v2: `SimConfig` gained the `spin_cycle_budget` livelock watchdog.)
pub const STORE_FORMAT: u32 = 2;

/// Outcome of a store lookup.
#[derive(Debug)]
pub enum StoreLookup {
    /// Entry present, valid, and matching the request.
    Hit(Box<RunReport>),
    /// No entry for this key.
    Miss,
    /// An entry exists but cannot be trusted (reason attached); the
    /// caller should remove it and re-simulate.
    Corrupt(String),
}

/// Size summary of a store, from [`ResultStore::disk_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreDiskStats {
    /// Entries present (readable or not).
    pub entries: u64,
    /// Total bytes across readable entries.
    pub total_bytes: u64,
}

/// Content-addressed store of [`RunReport`]s under a root directory.
pub struct ResultStore {
    dir: PathBuf,
    io: Arc<dyn FarmIo>,
}

impl ResultStore {
    /// Open (or create) a store rooted at `dir` on the real filesystem.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, FarmError> {
        Self::open_with(dir, Arc::new(RealIo))
    }

    /// Open (or create) a store rooted at `dir`, performing all
    /// filesystem operations through `io`.
    pub fn open_with(dir: impl AsRef<Path>, io: Arc<dyn FarmIo>) -> Result<Self, FarmError> {
        let dir = dir.as_ref().to_path_buf();
        io.create_dir_all(&dir)
            .map_err(|e| FarmError::io("create store dir", &dir, e))?;
        Ok(ResultStore { dir, io })
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key`.
    pub fn path_for(&self, key: &str) -> PathBuf {
        let prefix = key.get(0..2).unwrap_or("xx");
        self.dir.join(prefix).join(format!("{key}.json"))
    }

    /// Persist `report` as the result of `job` under `key`.
    ///
    /// The serialised envelope is parsed back before publication; a
    /// report that does not survive the JSON round-trip byte-for-byte
    /// identically (e.g. it contains a non-finite float) is rejected
    /// here — as [`FarmError::Unstorable`] — rather than poisoning the
    /// store. Filesystem failures come back as [`FarmError::Io`] with
    /// [`FarmError::transient`] distinguishing retryable ones; a failed
    /// write never leaves a partially-published entry because the
    /// temp-file + rename protocol cleans up after itself.
    pub fn put(&self, key: &str, job: &FarmJob, report: &RunReport) -> Result<(), FarmError> {
        let mut env = Map::new();
        env.insert("store_format".into(), Value::U64(u64::from(STORE_FORMAT)));
        env.insert(
            "report_format".into(),
            Value::U64(u64::from(ptb_core::report::REPORT_FORMAT)),
        );
        env.insert("key".into(), Value::Str(key.to_owned()));
        env.insert("job".into(), job.to_value());
        env.insert("report".into(), report.to_value());
        let text = json::to_string_pretty(&Value::Object(env));

        let unstorable = |reason: String| FarmError::Unstorable {
            key: key.to_owned(),
            reason,
        };
        let reparsed = json::parse(&text).map_err(|e| unstorable(e.to_string()))?;
        let report_v = reparsed
            .get("report")
            .ok_or_else(|| unstorable("lost report".into()))?;
        let back = RunReport::from_value(report_v).map_err(|e| unstorable(e.to_string()))?;
        if back.to_value() != report.to_value() {
            return Err(unstorable(
                "report does not round-trip losslessly through JSON".into(),
            ));
        }

        let path = self.path_for(key);
        let Some(parent) = path.parent() else {
            return Err(FarmError::BadKey {
                key: key.to_owned(),
            });
        };
        self.io
            .create_dir_all(parent)
            .map_err(|e| FarmError::io("create entry dir", parent, e))?;
        // The temp name must be a pure function of the key (plus the
        // pid, for cross-process safety): batch dedup guarantees one
        // writer per key, and a path that does not depend on thread
        // interleaving keeps ChaosIo's per-path fault sites replayable.
        let tmp = parent.join(format!(".{key}.{}.tmp", std::process::id()));
        if let Err(e) = self.io.write(&tmp, text.as_bytes()) {
            // A torn temp file is invisible to readers (dot-prefixed,
            // never renamed in); drop it and surface the typed error.
            self.io.remove_file(&tmp).ok();
            return Err(FarmError::io("write entry", &tmp, e));
        }
        if let Err(e) = self.io.rename(&tmp, &path) {
            self.io.remove_file(&tmp).ok();
            return Err(FarmError::io("publish entry", &path, e));
        }
        Ok(())
    }

    /// Look up `key`, validating the entry against the requesting `job`.
    pub fn get(&self, key: &str, job: &FarmJob) -> StoreLookup {
        let text = match self.io.read_to_string(&self.path_for(key)) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return StoreLookup::Miss,
            Err(e) => return StoreLookup::Corrupt(format!("unreadable: {e}")),
        };
        let (env_job, report_v) = match Self::validate_envelope(&text, key) {
            Ok(parts) => parts,
            Err(reason) => return StoreLookup::Corrupt(reason),
        };
        // The content hash already covers the config, but a 128-bit FNV
        // digest is not collision-proof: compare the stored config tree
        // against the request so a collision (or a manually edited
        // entry) re-runs instead of answering for the wrong point.
        if env_job.config.to_value() != job.config.to_value() {
            return StoreLookup::Corrupt("stored config does not match request".into());
        }
        if env_job.bench != job.bench {
            return StoreLookup::Corrupt("stored benchmark does not match request".into());
        }
        match RunReport::from_value(&report_v) {
            Ok(report) => StoreLookup::Hit(Box::new(report)),
            Err(e) => StoreLookup::Corrupt(format!("report: {e}")),
        }
    }

    /// Remove the entry for `key`, if present.
    pub fn remove(&self, key: &str) {
        self.io.remove_file(&self.path_for(key)).ok();
    }

    /// All keys currently present (including entries that would fail
    /// validation — use [`ResultStore::verify_entry`] to check them).
    pub fn keys(&self) -> Result<Vec<String>, FarmError> {
        let mut keys = Vec::new();
        let shards = self
            .io
            .read_dir_names(&self.dir)
            .map_err(|e| FarmError::io("list store", &self.dir, e))?;
        for shard in shards {
            let shard_path = self.dir.join(&shard);
            if !shard_path.is_dir() {
                continue;
            }
            let names = self
                .io
                .read_dir_names(&shard_path)
                .map_err(|e| FarmError::io("list shard", &shard_path, e))?;
            for name in names {
                if let Some(key) = name.strip_suffix(".json") {
                    if !key.starts_with('.') {
                        keys.push(key.to_owned());
                    }
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    /// Number of entries present.
    pub fn len(&self) -> usize {
        self.keys().map(|k| k.len()).unwrap_or(0)
    }

    /// Entry count and total on-disk bytes across all entries
    /// (unreadable entries contribute zero bytes but still count).
    pub fn disk_stats(&self) -> Result<StoreDiskStats, FarmError> {
        let mut stats = StoreDiskStats::default();
        for key in self.keys()? {
            stats.entries += 1;
            if let Ok(text) = self.io.read_to_string(&self.path_for(&key)) {
                stats.total_bytes += text.len() as u64;
            }
        }
        Ok(stats)
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Self-validate the entry stored under `key` without an external
    /// request to compare against: checks formats, that the embedded key
    /// matches the filename, that the embedded job re-hashes to that
    /// key, and that the report deserialises.
    pub fn verify_entry(&self, key: &str) -> Result<(), String> {
        let text = self
            .io
            .read_to_string(&self.path_for(key))
            .map_err(|e| format!("unreadable: {e}"))?;
        let (job, report_v) = Self::validate_envelope(&text, key)?;
        if job.key() != key {
            return Err("embedded job does not hash to this key".into());
        }
        RunReport::from_value(&report_v).map_err(|e| format!("report: {e}"))?;
        Ok(())
    }

    /// Shared envelope checks: parse, format versions, embedded key.
    /// Returns the embedded job and the raw report value.
    fn validate_envelope(text: &str, key: &str) -> Result<(FarmJob, Value), String> {
        let v = json::parse(text).map_err(|e| format!("parse: {e}"))?;
        let fmt = v.get("store_format").and_then(Value::as_u64);
        if fmt != Some(u64::from(STORE_FORMAT)) {
            return Err(format!(
                "store format {fmt:?} != current {STORE_FORMAT} (stale)"
            ));
        }
        let rfmt = v.get("report_format").and_then(Value::as_u64);
        if rfmt != Some(u64::from(ptb_core::report::REPORT_FORMAT)) {
            return Err(format!(
                "report format {rfmt:?} != current {} (stale)",
                ptb_core::report::REPORT_FORMAT
            ));
        }
        if v.get("key").and_then(Value::as_str) != Some(key) {
            return Err("embedded key does not match filename".into());
        }
        let job_v = v.get("job").ok_or("missing job")?;
        let job = FarmJob::from_value(job_v).map_err(|e| format!("job: {e}"))?;
        let report_v = v.get("report").ok_or("missing report")?.clone();
        Ok((job, report_v))
    }
}
