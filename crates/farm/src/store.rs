//! Content-addressed on-disk result store.
//!
//! Layout: one JSON file per result at `objects/<k₀k₁>/<key>.json`
//! (two-hex-char fan-out, git-style). Each file is a self-describing
//! envelope:
//!
//! ```json
//! {
//!   "store_format": 1,
//!   "report_format": 1,
//!   "key": "6f0c…",
//!   "job": { "bench": "fft", "config": { … } },
//!   "report": { … }
//! }
//! ```
//!
//! Writes are atomic (temp file + rename) and verified to round-trip
//! before they are published, so readers never observe a torn or
//! unparsable entry that was written by a healthy process. Reads
//! re-validate everything: the format versions, the embedded key
//! against the filename, and the embedded config against the request.

use crate::FarmJob;
use ptb_core::RunReport;
use serde::{json, Deserialize, Map, Serialize, Value};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk format version of store envelopes. Bump on any layout or
/// semantics change; old entries then fail validation and re-run.
pub const STORE_FORMAT: u32 = 1;

/// Outcome of a store lookup.
#[derive(Debug)]
pub enum StoreLookup {
    /// Entry present, valid, and matching the request.
    Hit(Box<RunReport>),
    /// No entry for this key.
    Miss,
    /// An entry exists but cannot be trusted (reason attached); the
    /// caller should remove it and re-simulate.
    Corrupt(String),
}

/// Content-addressed store of [`RunReport`]s under a root directory.
pub struct ResultStore {
    dir: PathBuf,
    tmp_seq: AtomicU64,
}

impl ResultStore {
    /// Open (or create) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key`.
    pub fn path_for(&self, key: &str) -> PathBuf {
        let prefix = key.get(0..2).unwrap_or("xx");
        self.dir.join(prefix).join(format!("{key}.json"))
    }

    /// Persist `report` as the result of `job` under `key`.
    ///
    /// The serialised envelope is parsed back before publication; a
    /// report that does not survive the JSON round-trip byte-for-byte
    /// identically (e.g. it contains a non-finite float) is rejected
    /// here rather than poisoning the store.
    pub fn put(&self, key: &str, job: &FarmJob, report: &RunReport) -> io::Result<()> {
        let mut env = Map::new();
        env.insert("store_format".into(), Value::U64(u64::from(STORE_FORMAT)));
        env.insert(
            "report_format".into(),
            Value::U64(u64::from(ptb_core::report::REPORT_FORMAT)),
        );
        env.insert("key".into(), Value::Str(key.to_owned()));
        env.insert("job".into(), job.to_value());
        env.insert("report".into(), report.to_value());
        let text = json::to_string_pretty(&Value::Object(env));

        let reparsed = json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let report_v = reparsed
            .get("report")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "lost report"))?;
        let back = RunReport::from_value(report_v)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if back.to_value() != report.to_value() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "report does not round-trip losslessly through JSON",
            ));
        }

        let path = self.path_for(key);
        let parent = path.parent().expect("entry path has a parent");
        std::fs::create_dir_all(parent)?;
        let tmp = parent.join(format!(
            ".{key}.{}.{}.tmp",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &text)?;
        let renamed = std::fs::rename(&tmp, &path);
        if renamed.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        renamed
    }

    /// Look up `key`, validating the entry against the requesting `job`.
    pub fn get(&self, key: &str, job: &FarmJob) -> StoreLookup {
        let text = match std::fs::read_to_string(self.path_for(key)) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return StoreLookup::Miss,
            Err(e) => return StoreLookup::Corrupt(format!("unreadable: {e}")),
        };
        let (env_job, report_v) = match Self::validate_envelope(&text, key) {
            Ok(parts) => parts,
            Err(reason) => return StoreLookup::Corrupt(reason),
        };
        // The content hash already covers the config, but a 128-bit FNV
        // digest is not collision-proof: compare the stored config tree
        // against the request so a collision (or a manually edited
        // entry) re-runs instead of answering for the wrong point.
        if env_job.config.to_value() != job.config.to_value() {
            return StoreLookup::Corrupt("stored config does not match request".into());
        }
        if env_job.bench != job.bench {
            return StoreLookup::Corrupt("stored benchmark does not match request".into());
        }
        match RunReport::from_value(&report_v) {
            Ok(report) => StoreLookup::Hit(Box::new(report)),
            Err(e) => StoreLookup::Corrupt(format!("report: {e}")),
        }
    }

    /// Remove the entry for `key`, if present.
    pub fn remove(&self, key: &str) {
        std::fs::remove_file(self.path_for(key)).ok();
    }

    /// All keys currently present (including entries that would fail
    /// validation — use [`ResultStore::verify_entry`] to check them).
    pub fn keys(&self) -> io::Result<Vec<String>> {
        let mut keys = Vec::new();
        for shard in std::fs::read_dir(&self.dir)? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(&shard)? {
                let name = entry?.file_name();
                let name = name.to_string_lossy();
                if let Some(key) = name.strip_suffix(".json") {
                    if !key.starts_with('.') {
                        keys.push(key.to_owned());
                    }
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    /// Number of entries present.
    pub fn len(&self) -> usize {
        self.keys().map(|k| k.len()).unwrap_or(0)
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Self-validate the entry stored under `key` without an external
    /// request to compare against: checks formats, that the embedded key
    /// matches the filename, that the embedded job re-hashes to that
    /// key, and that the report deserialises.
    pub fn verify_entry(&self, key: &str) -> Result<(), String> {
        let text =
            std::fs::read_to_string(self.path_for(key)).map_err(|e| format!("unreadable: {e}"))?;
        let (job, report_v) = Self::validate_envelope(&text, key)?;
        if job.key() != key {
            return Err("embedded job does not hash to this key".into());
        }
        RunReport::from_value(&report_v).map_err(|e| format!("report: {e}"))?;
        Ok(())
    }

    /// Shared envelope checks: parse, format versions, embedded key.
    /// Returns the embedded job and the raw report value.
    fn validate_envelope(text: &str, key: &str) -> Result<(FarmJob, Value), String> {
        let v = json::parse(text).map_err(|e| format!("parse: {e}"))?;
        let fmt = v.get("store_format").and_then(Value::as_u64);
        if fmt != Some(u64::from(STORE_FORMAT)) {
            return Err(format!(
                "store format {fmt:?} != current {STORE_FORMAT} (stale)"
            ));
        }
        let rfmt = v.get("report_format").and_then(Value::as_u64);
        if rfmt != Some(u64::from(ptb_core::report::REPORT_FORMAT)) {
            return Err(format!(
                "report format {rfmt:?} != current {} (stale)",
                ptb_core::report::REPORT_FORMAT
            ));
        }
        if v.get("key").and_then(Value::as_str) != Some(key) {
            return Err("embedded key does not match filename".into());
        }
        let job_v = v.get("job").ok_or("missing job")?;
        let job = FarmJob::from_value(job_v).map_err(|e| format!("job: {e}"))?;
        let report_v = v.get("report").ok_or("missing report")?.clone();
        Ok((job, report_v))
    }
}
