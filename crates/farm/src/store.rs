//! Content-addressed on-disk result store.
//!
//! Layout: one entry file per result at `objects/<k₀k₁>/<key>.<ext>`
//! (two-hex-char fan-out, git-style), in one of two interchangeable
//! representations of the same envelope:
//!
//! * **JSON** (`.json`, the default) — pretty-printed, human-greppable:
//!
//!   ```json
//!   {
//!     "store_format": 2,
//!     "report_format": 1,
//!     "key": "6f0c…",
//!     "job": { "bench": "fft", "config": { … } },
//!     "report": { … }
//!   }
//!   ```
//!
//! * **Binary** (`.bin`) — the compact [`crate::binfmt`] frame
//!   (versioned, length-prefixed, FNV-1a-checksummed) for service-scale
//!   stores where per-read parse cost matters.
//!
//! The representation is a property of the *store handle*
//! ([`EntryFormat`], chosen at open), not of the format version:
//! both encode `STORE_FORMAT` envelopes, readers accept either (and the
//! pre-shard flat legacy layout `objects/<key>.json`), and
//! [`ResultStore::migrate`] rewrites a store from one to the other in
//! place.
//!
//! A packed index file (`objects/index.bin`, see [`crate::index`])
//! mirrors the entry population: rebuilt on open when absent or
//! unreadable, appended on every put/remove. It accelerates
//! whole-store queries ([`ResultStore::disk_stats`]) from an
//! O(entries) directory walk to one in-memory map read; it is never
//! consulted on the entry read path, so a stale index cannot produce a
//! wrong report.
//!
//! Writes are atomic (temp file + rename) and verified to round-trip
//! before they are published, so readers never observe a torn or
//! unparsable entry that was written by a healthy process. Reads
//! re-validate everything: the format versions, the embedded key
//! against the filename, and the embedded config against the request.
//!
//! All filesystem traffic flows through a [`FarmIo`] handle, so the
//! chaos test suite can inject ENOSPC, partial writes and read
//! corruption deterministically (see [`crate::io::ChaosIo`]); the store
//! must degrade — a failed write is reported as a typed
//! [`FarmError`], a corrupted read as a [`StoreLookup::Corrupt`] miss —
//! never panic or serve bad data.

use crate::binfmt;
use crate::error::FarmError;
use crate::index::{IndexEntry, IndexRecord, IndexState};
use crate::io::{FarmIo, RealIo};
use crate::FarmJob;
use ptb_core::RunReport;
use serde::{json, Deserialize, Map, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// On-disk format version of store envelopes. Bump on any layout or
/// semantics change; old entries then fail validation and re-run.
/// (v2: `SimConfig` gained the `spin_cycle_budget` livelock watchdog.)
/// The JSON/binary representation choice is *not* versioned here: both
/// encode the same envelope, so switching representations must not
/// invalidate existing entries or change job keys.
pub const STORE_FORMAT: u32 = 2;

/// Name of the packed index file at the store root.
pub const INDEX_FILE: &str = "index.bin";

/// On-disk representation of store entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EntryFormat {
    /// Pretty-printed JSON envelope (`.json`) — human-greppable.
    #[default]
    Json,
    /// Compact checksummed binary envelope (`.bin`) — service scale.
    Binary,
}

impl EntryFormat {
    /// File extension of entries in this representation.
    pub fn ext(self) -> &'static str {
        match self {
            EntryFormat::Json => "json",
            EntryFormat::Binary => "bin",
        }
    }

    /// The other representation.
    pub fn other(self) -> EntryFormat {
        match self {
            EntryFormat::Json => EntryFormat::Binary,
            EntryFormat::Binary => EntryFormat::Json,
        }
    }

    /// Parse a user-facing name (`json`, `bin`, `binary`).
    pub fn parse(s: &str) -> Option<EntryFormat> {
        match s.to_ascii_lowercase().as_str() {
            "json" => Some(EntryFormat::Json),
            "bin" | "binary" => Some(EntryFormat::Binary),
            _ => None,
        }
    }
}

impl std::fmt::Display for EntryFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EntryFormat::Json => "json",
            EntryFormat::Binary => "binary",
        })
    }
}

/// Outcome of a store lookup.
#[derive(Debug)]
pub enum StoreLookup {
    /// Entry present, valid, and matching the request.
    Hit(Box<RunReport>),
    /// No entry for this key.
    Miss,
    /// An entry exists but cannot be trusted (reason attached); the
    /// caller should remove it and re-simulate.
    Corrupt(String),
}

/// Size summary of a store, from [`ResultStore::disk_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreDiskStats {
    /// Entries present (readable or not).
    pub entries: u64,
    /// Total bytes across readable entries.
    pub total_bytes: u64,
    /// Distinct two-hex-char shard directories in use.
    pub shards: u64,
}

/// Outcome of a [`ResultStore::migrate`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrateReport {
    /// Entries rewritten into the target representation (including
    /// flat-legacy entries moved into their shard directory).
    pub converted: u64,
    /// Entries already in the target representation, left in place.
    pub already: u64,
    /// Entries that failed validation and were removed.
    pub dropped: u64,
}

/// In-memory mirror of the packed index plus its append handle.
struct IndexHandle {
    state: IndexState,
    file: Option<File>,
}

/// Content-addressed store of [`RunReport`]s under a root directory.
pub struct ResultStore {
    dir: PathBuf,
    io: Arc<dyn FarmIo>,
    format: EntryFormat,
    index: Mutex<IndexHandle>,
    /// Per-key write sequence numbers: the temp-file name discriminator
    /// that keeps two same-key writers in one process from colliding
    /// (see [`ResultStore::put`]).
    write_seq: Mutex<HashMap<String, u64>>,
}

impl ResultStore {
    /// Open (or create) a store rooted at `dir` on the real filesystem,
    /// writing JSON entries.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, FarmError> {
        Self::open_with(dir, Arc::new(RealIo))
    }

    /// Open (or create) a store rooted at `dir`, performing all
    /// filesystem operations through `io`, writing JSON entries.
    pub fn open_with(dir: impl AsRef<Path>, io: Arc<dyn FarmIo>) -> Result<Self, FarmError> {
        Self::open_with_format(dir, io, EntryFormat::Json)
    }

    /// Open (or create) a store rooted at `dir`, writing entries in
    /// `format`. Either representation (plus the flat legacy layout) is
    /// always *read*; `format` only selects what new entries look like.
    pub fn open_with_format(
        dir: impl AsRef<Path>,
        io: Arc<dyn FarmIo>,
        format: EntryFormat,
    ) -> Result<Self, FarmError> {
        let dir = dir.as_ref().to_path_buf();
        io.create_dir_all(&dir)
            .map_err(|e| FarmError::io("create store dir", &dir, e))?;
        let store = ResultStore {
            dir,
            io,
            format,
            index: Mutex::new(IndexHandle {
                state: IndexState::default(),
                file: None,
            }),
            write_seq: Mutex::new(HashMap::new()),
        };
        store.load_or_rebuild_index();
        Ok(store)
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The representation new entries are written in.
    pub fn format(&self) -> EntryFormat {
        self.format
    }

    /// Path of the packed index file.
    pub fn index_path(&self) -> PathBuf {
        self.dir.join(INDEX_FILE)
    }

    /// Path the entry for `key` is (or would be) written to, in this
    /// handle's write representation.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.path_in(key, self.format)
    }

    /// Sharded entry path for `key` in `format`.
    fn path_in(&self, key: &str, format: EntryFormat) -> PathBuf {
        let prefix = key.get(0..2).unwrap_or("xx");
        self.dir
            .join(prefix)
            .join(format!("{key}.{}", format.ext()))
    }

    /// Pre-shard flat legacy path for `key` (always JSON).
    fn flat_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Read-path candidates for `key`, most-preferred first.
    fn candidates(&self, key: &str) -> [(PathBuf, EntryFormat); 3] {
        [
            (self.path_in(key, self.format), self.format),
            (self.path_in(key, self.format.other()), self.format.other()),
            (self.flat_path(key), EntryFormat::Json),
        ]
    }

    /// Persist `report` as the result of `job` under `key`.
    ///
    /// The serialised envelope is parsed back before publication; a
    /// report that does not survive the round-trip byte-for-byte
    /// identically (e.g. it contains a non-finite float) is rejected
    /// here — as [`FarmError::Unstorable`] — rather than poisoning the
    /// store. Filesystem failures come back as [`FarmError::Io`] with
    /// [`FarmError::transient`] distinguishing retryable ones; a failed
    /// write never leaves a partially-published entry because the
    /// temp-file + rename protocol cleans up after itself.
    pub fn put(&self, key: &str, job: &FarmJob, report: &RunReport) -> Result<(), FarmError> {
        self.put_in(key, job, report, self.format)
    }

    /// [`ResultStore::put`] with an explicit representation (the
    /// migration path writes the target format regardless of the
    /// handle's default).
    fn put_in(
        &self,
        key: &str,
        job: &FarmJob,
        report: &RunReport,
        format: EntryFormat,
    ) -> Result<(), FarmError> {
        let unstorable = |reason: String| FarmError::Unstorable {
            key: key.to_owned(),
            reason,
        };
        let bytes = match format {
            EntryFormat::Json => {
                let mut env = Map::new();
                env.insert("store_format".into(), Value::U64(u64::from(STORE_FORMAT)));
                env.insert(
                    "report_format".into(),
                    Value::U64(u64::from(ptb_core::report::REPORT_FORMAT)),
                );
                env.insert("key".into(), Value::Str(key.to_owned()));
                env.insert("job".into(), job.to_value());
                env.insert("report".into(), report.to_value());
                let text = json::to_string_pretty(&Value::Object(env));
                let reparsed = json::parse(&text).map_err(|e| unstorable(e.to_string()))?;
                let report_v = reparsed
                    .get("report")
                    .ok_or_else(|| unstorable("lost report".into()))?;
                Self::check_round_trip(report_v, report).map_err(unstorable)?;
                text.into_bytes()
            }
            EntryFormat::Binary => {
                let job_json = json::to_string(&job.to_value());
                let report_json = json::to_string(&report.to_value());
                let buf = binfmt::encode(key, &job_json, &report_json);
                let env = binfmt::decode(&buf).map_err(&unstorable)?;
                let report_v =
                    json::parse(env.report_json).map_err(|e| unstorable(e.to_string()))?;
                Self::check_round_trip(&report_v, report).map_err(unstorable)?;
                buf
            }
        };

        let path = self.path_in(key, format);
        let Some(parent) = path.parent() else {
            return Err(FarmError::BadKey {
                key: key.to_owned(),
            });
        };
        self.io
            .create_dir_all(parent)
            .map_err(|e| FarmError::io("create entry dir", parent, e))?;
        // The temp name carries a per-key sequence number besides the
        // pid: two threads of one process writing the same key (batch
        // dedup misses cross-`Farm`-handle and serve-vs-CLI races) must
        // not share a temp path, or one writer renames the other's
        // half-written bytes into place. A *per-key* counter — not a
        // global one — keeps the path a pure function of (key, attempt
        // number), so ChaosIo's per-path fault sites stay replayable
        // regardless of how unrelated keys interleave.
        let seq = {
            let mut m = self.write_seq.lock().expect("write seq lock");
            let n = m.entry(key.to_owned()).or_insert(0);
            *n += 1;
            *n
        };
        let tmp = parent.join(format!(".{key}.{}.{seq}.tmp", std::process::id()));
        if let Err(e) = self.io.write(&tmp, &bytes) {
            // A torn temp file is invisible to readers (dot-prefixed,
            // never renamed in); drop it and surface the typed error.
            self.io.remove_file(&tmp).ok();
            return Err(FarmError::io("write entry", &tmp, e));
        }
        if let Err(e) = self.io.rename(&tmp, &path) {
            self.io.remove_file(&tmp).ok();
            return Err(FarmError::io("publish entry", &path, e));
        }
        // Retire stale sibling representations so one key never counts
        // (or answers) twice.
        self.io.remove_file(&self.path_in(key, format.other())).ok();
        self.io.remove_file(&self.flat_path(key)).ok();
        self.note_put(key, bytes.len() as u64, format == EntryFormat::Binary);
        Ok(())
    }

    /// Round-trip check shared by both representations: the reparsed
    /// report value must deserialise back to an identical report.
    fn check_round_trip(report_v: &Value, report: &RunReport) -> Result<(), String> {
        let back = RunReport::from_value(report_v).map_err(|e| e.to_string())?;
        if back.to_value() != report.to_value() {
            return Err("report does not round-trip losslessly".into());
        }
        Ok(())
    }

    /// Look up `key`, validating the entry against the requesting `job`.
    pub fn get(&self, key: &str, job: &FarmJob) -> StoreLookup {
        let (env_job, report_v) = match self.read_validated(key) {
            Ok(Some(parts)) => parts,
            Ok(None) => return StoreLookup::Miss,
            Err(reason) => return StoreLookup::Corrupt(reason),
        };
        // The content hash already covers the config, but a 128-bit FNV
        // digest is not collision-proof: compare the stored config tree
        // against the request so a collision (or a manually edited
        // entry) re-runs instead of answering for the wrong point.
        if env_job.config.to_value() != job.config.to_value() {
            return StoreLookup::Corrupt("stored config does not match request".into());
        }
        if env_job.bench != job.bench {
            return StoreLookup::Corrupt("stored benchmark does not match request".into());
        }
        match RunReport::from_value(&report_v) {
            Ok(report) => StoreLookup::Hit(Box::new(report)),
            Err(e) => StoreLookup::Corrupt(format!("report: {e}")),
        }
    }

    /// Load the entry for `key` without an external request to compare
    /// against — the serving path's report fetch. Returns the embedded
    /// job and report; `Ok(None)` when absent, `Err` when present but
    /// invalid.
    pub fn read_entry(&self, key: &str) -> Result<Option<(FarmJob, RunReport)>, String> {
        let Some((job, report_v)) = self.read_validated(key)? else {
            return Ok(None);
        };
        let report = RunReport::from_value(&report_v).map_err(|e| format!("report: {e}"))?;
        Ok(Some((job, report)))
    }

    /// Remove the entry for `key`, if present (all representations).
    pub fn remove(&self, key: &str) {
        for (path, _) in self.candidates(key) {
            self.io.remove_file(&path).ok();
        }
        self.note_remove(key);
    }

    /// All keys currently present (including entries that would fail
    /// validation — use [`ResultStore::verify_entry`] to check them).
    /// Always a filesystem walk: this is the authoritative listing the
    /// index itself is rebuilt from.
    pub fn keys(&self) -> Result<Vec<String>, FarmError> {
        let mut keys = BTreeSet::new();
        for (key, _, _) in self.disk_entries()? {
            keys.insert(key);
        }
        Ok(keys.into_iter().collect())
    }

    /// Walk the store directory: every entry file as
    /// `(key, path, format)`, shard directories and the flat legacy
    /// root alike. A key stored in both representations yields two
    /// tuples.
    fn disk_entries(&self) -> Result<Vec<(String, PathBuf, EntryFormat)>, FarmError> {
        let mut out = Vec::new();
        let names = self
            .io
            .read_dir_names(&self.dir)
            .map_err(|e| FarmError::io("list store", &self.dir, e))?;
        for name in names {
            let path = self.dir.join(&name);
            if path.is_dir() {
                let entries = self
                    .io
                    .read_dir_names(&path)
                    .map_err(|e| FarmError::io("list shard", &path, e))?;
                for entry in entries {
                    if entry.starts_with('.') {
                        continue;
                    }
                    if let Some(key) = entry.strip_suffix(".json") {
                        out.push((key.to_owned(), path.join(&entry), EntryFormat::Json));
                    } else if let Some(key) = entry.strip_suffix(".bin") {
                        out.push((key.to_owned(), path.join(&entry), EntryFormat::Binary));
                    }
                }
            } else if !name.starts_with('.') {
                // Flat legacy layout: `objects/<key>.json` at the root.
                // (The packed index `index.bin` is not a `.json` file.)
                if let Some(key) = name.strip_suffix(".json") {
                    out.push((key.to_owned(), path, EntryFormat::Json));
                }
            }
        }
        Ok(out)
    }

    /// Number of entries present (filesystem walk; see
    /// [`ResultStore::disk_stats`] for the indexed fast path).
    pub fn len(&self) -> usize {
        self.keys().map(|k| k.len()).unwrap_or(0)
    }

    /// Entry count, total bytes, and shard fan-out — answered from the
    /// packed index (O(1) in entry count after open), not a directory
    /// walk. The index is maintained by this handle's puts/removes and
    /// rebuilt on open, so external tampering between opens is not
    /// reflected until the next open, `verify`, or
    /// [`ResultStore::rebuild_index`].
    pub fn disk_stats(&self) -> Result<StoreDiskStats, FarmError> {
        let handle = self.index.lock().expect("index lock");
        let mut shards = BTreeSet::new();
        for key in handle.state.live.keys() {
            shards.insert(key.get(0..2).unwrap_or("xx").to_owned());
        }
        Ok(StoreDiskStats {
            entries: handle.state.live.len() as u64,
            total_bytes: handle.state.total_bytes(),
            shards: shards.len() as u64,
        })
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Self-validate the entry stored under `key` without an external
    /// request to compare against: checks formats, that the embedded key
    /// matches the filename, that the embedded job re-hashes to that
    /// key, and that the report deserialises.
    pub fn verify_entry(&self, key: &str) -> Result<(), String> {
        let (job, report_v) = self
            .read_validated(key)?
            .ok_or_else(|| "missing entry".to_owned())?;
        if job.key() != key {
            return Err("embedded job does not hash to this key".into());
        }
        RunReport::from_value(&report_v).map_err(|e| format!("report: {e}"))?;
        Ok(())
    }

    /// Read and validate the envelope for `key` from whichever
    /// representation holds it (preferred format, then the other, then
    /// the flat legacy path). `Ok(None)` when no file exists.
    fn read_validated(&self, key: &str) -> Result<Option<(FarmJob, Value)>, String> {
        for (path, format) in self.candidates(key) {
            match format {
                EntryFormat::Binary => match self.io.read_bytes(&path) {
                    Ok(bytes) => return Self::validate_binary(&bytes, key).map(Some),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                    Err(e) => return Err(format!("unreadable: {e}")),
                },
                EntryFormat::Json => match self.io.read_to_string(&path) {
                    Ok(text) => return Self::validate_envelope(&text, key).map(Some),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                    Err(e) => return Err(format!("unreadable: {e}")),
                },
            }
        }
        Ok(None)
    }

    /// Shared JSON envelope checks: parse, format versions, embedded
    /// key. Returns the embedded job and the raw report value.
    fn validate_envelope(text: &str, key: &str) -> Result<(FarmJob, Value), String> {
        let v = json::parse(text).map_err(|e| format!("parse: {e}"))?;
        let fmt = v.get("store_format").and_then(Value::as_u64);
        if fmt != Some(u64::from(STORE_FORMAT)) {
            return Err(format!(
                "store format {fmt:?} != current {STORE_FORMAT} (stale)"
            ));
        }
        let rfmt = v.get("report_format").and_then(Value::as_u64);
        if rfmt != Some(u64::from(ptb_core::report::REPORT_FORMAT)) {
            return Err(format!(
                "report format {rfmt:?} != current {} (stale)",
                ptb_core::report::REPORT_FORMAT
            ));
        }
        if v.get("key").and_then(Value::as_str) != Some(key) {
            return Err("embedded key does not match filename".into());
        }
        let job_v = v.get("job").ok_or("missing job")?;
        let job = FarmJob::from_value(job_v).map_err(|e| format!("job: {e}"))?;
        let report_v = v.get("report").ok_or("missing report")?.clone();
        Ok((job, report_v))
    }

    /// Binary-envelope counterpart of [`ResultStore::validate_envelope`].
    fn validate_binary(bytes: &[u8], key: &str) -> Result<(FarmJob, Value), String> {
        let env = binfmt::decode(bytes)?;
        if env.store_format != STORE_FORMAT {
            return Err(format!(
                "store format {} != current {STORE_FORMAT} (stale)",
                env.store_format
            ));
        }
        if env.report_format != ptb_core::report::REPORT_FORMAT {
            return Err(format!(
                "report format {} != current {} (stale)",
                env.report_format,
                ptb_core::report::REPORT_FORMAT
            ));
        }
        if env.key != key {
            return Err("embedded key does not match filename".into());
        }
        let job_v = json::parse(env.job_json).map_err(|e| format!("job parse: {e}"))?;
        let job = FarmJob::from_value(&job_v).map_err(|e| format!("job: {e}"))?;
        let report_v = json::parse(env.report_json).map_err(|e| format!("report parse: {e}"))?;
        Ok((job, report_v))
    }

    /// Rewrite every entry into `target` representation in place:
    /// flat-legacy entries move into their shard directory, valid
    /// entries in the other representation are re-encoded, entries that
    /// fail validation are dropped, and the packed index is rebuilt at
    /// the end. Idempotent: a second pass reports everything `already`.
    pub fn migrate(&self, target: EntryFormat) -> Result<MigrateReport, FarmError> {
        let mut report = MigrateReport::default();
        for key in self.keys()? {
            let target_path = self.path_in(&key, target);
            match self.read_validated(&key) {
                Ok(Some((job, report_v))) => {
                    let run = match RunReport::from_value(&report_v) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("[store] dropping {key}: report: {e}");
                            self.remove(&key);
                            report.dropped += 1;
                            continue;
                        }
                    };
                    if self.io.file_size(&target_path).is_ok() {
                        // Already in the target representation; retire
                        // any stale siblings left by interrupted runs.
                        self.io
                            .remove_file(&self.path_in(&key, target.other()))
                            .ok();
                        self.io.remove_file(&self.flat_path(&key)).ok();
                        report.already += 1;
                    } else {
                        self.put_in(&key, &job, &run, target)?;
                        report.converted += 1;
                    }
                }
                Ok(None) => {} // raced with a concurrent remove
                Err(reason) => {
                    eprintln!("[store] dropping {key}: {reason}");
                    self.remove(&key);
                    report.dropped += 1;
                }
            }
        }
        self.rebuild_index()?;
        Ok(report)
    }

    /// Re-derive the packed index from the filesystem and atomically
    /// replace the in-memory mirror. Run by `verify`/`migrate` and on
    /// open when the index file is absent or unreadable.
    pub fn rebuild_index(&self) -> Result<(), FarmError> {
        let state = self.scan_disk()?;
        let path = self.index_path();
        self.io
            .write(&path, &state.to_bytes())
            .map_err(|e| FarmError::io("write index", &path, e))?;
        let file = self.io.open_append(&path).ok();
        let mut handle = self.index.lock().expect("index lock");
        handle.state = state;
        handle.file = file;
        Ok(())
    }

    /// Load the index file, falling back to a filesystem rebuild when
    /// it is absent, unreadable, or from a foreign version. Never fails
    /// the open: the index is an accelerator, so every error degrades
    /// to an empty (stale) mirror plus a warning.
    fn load_or_rebuild_index(&self) {
        let path = self.index_path();
        let loaded = match self.io.read_bytes(&path) {
            Ok(bytes) => IndexState::from_bytes(&bytes),
            Err(_) => None,
        };
        match loaded {
            Some(state) => {
                let file = self.io.open_append(&path).ok();
                let mut handle = self.index.lock().expect("index lock");
                handle.state = state;
                handle.file = file;
            }
            None => {
                if let Err(e) = self.rebuild_index() {
                    eprintln!("warning: cannot rebuild store index: {e}");
                }
            }
        }
    }

    /// Derive a fresh [`IndexState`] from the entry files on disk. A
    /// key present in both representations is recorded under the
    /// handle's preferred one (which is also what the read path would
    /// answer from).
    fn scan_disk(&self) -> Result<IndexState, FarmError> {
        let mut chosen: BTreeMap<String, (PathBuf, EntryFormat)> = BTreeMap::new();
        for (key, path, format) in self.disk_entries()? {
            match chosen.entry(key) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert((path, format));
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if format == self.format {
                        o.insert((path, format));
                    }
                }
            }
        }
        let mut state = IndexState::default();
        for (key, (path, format)) in chosen {
            let size = self.io.file_size(&path).unwrap_or(0);
            state.live.insert(
                key,
                IndexEntry {
                    size,
                    binary: format == EntryFormat::Binary,
                },
            );
        }
        Ok(state)
    }

    /// Record a put in the index mirror and append its record to the
    /// index file. Best effort: index failures only warn — the entry
    /// itself is already durably published.
    fn note_put(&self, key: &str, size: u64, binary: bool) {
        let mut handle = self.index.lock().expect("index lock");
        handle
            .state
            .live
            .insert(key.to_owned(), IndexEntry { size, binary });
        self.append_record(&mut handle, IndexRecord::put(key, size, binary));
    }

    /// Record a remove in the index mirror and append a tombstone.
    fn note_remove(&self, key: &str) {
        let mut handle = self.index.lock().expect("index lock");
        if handle.state.live.remove(key).is_none() {
            return; // nothing was indexed; no tombstone needed
        }
        self.append_record(&mut handle, IndexRecord::tombstone(key));
    }

    fn append_record(&self, handle: &mut IndexHandle, record: IndexRecord) {
        let Some(rec) = record.pack() else {
            return; // non-hex key (never produced by the farm)
        };
        let path = self.index_path();
        if let Some(file) = handle.file.as_mut() {
            if let Err(e) = self.io.append_bytes(file, &rec, &path) {
                eprintln!("warning: index append failed: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptb_core::{MechanismKind, SimConfig};
    use ptb_workloads::{Benchmark, Scale};

    fn tiny_job() -> FarmJob {
        FarmJob::new(
            Benchmark::Fft,
            SimConfig {
                n_cores: 2,
                scale: Scale::Test,
                mechanism: MechanismKind::None,
                ..SimConfig::default()
            },
        )
    }

    fn store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ptb-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn open_fmt(dir: &Path, format: EntryFormat) -> ResultStore {
        ResultStore::open_with_format(dir, Arc::new(RealIo), format).expect("open store")
    }

    #[test]
    fn binary_entries_round_trip_and_verify() {
        let dir = store_dir("binfmt");
        let store = open_fmt(&dir, EntryFormat::Binary);
        let job = tiny_job();
        let key = job.key();
        let report = job.simulate();
        store.put(&key, &job, &report).expect("put");
        assert!(store.path_for(&key).extension().unwrap() == "bin");
        match store.get(&key, &job) {
            StoreLookup::Hit(back) => assert_eq!(back.to_value(), report.to_value()),
            other => panic!("expected hit, got {other:?}"),
        }
        store.verify_entry(&key).expect("verify");
        let (env_job, env_report) = store.read_entry(&key).expect("read").expect("present");
        assert_eq!(env_job.key(), key);
        assert_eq!(env_report.to_value(), report.to_value());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn either_handle_reads_either_representation() {
        let dir = store_dir("xfmt");
        let job = tiny_job();
        let key = job.key();
        let report = job.simulate();
        open_fmt(&dir, EntryFormat::Json)
            .put(&key, &job, &report)
            .expect("json put");
        // A binary-writing handle still answers from the JSON entry.
        let bin_handle = open_fmt(&dir, EntryFormat::Binary);
        assert!(matches!(bin_handle.get(&key, &job), StoreLookup::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flat_legacy_entries_are_read_and_migrated() {
        let dir = store_dir("flat");
        let job = tiny_job();
        let key = job.key();
        let report = job.simulate();
        // Write sharded, then demote the entry to the flat legacy
        // layout by hand.
        let store = open_fmt(&dir, EntryFormat::Json);
        store.put(&key, &job, &report).expect("put");
        let sharded = store.path_for(&key);
        let flat = dir.join(format!("{key}.json"));
        std::fs::rename(&sharded, &flat).expect("demote to flat");
        assert!(matches!(store.get(&key, &job), StoreLookup::Hit(_)));
        assert_eq!(store.keys().expect("keys"), vec![key.clone()]);

        let m = store.migrate(EntryFormat::Binary).expect("migrate");
        assert_eq!((m.converted, m.already, m.dropped), (1, 0, 0));
        assert!(!flat.exists(), "flat file retired");
        assert!(dir.join(&key[..2]).join(format!("{key}.bin")).exists());
        assert!(matches!(store.get(&key, &job), StoreLookup::Hit(_)));

        // Second pass is a no-op.
        let m = store.migrate(EntryFormat::Binary).expect("migrate");
        assert_eq!((m.converted, m.already, m.dropped), (0, 1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_stats_come_from_the_index_and_survive_reopen() {
        let dir = store_dir("stats");
        let job = tiny_job();
        let key = job.key();
        let report = job.simulate();
        let store = open_fmt(&dir, EntryFormat::Binary);
        store.put(&key, &job, &report).expect("put");
        let stats = store.disk_stats().expect("stats");
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.shards, 1);
        let size = std::fs::metadata(store.path_for(&key)).unwrap().len();
        assert_eq!(stats.total_bytes, size);

        // A fresh handle loads the same numbers from the index file
        // without walking the shard directories.
        let reopened = open_fmt(&dir, EntryFormat::Binary);
        assert_eq!(reopened.disk_stats().expect("stats"), stats);

        // Remove → tombstone → zeroed stats.
        store.remove(&key);
        let stats = store.disk_stats().expect("stats");
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.total_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_is_rebuilt_when_missing_or_garbage() {
        let dir = store_dir("rebuild");
        let job = tiny_job();
        let key = job.key();
        let report = job.simulate();
        open_fmt(&dir, EntryFormat::Json)
            .put(&key, &job, &report)
            .expect("put");
        std::fs::write(dir.join(INDEX_FILE), b"definitely not an index").unwrap();
        let store = open_fmt(&dir, EntryFormat::Json);
        let stats = store.disk_stats().expect("stats");
        assert_eq!(stats.entries, 1, "rebuilt from the filesystem");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: two threads writing the same key simultaneously used
    /// to share one `.{key}.{pid}.tmp` path — writer A could rename
    /// writer B's half-written temp file into place, or B's rename
    /// could fail with NotFound after A consumed the path. The per-key
    /// sequence discriminator gives every write attempt its own temp
    /// file, so all writers succeed and the published entry verifies.
    #[test]
    fn simultaneous_same_key_writers_do_not_collide() {
        let dir = store_dir("tmprace");
        let store = open_fmt(&dir, EntryFormat::Json);
        let job = tiny_job();
        let key = job.key();
        let report = job.simulate();
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                handles.push(s.spawn(|| {
                    barrier.wait();
                    for _ in 0..16 {
                        store.put(&key, &job, &report)?;
                    }
                    Ok::<(), FarmError>(())
                }));
            }
            for h in handles {
                h.join().expect("no panic").expect("every put succeeds");
            }
        });
        store.verify_entry(&key).expect("published entry is intact");
        assert_eq!(store.len(), 1);
        // No temp-file litter left behind.
        let shard = dir.join(&key[..2]);
        for entry in std::fs::read_dir(&shard).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            assert!(!name.ends_with(".tmp"), "leftover temp file {name}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
