//! Packed store index: presence, format and size of every entry in one
//! flat binary file.
//!
//! A flat (or even two-hex-sharded) directory of ~10⁵ entry files makes
//! every whole-store question — `keys()`, `len()`, `disk_stats()`, the
//! serve status endpoint, a `verify` sweep's worklist — an O(entries)
//! directory walk through hundreds of shard directories. The index
//! answers them with one sequential read of a single packed file:
//! `<store>/index.bin`, a fixed-size header followed by fixed 32-byte
//! records, **rebuilt on open** when absent or unreadable and
//! **appended on write** (one record per `put`/`remove`), so a hot
//! open is one seek instead of a directory walk.
//!
//! ## Record layout (32 bytes, little-endian)
//!
//! ```text
//! 0   16  key (raw bytes of the 32-char hex digest)
//! 16  4   flags (bit 0: binary envelope; bit 7: tombstone)
//! 20  8   entry size in bytes (0 for tombstones)
//! 28  4   FNV-1a 32 checksum of bytes [0, 28)
//! ```
//!
//! Replay applies records in file order, so a put followed by a remove
//! nets out to absent; a torn trailing record (crash or chaos fault
//! mid-append) fails its checksum and is skipped along with everything
//! after it. The index is an *accelerator, not an authority*: entry
//! reads always go to the entry files themselves, and `rebuild` (run by
//! `farm_ctl migrate`/`verify`) re-derives the index from the
//! filesystem, so a stale or lost index can never produce a wrong
//! report — only a stale status summary.

use std::collections::BTreeMap;

/// Magic bytes opening the index file.
pub const MAGIC: [u8; 4] = *b"PTBI";

/// Index file format version.
pub const INDEX_VERSION: u32 = 1;

/// Header: magic + version + 8 reserved bytes.
pub const HEADER_LEN: usize = 16;

/// Fixed record size.
pub const RECORD_LEN: usize = 32;

/// Flag bit: the entry is stored as a binary envelope (`.bin`);
/// unset means pretty JSON (`.json`).
const FLAG_BINARY: u32 = 1;
/// Flag bit: the entry was removed.
const FLAG_TOMBSTONE: u32 = 1 << 7;

/// FNV-1a 32 (the record self-check; 32 bits is plenty for a 28-byte
/// record — this guards torn appends, not adversaries).
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// What the index knows about one live entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Entry file size in bytes.
    pub size: u64,
    /// True when stored as a binary envelope (`.bin`), false for JSON.
    pub binary: bool,
}

/// One index record before packing: a put or a remove.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexRecord {
    /// The 32-char lowercase-hex key.
    pub key: String,
    /// `None` marks a tombstone (the entry was removed).
    pub entry: Option<IndexEntry>,
}

impl IndexRecord {
    /// A live-entry record.
    pub fn put(key: &str, size: u64, binary: bool) -> Self {
        IndexRecord {
            key: key.to_owned(),
            entry: Some(IndexEntry { size, binary }),
        }
    }

    /// A tombstone record.
    pub fn tombstone(key: &str) -> Self {
        IndexRecord {
            key: key.to_owned(),
            entry: None,
        }
    }

    /// Pack into the fixed 32-byte wire form. Keys that are not 32
    /// lowercase-hex chars cannot be packed (the store never produces
    /// them) and return `None`.
    pub fn pack(&self) -> Option<[u8; RECORD_LEN]> {
        let raw = hex_to_raw(&self.key)?;
        let mut rec = [0u8; RECORD_LEN];
        rec[0..16].copy_from_slice(&raw);
        let (flags, size) = match self.entry {
            Some(e) => (if e.binary { FLAG_BINARY } else { 0 }, e.size),
            None => (FLAG_TOMBSTONE, 0),
        };
        rec[16..20].copy_from_slice(&flags.to_le_bytes());
        rec[20..28].copy_from_slice(&size.to_le_bytes());
        let sum = fnv1a32(&rec[0..28]);
        rec[28..32].copy_from_slice(&sum.to_le_bytes());
        Some(rec)
    }

    /// Unpack one wire record, validating its checksum.
    pub fn unpack(rec: &[u8]) -> Option<IndexRecord> {
        if rec.len() != RECORD_LEN {
            return None;
        }
        let sum = u32::from_le_bytes(rec[28..32].try_into().ok()?);
        if sum != fnv1a32(&rec[0..28]) {
            return None;
        }
        let key = raw_to_hex(&rec[0..16]);
        let flags = u32::from_le_bytes(rec[16..20].try_into().ok()?);
        let size = u64::from_le_bytes(rec[20..28].try_into().ok()?);
        let entry = if flags & FLAG_TOMBSTONE != 0 {
            None
        } else {
            Some(IndexEntry {
                size,
                binary: flags & FLAG_BINARY != 0,
            })
        };
        Some(IndexRecord { key, entry })
    }
}

/// Parse a 32-char lowercase-hex key into 16 raw bytes.
fn hex_to_raw(key: &str) -> Option<[u8; 16]> {
    let bytes = key.as_bytes();
    if bytes.len() != 32 {
        return None;
    }
    let nib = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        }
    };
    let mut raw = [0u8; 16];
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        raw[i] = nib(pair[0])? << 4 | nib(pair[1])?;
    }
    Some(raw)
}

fn raw_to_hex(raw: &[u8]) -> String {
    let mut s = String::with_capacity(raw.len() * 2);
    for b in raw {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// The replayed state of an index file: live entries keyed by hex key
/// (sorted, so `keys()` listings are deterministic).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IndexState {
    /// Live entries (tombstoned keys removed).
    pub live: BTreeMap<String, IndexEntry>,
}

impl IndexState {
    /// Serialise the whole state as a fresh index file image
    /// (header + one record per live entry).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.live.len() * RECORD_LEN);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]);
        for (key, entry) in &self.live {
            if let Some(rec) = IndexRecord::put(key, entry.size, entry.binary).pack() {
                buf.extend_from_slice(&rec);
            }
        }
        buf
    }

    /// Replay an index file image. Returns `None` when the header is
    /// missing or wrong (caller rebuilds from the filesystem); a torn
    /// record stops replay there — everything before it is kept, which
    /// is exactly the crash-consistent prefix.
    pub fn from_bytes(bytes: &[u8]) -> Option<IndexState> {
        if bytes.len() < HEADER_LEN || bytes[0..4] != MAGIC {
            return None;
        }
        if u32::from_le_bytes(bytes[4..8].try_into().ok()?) != INDEX_VERSION {
            return None;
        }
        let mut state = IndexState::default();
        for rec in bytes[HEADER_LEN..].chunks(RECORD_LEN) {
            let Some(rec) = IndexRecord::unpack(rec) else {
                break; // torn tail: keep the consistent prefix
            };
            match rec.entry {
                Some(e) => {
                    state.live.insert(rec.key, e);
                }
                None => {
                    state.live.remove(&rec.key);
                }
            }
        }
        Some(state)
    }

    /// Total bytes across live entries.
    pub fn total_bytes(&self) -> u64 {
        self.live.values().map(|e| e.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K1: &str = "0123456789abcdef0123456789abcdef";
    const K2: &str = "ffeeddccbbaa99887766554433221100";

    #[test]
    fn record_pack_unpack_round_trips() {
        for rec in [
            IndexRecord::put(K1, 1234, true),
            IndexRecord::put(K2, 0, false),
            IndexRecord::tombstone(K1),
        ] {
            let packed = rec.pack().unwrap();
            assert_eq!(IndexRecord::unpack(&packed), Some(rec));
        }
    }

    #[test]
    fn non_hex_keys_do_not_pack() {
        assert!(IndexRecord::put("xx", 1, false).pack().is_none());
        assert!(IndexRecord::put(&"G".repeat(32), 1, false).pack().is_none());
    }

    #[test]
    fn replay_applies_puts_and_tombstones_in_order() {
        let mut img = IndexState::default().to_bytes();
        for rec in [
            IndexRecord::put(K1, 10, false),
            IndexRecord::put(K2, 20, true),
            IndexRecord::tombstone(K1),
            IndexRecord::put(K1, 30, true),
        ] {
            img.extend_from_slice(&rec.pack().unwrap());
        }
        let state = IndexState::from_bytes(&img).unwrap();
        assert_eq!(state.live.len(), 2);
        assert_eq!(
            state.live[K1],
            IndexEntry {
                size: 30,
                binary: true
            }
        );
        assert_eq!(state.total_bytes(), 50);
    }

    #[test]
    fn torn_tail_keeps_the_consistent_prefix() {
        let mut img = IndexState::default().to_bytes();
        img.extend_from_slice(&IndexRecord::put(K1, 10, false).pack().unwrap());
        let full = IndexRecord::put(K2, 20, false).pack().unwrap();
        img.extend_from_slice(&full[..17]); // torn mid-record
        let state = IndexState::from_bytes(&img).unwrap();
        assert_eq!(state.live.len(), 1);
        assert!(state.live.contains_key(K1));
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let mut img = IndexState::default().to_bytes();
        img.extend_from_slice(&IndexRecord::put(K1, 10, false).pack().unwrap());
        let mut bad = IndexRecord::put(K2, 20, false).pack().unwrap();
        bad[5] ^= 0xff;
        img.extend_from_slice(&bad);
        img.extend_from_slice(&IndexRecord::tombstone(K1).pack().unwrap());
        // The corrupt record and everything after it are dropped: K1
        // stays live (its tombstone was after the tear).
        let state = IndexState::from_bytes(&img).unwrap();
        assert_eq!(state.live.len(), 1);
        assert!(state.live.contains_key(K1));
    }

    #[test]
    fn missing_or_foreign_header_forces_rebuild() {
        assert_eq!(IndexState::from_bytes(b""), None);
        assert_eq!(IndexState::from_bytes(b"not an index at all"), None);
        let mut wrong_version = IndexState::default().to_bytes();
        wrong_version[4] = 99;
        assert_eq!(IndexState::from_bytes(&wrong_version), None);
    }

    #[test]
    fn state_round_trips_through_image() {
        let mut state = IndexState::default();
        state.live.insert(
            K1.into(),
            IndexEntry {
                size: 7,
                binary: false,
            },
        );
        state.live.insert(
            K2.into(),
            IndexEntry {
                size: 9,
                binary: true,
            },
        );
        assert_eq!(IndexState::from_bytes(&state.to_bytes()), Some(state));
    }
}
