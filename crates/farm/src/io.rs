//! Filesystem abstraction for the store and journal, with a
//! deterministic fault-injecting implementation.
//!
//! Every byte the farm persists flows through a [`FarmIo`] handle:
//!
//! * [`RealIo`] — thin passthrough to `std::fs` (the default);
//! * [`ChaosIo`] — wraps an inner `FarmIo` and injects seeded,
//!   replayable faults at configurable per-operation rates:
//!
//!   | fault          | operation          | observable effect                     |
//!   |----------------|--------------------|---------------------------------------|
//!   | `enospc`       | write / rename     | `StorageFull` error, nothing written  |
//!   | `partial_write`| write              | prefix written, `WriteZero` error     |
//!   | `read_corrupt` | read               | one byte of the returned text flipped |
//!   | `torn_append`  | journal append     | line prefix written, `Interrupted`    |
//!   | `fsync_drop`   | journal append     | flush silently skipped                |
//!
//! ## Determinism
//!
//! Fault decisions are a pure function of `(seed, operation tag, path,
//! per-(tag, path) operation ordinal)` — **not** of global call order —
//! so a multi-threaded batch injects the same faults at the same store
//! keys regardless of worker interleaving, and a failing chaos run can
//! be replayed from its seed alone.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Filesystem operations the store and journal perform.
///
/// Implementations must be shareable across worker threads.
pub trait FarmIo: Send + Sync {
    /// `std::fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// `std::fs::read_to_string`.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// `std::fs::read` (binary store envelopes and the packed index).
    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Size of a file in bytes (index rebuild without reading content).
    fn file_size(&self, path: &Path) -> io::Result<u64>;
    /// `std::fs::write` (whole-file publish of a store temp file).
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// `std::fs::rename` (atomic publish of a store entry).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// `std::fs::remove_file`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// File names (not full paths) of the entries of a directory.
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>>;
    /// Open `path` for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<File>;
    /// Append one journal line (including its trailing newline) and
    /// flush. `path` is the journal's path, passed for fault addressing.
    fn append_line(&self, file: &mut File, line: &str, path: &Path) -> io::Result<()>;
    /// Append one binary record (a packed index record) and flush.
    /// `path` is the index's path, passed for fault addressing.
    fn append_bytes(&self, file: &mut File, bytes: &[u8], path: &Path) -> io::Result<()>;
    /// Injected-fault counters under the `farm.chaos.*` namespace
    /// (empty for non-chaotic implementations).
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// Passthrough to the real filesystem.
#[derive(Debug, Default)]
pub struct RealIo;

impl FarmIo for RealIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }
    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn file_size(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }
    fn open_append(&self, path: &Path) -> io::Result<File> {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
    }
    fn append_line(&self, file: &mut File, line: &str, _path: &Path) -> io::Result<()> {
        file.write_all(line.as_bytes())?;
        file.flush()
    }
    fn append_bytes(&self, file: &mut File, bytes: &[u8], _path: &Path) -> io::Result<()> {
        file.write_all(bytes)?;
        file.flush()
    }
}

/// Per-fault injection rates (each in `[0, 1]`) plus the chaos seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Probability a store write reports `StorageFull` without writing.
    pub enospc: f64,
    /// Probability a store write lands only a prefix (then errors).
    pub partial_write: f64,
    /// Probability a read returns text with one byte corrupted.
    pub read_corrupt: f64,
    /// Probability a journal append tears mid-line (then errors).
    pub torn_append: f64,
    /// Probability a journal flush is silently dropped.
    pub fsync_drop: f64,
}

impl ChaosConfig {
    /// Every fault class at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        ChaosConfig {
            seed,
            enospc: rate,
            partial_write: rate,
            read_corrupt: rate,
            torn_append: rate,
            fsync_drop: rate,
        }
    }
}

/// Counts of faults actually injected by a [`ChaosIo`].
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Writes rejected with `StorageFull`.
    pub enospc: AtomicU64,
    /// Writes torn to a prefix.
    pub partial_writes: AtomicU64,
    /// Reads returned corrupted.
    pub read_corrupt: AtomicU64,
    /// Journal appends torn mid-line.
    pub torn_appends: AtomicU64,
    /// Journal flushes dropped.
    pub fsync_drops: AtomicU64,
}

/// Deterministic fault-injecting wrapper around another [`FarmIo`].
pub struct ChaosIo<I: FarmIo = RealIo> {
    inner: I,
    cfg: ChaosConfig,
    stats: ChaosStats,
    /// Per-(tag, path) operation ordinals, so the nth read of one key is
    /// a stable fault site independent of what other threads do.
    ordinals: Mutex<HashMap<u64, u64>>,
}

/// FNV-1a over arbitrary bytes (the repo's standard cheap stable hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// splitmix64 finaliser: decorrelates the structured site hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ChaosIo<RealIo> {
    /// Chaos over the real filesystem.
    pub fn new(cfg: ChaosConfig) -> Self {
        ChaosIo::wrap(RealIo, cfg)
    }
}

impl<I: FarmIo> ChaosIo<I> {
    /// Chaos over an arbitrary inner implementation.
    pub fn wrap(inner: I, cfg: ChaosConfig) -> Self {
        ChaosIo {
            inner,
            cfg,
            stats: ChaosStats::default(),
            ordinals: Mutex::new(HashMap::new()),
        }
    }

    /// The injection configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Counts of faults injected so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Uniform `[0, 1)` draw for the next operation of class `tag` on
    /// `path`. Deterministic per (seed, tag, path, ordinal).
    fn roll(&self, tag: &str, path: &Path) -> f64 {
        let site = fnv1a(tag.as_bytes()) ^ fnv1a(path.as_os_str().as_encoded_bytes());
        let ordinal = {
            let mut m = self.ordinals.lock().expect("chaos ordinal lock");
            let n = m.entry(site).or_insert(0);
            *n += 1;
            *n
        };
        let bits = splitmix(self.cfg.seed ^ site ^ ordinal.wrapping_mul(0x2545_f491_4f6c_dd1d));
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<I: FarmIo> FarmIo for ChaosIo<I> {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let text = self.inner.read_to_string(path)?;
        if !text.is_empty() && self.roll("read", path) < self.cfg.read_corrupt {
            self.stats.read_corrupt.fetch_add(1, Ordering::Relaxed);
            // Flip one byte at a seeded position to a character that is
            // guaranteed to break JSON, modelling bit rot / a torn page.
            let pos = (splitmix(self.cfg.seed ^ fnv1a(text.as_bytes())) as usize) % text.len();
            let mut bytes = text.into_bytes();
            bytes[pos] = b'\x01';
            return Ok(String::from_utf8_lossy(&bytes).into_owned());
        }
        Ok(text)
    }

    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read_bytes(path)?;
        if !bytes.is_empty() && self.roll("read", path) < self.cfg.read_corrupt {
            self.stats.read_corrupt.fetch_add(1, Ordering::Relaxed);
            // Flip one byte at a seeded position, modelling bit rot; the
            // binary envelope's checksum must catch it.
            let pos = (splitmix(self.cfg.seed ^ fnv1a(&bytes)) as usize) % bytes.len();
            bytes[pos] ^= 0xa5;
        }
        Ok(bytes)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        if self.roll("write", path) < self.cfg.enospc {
            self.stats.enospc.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "chaos: injected ENOSPC",
            ));
        }
        if self.roll("partial", path) < self.cfg.partial_write {
            self.stats.partial_writes.fetch_add(1, Ordering::Relaxed);
            self.inner.write(path, &data[..data.len() / 2])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "chaos: injected partial write",
            ));
        }
        self.inner.write(path, data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.roll("rename", to) < self.cfg.enospc {
            self.stats.enospc.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "chaos: injected rename failure",
            ));
        }
        self.inner.rename(from, to)
    }

    fn file_size(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_size(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<File> {
        self.inner.open_append(path)
    }

    fn append_line(&self, file: &mut File, line: &str, path: &Path) -> io::Result<()> {
        if self.roll("append", path) < self.cfg.torn_append {
            self.stats.torn_appends.fetch_add(1, Ordering::Relaxed);
            // Model a crash mid-append: a prefix lands, no newline, and
            // the caller sees an error. `Journal::load_pending` must
            // skip the resulting garbage line.
            let cut = line.len() / 2;
            file.write_all(&line.as_bytes()[..cut])?;
            file.flush().ok();
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "chaos: injected torn append",
            ));
        }
        file.write_all(line.as_bytes())?;
        if self.roll("fsync", path) < self.cfg.fsync_drop {
            // Durability lost, not correctness: the bytes are in the OS
            // buffer, we just skip the flush.
            self.stats.fsync_drops.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        file.flush()
    }

    fn append_bytes(&self, file: &mut File, bytes: &[u8], path: &Path) -> io::Result<()> {
        if self.roll("append", path) < self.cfg.torn_append {
            self.stats.torn_appends.fetch_add(1, Ordering::Relaxed);
            // Model a crash mid-append: a prefix lands and the caller
            // sees an error. Index replay must skip the torn record.
            let cut = bytes.len() / 2;
            file.write_all(&bytes[..cut])?;
            file.flush().ok();
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "chaos: injected torn append",
            ));
        }
        file.write_all(bytes)?;
        if self.roll("fsync", path) < self.cfg.fsync_drop {
            self.stats.fsync_drops.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        file.flush()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            (
                "farm.chaos.enospc",
                self.stats.enospc.load(Ordering::Relaxed),
            ),
            (
                "farm.chaos.partial_write",
                self.stats.partial_writes.load(Ordering::Relaxed),
            ),
            (
                "farm.chaos.read_corrupt",
                self.stats.read_corrupt.load(Ordering::Relaxed),
            ),
            (
                "farm.chaos.torn_append",
                self.stats.torn_appends.load(Ordering::Relaxed),
            ),
            (
                "farm.chaos.fsync_drop",
                self.stats.fsync_drops.load(Ordering::Relaxed),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn rolls_are_deterministic_per_site_and_ordinal() {
        let a = ChaosIo::new(ChaosConfig::uniform(42, 0.5));
        let b = ChaosIo::new(ChaosConfig::uniform(42, 0.5));
        let p = PathBuf::from("/tmp/some/key.json");
        let q = PathBuf::from("/tmp/other/key.json");
        let seq_a: Vec<f64> = (0..8).map(|_| a.roll("write", &p)).collect();
        let seq_b: Vec<f64> = (0..8).map(|_| b.roll("write", &p)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same site: same sequence");
        // Interleaving ops on another path must not shift p's sequence.
        let c = ChaosIo::new(ChaosConfig::uniform(42, 0.5));
        let seq_c: Vec<f64> = (0..8)
            .map(|_| {
                c.roll("write", &q);
                c.roll("write", &p)
            })
            .collect();
        assert_eq!(seq_a, seq_c, "fault sites are per-path, not global");
    }

    #[test]
    fn zero_rate_injects_nothing_and_full_rate_always_fails() {
        let dir = std::env::temp_dir().join(format!("ptb-chaosio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let calm = ChaosIo::new(ChaosConfig::uniform(7, 0.0));
        let path = dir.join("calm.txt");
        calm.write(&path, b"hello").unwrap();
        assert_eq!(calm.read_to_string(&path).unwrap(), "hello");
        assert!(calm.counters().iter().all(|(_, v)| *v == 0));

        let storm = ChaosIo::new(ChaosConfig::uniform(7, 1.0));
        let err = storm.write(&dir.join("storm.txt"), b"hello").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        std::fs::remove_dir_all(&dir).ok();
    }
}
