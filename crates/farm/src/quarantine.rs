//! Quarantine manifest for failed jobs (`failed.jsonl`).
//!
//! When a sweep runs with `--keep-going`, jobs that panic, time out, or
//! exhaust their retries are not lost: each one is appended to a
//! JSONL manifest next to the farm store, one self-contained object per
//! line:
//!
//! ```json
//! {"key":"6f0c…","label":"fft/ptb/8c/Test","kind":"panic",
//!  "error":"panicked: …","attempts":1,
//!  "job":{"bench":"fft","config":{…}}}
//! ```
//!
//! The embedded `job` is the full replayable [`FarmJob`] — the exact
//! `SimConfig` JSON the farm ran — so `sim_check --replay failed.jsonl`
//! can re-execute a quarantined point under the validation oracles, and
//! `farm_ctl resume` can retry the whole manifest, rewriting it to keep
//! only the entries that failed again.

use crate::error::{FarmError, JobError};
use crate::FarmJob;
use serde::{json, Deserialize, Map, Serialize, Value};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the quarantine manifest inside a farm directory.
pub const QUARANTINE_FILE: &str = "failed.jsonl";

/// One quarantined job: what failed, how, and everything needed to
/// replay it.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// Content key of the job (matches the store/journal key).
    pub key: String,
    /// Human-readable job label (`bench/mech/Nc/Scale`).
    pub label: String,
    /// Failure class: `"panic"`, `"error"`, or `"timeout"`.
    pub kind: String,
    /// Full failure message.
    pub error: String,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// The replayable job (benchmark + full `SimConfig`).
    pub job: FarmJob,
}

impl QuarantineEntry {
    /// Build an entry from a failed job and its error.
    pub fn new(job: &FarmJob, err: &JobError) -> Self {
        QuarantineEntry {
            key: job.key(),
            label: job.label(),
            kind: err.kind().to_owned(),
            error: err.to_string(),
            attempts: err.attempts(),
            job: job.clone(),
        }
    }
}

/// Handle on a quarantine manifest file.
#[derive(Debug, Clone)]
pub struct Quarantine {
    path: PathBuf,
}

impl Quarantine {
    /// The manifest of the farm rooted at `dir` (`<dir>/failed.jsonl`).
    pub fn in_dir(dir: impl AsRef<Path>) -> Self {
        Quarantine {
            path: dir.as_ref().join(QUARANTINE_FILE),
        }
    }

    /// A manifest at an explicit path.
    pub fn at(path: impl AsRef<Path>) -> Self {
        Quarantine {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// Location of the manifest file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one entry. Each entry is a single `write_all` of one
    /// line, so concurrent appends from worker threads interleave at
    /// line granularity and a torn tail is skipped by [`Quarantine::load`].
    pub fn record(&self, entry: &QuarantineEntry) -> Result<(), FarmError> {
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| FarmError::io("create quarantine dir", parent, e))?;
        }
        let mut line = json::to_string(&entry.to_value());
        line.push('\n');
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| FarmError::io("open quarantine", &self.path, e))?;
        f.write_all(line.as_bytes())
            .map_err(|e| FarmError::io("append quarantine", &self.path, e))
    }

    /// Load every parsable entry. A missing file is an empty manifest;
    /// unparsable lines (crash-torn tails) are skipped.
    pub fn load(&self) -> Result<Vec<QuarantineEntry>, FarmError> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(FarmError::io("read quarantine", &self.path, e)),
        };
        Ok(text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| json::parse(l).ok())
            .filter_map(|v| QuarantineEntry::from_value(&v).ok())
            .collect())
    }

    /// Replace the manifest with exactly `entries` (atomically, via
    /// temp + rename). An empty slice removes the file entirely so a
    /// fully-recovered farm leaves no `failed.jsonl` behind.
    pub fn rewrite(&self, entries: &[QuarantineEntry]) -> Result<(), FarmError> {
        if entries.is_empty() {
            match std::fs::remove_file(&self.path) {
                Ok(()) => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
                Err(e) => return Err(FarmError::io("remove quarantine", &self.path, e)),
            }
        }
        let mut text = String::new();
        for entry in entries {
            text.push_str(&json::to_string(&entry.to_value()));
            text.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, text.as_bytes())
            .map_err(|e| FarmError::io("write quarantine", &tmp, e))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| FarmError::io("publish quarantine", &self.path, e))
    }

    /// Number of parsable entries currently quarantined.
    pub fn len(&self) -> usize {
        self.load().map(|e| e.len()).unwrap_or(0)
    }

    /// True when nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Convenience: `Value` round-trip helpers mirroring the derive style.
impl QuarantineEntry {
    /// Serialise to a JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("key".into(), Value::Str(self.key.clone()));
        m.insert("label".into(), Value::Str(self.label.clone()));
        m.insert("kind".into(), Value::Str(self.kind.clone()));
        m.insert("error".into(), Value::Str(self.error.clone()));
        m.insert("attempts".into(), Value::U64(u64::from(self.attempts)));
        m.insert("job".into(), self.job.to_value());
        Value::Object(m)
    }

    /// Deserialise from a JSON value tree.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let get_str = |field: &str| -> Result<String, String> {
            v.get(field)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("quarantine entry missing {field}"))
        };
        let job_v = v.get("job").ok_or("quarantine entry missing job")?;
        Ok(QuarantineEntry {
            key: get_str("key")?,
            label: get_str("label")?,
            kind: get_str("kind")?,
            error: get_str("error")?,
            attempts: v
                .get("attempts")
                .and_then(Value::as_u64)
                .unwrap_or(1)
                .min(u64::from(u32::MAX)) as u32,
            job: <FarmJob as Deserialize>::from_value(job_v).map_err(|e| e.to_string())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptb_core::SimConfig;
    use ptb_workloads::{Benchmark, Scale};

    fn entry(bench: Benchmark) -> QuarantineEntry {
        let job = FarmJob::new(
            bench,
            SimConfig {
                n_cores: 2,
                scale: Scale::Test,
                ..SimConfig::default()
            },
        );
        QuarantineEntry::new(
            &job,
            &JobError::Panicked {
                message: "boom".into(),
            },
        )
    }

    fn tmp(name: &str) -> Quarantine {
        let p = std::env::temp_dir().join(format!("ptb-quar-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        Quarantine::in_dir(p)
    }

    #[test]
    fn record_load_round_trip() {
        let q = tmp("roundtrip");
        assert!(q.is_empty());
        q.record(&entry(Benchmark::Fft)).unwrap();
        q.record(&entry(Benchmark::Radix)).unwrap();
        let loaded = q.load().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].kind, "panic");
        assert_eq!(loaded[0].job.bench, Benchmark::Fft);
        assert_eq!(loaded[0].key, loaded[0].job.key(), "key stays consistent");
        assert_eq!(loaded[1].job.bench, Benchmark::Radix);
        std::fs::remove_dir_all(q.path().parent().unwrap()).ok();
    }

    #[test]
    fn rewrite_drops_recovered_entries_and_empties_cleanly() {
        let q = tmp("rewrite");
        q.record(&entry(Benchmark::Fft)).unwrap();
        q.record(&entry(Benchmark::Radix)).unwrap();
        let mut all = q.load().unwrap();
        all.retain(|e| e.job.bench == Benchmark::Radix);
        q.rewrite(&all).unwrap();
        let left = q.load().unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].job.bench, Benchmark::Radix);
        q.rewrite(&[]).unwrap();
        assert!(!q.path().exists(), "empty manifest removes the file");
        std::fs::remove_dir_all(q.path().parent().unwrap()).ok();
    }

    #[test]
    fn torn_tail_lines_are_skipped() {
        let q = tmp("torn");
        q.record(&entry(Benchmark::Ocean)).unwrap();
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(q.path())
                .unwrap();
            f.write_all(b"{\"key\":\"dead").unwrap();
        }
        assert_eq!(q.load().unwrap().len(), 1);
        std::fs::remove_dir_all(q.path().parent().unwrap()).ok();
    }
}
