//! Panic-isolated, retrying work-stealing executor for farm jobs.
//!
//! Simulation times vary wildly across the sweep grid (a 16-core
//! PTB+2-level point costs ~10× a 2-core baseline), so a static
//! partition of the batch leaves workers idle. Each worker owns a deque
//! seeded round-robin; it pops work from its own front and, when empty,
//! steals from the back of the fullest victim — the classic
//! owner-LIFO/thief-FIFO discipline, built on `crossbeam` scoped
//! threads and mutexed deques (the vendored crossbeam exposes scoped
//! threads only; contention is irrelevant here because each task is a
//! whole cycle-level simulation).
//!
//! ## Failure containment
//!
//! Each job runs inside `catch_unwind`: one poisoned simulation returns
//! [`JobError::Panicked`] in its own slot and every other job still
//! completes — the pre-chaos executor aborted the whole batch instead.
//! Jobs that *return* a transient fault (injected ENOSPC, a momentarily
//! full disk) are retried with exponential backoff under a bounded
//! [`RetryPolicy`]; fatal faults and panics are never retried. A
//! [`JobCtx`] hands every attempt its wall-clock deadline so the job
//! can cut itself off (`Simulation::with_deadline`) instead of hanging
//! the sweep.

use crate::error::JobError;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Bounded retry with exponential backoff for transient faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the 2nd attempt; doubles per further attempt.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Backoff before attempt `attempt` (2-based): exponential, capped.
    fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(2).min(16);
        self.base_backoff
            .saturating_mul(1 << shift)
            .min(self.max_backoff)
    }
}

/// Executor configuration for one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Work-stealing worker threads.
    pub workers: usize,
    /// Retry policy for transient job faults.
    pub retry: RetryPolicy,
    /// Per-job wall-clock watchdog: each attempt receives
    /// `now + watchdog` as its [`JobCtx::deadline`]. The job itself
    /// honours it (cooperatively); `None` disables.
    pub watchdog: Option<Duration>,
}

impl ExecConfig {
    /// `workers` threads, default retry, no watchdog.
    pub fn new(workers: usize) -> Self {
        ExecConfig {
            workers,
            retry: RetryPolicy::default(),
            watchdog: None,
        }
    }
}

/// Per-attempt context handed to the job closure.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// 1-based attempt number (> 1 on retries of transient faults).
    pub attempt: u32,
    /// Wall-clock deadline for this attempt, when a watchdog is set.
    pub deadline: Option<Instant>,
}

/// A failure returned (not thrown) by one job attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFault {
    /// Plausibly clears on retry (I/O pressure); retried under the
    /// [`RetryPolicy`].
    Transient(String),
    /// Deterministic failure; retrying would fail identically.
    Fatal(String),
    /// The attempt gave up at its [`JobCtx::deadline`]; not retried
    /// (the job is as slow the second time).
    Timeout(String),
}

/// Run `f` over `items` on work-stealing threads and return one
/// `Result` per item, **in input order**.
///
/// Each attempt of each job runs inside `catch_unwind`, so a panicking
/// job yields `Err(JobError::Panicked)` in its slot while every other
/// job completes normally. `Err(JobFault::Transient)` results are
/// retried with exponential backoff up to the policy's attempt budget;
/// fatal faults, timeouts and panics are final on first occurrence.
pub fn run_work_stealing<T, R, F>(items: Vec<T>, cfg: &ExecConfig, f: F) -> Vec<Result<R, JobError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &JobCtx) -> Result<R, JobFault> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = cfg.workers.clamp(1, n);
    if workers == 1 {
        return items.iter().map(|item| run_job(item, cfg, &f)).collect();
    }

    let deques: Vec<Mutex<VecDeque<(usize, &T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.iter().enumerate() {
        deques[i % workers].lock().push_back((i, item));
    }
    let results: Vec<Mutex<Option<Result<R, JobError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|s| {
        for me in 0..workers {
            let deques = &deques;
            let results = &results;
            let f = &f;
            s.spawn(move |_| loop {
                // Release the own-deque guard before stealing: holding
                // it while locking a victim would deadlock two thieves
                // eyeing each other's (empty) deques.
                let mut task = deques[me].lock().pop_front();
                if task.is_none() {
                    task = steal(deques, me);
                }
                let Some((idx, item)) = task else { break };
                *results[idx].lock() = Some(run_job(item, cfg, f));
            });
        }
    })
    .expect("farm executor thread panicked outside catch_unwind");

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task ran"))
        .collect()
}

/// One job: catch panics, retry transient faults with backoff.
fn run_job<T, R, F>(item: &T, cfg: &ExecConfig, f: &F) -> Result<R, JobError>
where
    F: Fn(&T, &JobCtx) -> Result<R, JobFault>,
{
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let ctx = JobCtx {
            attempt,
            deadline: cfg.watchdog.map(|d| Instant::now() + d),
        };
        match catch_unwind(AssertUnwindSafe(|| f(item, &ctx))) {
            Ok(Ok(r)) => return Ok(r),
            Ok(Err(JobFault::Transient(message))) => {
                if attempt >= cfg.retry.max_attempts {
                    return Err(JobError::Failed {
                        message,
                        attempts: attempt,
                    });
                }
                let backoff = cfg.retry.backoff(attempt + 1);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            Ok(Err(JobFault::Fatal(message))) => {
                return Err(JobError::Failed {
                    message,
                    attempts: attempt,
                })
            }
            Ok(Err(JobFault::Timeout(message))) => return Err(JobError::TimedOut { message }),
            Err(payload) => {
                return Err(JobError::Panicked {
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Steal one task from the back of the currently fullest victim deque.
fn steal<'a, T>(deques: &[Mutex<VecDeque<(usize, &'a T)>>], me: usize) -> Option<(usize, &'a T)> {
    let victim = deques
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != me)
        .max_by_key(|(_, d)| d.lock().len())?
        .0;
    deques[victim].lock().pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cfg(workers: usize) -> ExecConfig {
        ExecConfig {
            workers,
            retry: RetryPolicy {
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                ..RetryPolicy::default()
            },
            watchdog: None,
        }
    }

    fn unwrap_all<R: std::fmt::Debug>(res: Vec<Result<R, JobError>>) -> Vec<R> {
        res.into_iter().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = unwrap_all(run_work_stealing(items, &cfg(4), |x, _| Ok(x * 2)));
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_work_stealing((0..257).collect(), &cfg(8), |x: &usize, _| {
            ran.fetch_add(1, Ordering::Relaxed);
            Ok(*x)
        });
        assert_eq!(out.len(), 257);
        assert_eq!(ran.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn uneven_task_costs_still_complete() {
        // Front-load one long task per deque so stealing must happen
        // for the run to finish quickly; correctness is what we assert.
        let out = unwrap_all(run_work_stealing(
            (0..32).collect(),
            &cfg(4),
            |x: &usize, _| {
                if *x < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Ok(x + 1)
            },
        ));
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_and_empty_input() {
        assert_eq!(
            unwrap_all(run_work_stealing(vec![1, 2, 3], &cfg(1), |x, _| Ok(*x))),
            vec![1, 2, 3]
        );
        assert!(
            run_work_stealing(Vec::<u8>::new(), &cfg(4), |x, _| Ok::<_, JobFault>(*x)).is_empty()
        );
    }

    #[test]
    fn one_panicking_job_out_of_32_leaves_31_results() {
        let out = run_work_stealing((0..32).collect(), &cfg(4), |x: &usize, _| {
            if *x == 13 {
                panic!("poisoned simulation #{x}");
            }
            Ok(*x * 10)
        });
        assert_eq!(out.len(), 32);
        let (ok, err): (Vec<_>, Vec<_>) = out.iter().partition(|r| r.is_ok());
        assert_eq!(ok.len(), 31, "all healthy jobs completed");
        assert_eq!(err.len(), 1, "exactly the poisoned job failed");
        match &out[13] {
            Err(JobError::Panicked { message }) => {
                assert!(message.contains("poisoned simulation #13"), "{message}");
            }
            other => panic!("slot 13 should be Panicked, got {other:?}"),
        }
        assert_eq!(out[12], Ok(120));
        assert_eq!(out[14], Ok(140));
    }

    #[test]
    fn transient_faults_are_retried_with_bounded_attempts() {
        let calls = AtomicUsize::new(0);
        let out = run_work_stealing(vec![0usize], &cfg(1), |_, ctx| {
            calls.fetch_add(1, Ordering::Relaxed);
            if ctx.attempt < 3 {
                Err(JobFault::Transient("injected ENOSPC".into()))
            } else {
                Ok(ctx.attempt)
            }
        });
        assert_eq!(out[0], Ok(3), "third attempt succeeds");
        assert_eq!(calls.load(Ordering::Relaxed), 3);

        // A fault that never clears exhausts the attempt budget.
        let out = run_work_stealing(vec![0usize], &cfg(1), |_, _| {
            Err::<(), _>(JobFault::Transient("still full".into()))
        });
        assert_eq!(
            out[0],
            Err(JobError::Failed {
                message: "still full".into(),
                attempts: 3
            })
        );
    }

    #[test]
    fn fatal_faults_and_timeouts_are_not_retried() {
        let calls = AtomicUsize::new(0);
        let out = run_work_stealing(vec![0usize], &cfg(1), |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err::<(), _>(JobFault::Fatal("bad workload".into()))
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "fatal: single attempt");
        assert!(matches!(&out[0], Err(JobError::Failed { attempts: 1, .. })));

        let out = run_work_stealing(vec![0usize], &cfg(1), |_, _| {
            Err::<(), _>(JobFault::Timeout("too slow".into()))
        });
        assert_eq!(
            out[0],
            Err(JobError::TimedOut {
                message: "too slow".into()
            })
        );
    }

    #[test]
    fn watchdog_deadline_reaches_the_job() {
        let e = ExecConfig {
            watchdog: Some(Duration::from_secs(3600)),
            ..cfg(1)
        };
        let out = run_work_stealing(vec![0usize], &e, |_, ctx| {
            let dl = ctx.deadline.expect("deadline set");
            Ok(dl > Instant::now())
        });
        assert_eq!(out[0], Ok(true));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff(2), Duration::from_millis(10));
        assert_eq!(p.backoff(3), Duration::from_millis(20));
        assert_eq!(p.backoff(4), Duration::from_millis(35), "capped");
    }
}
