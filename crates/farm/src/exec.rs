//! Work-stealing parallel executor for farm jobs.
//!
//! Simulation times vary wildly across the sweep grid (a 16-core
//! PTB+2-level point costs ~10× a 2-core baseline), so a static
//! partition of the batch leaves workers idle. Each worker owns a deque
//! seeded round-robin; it pops work from its own front and, when empty,
//! steals from the back of the fullest victim — the classic
//! owner-LIFO/thief-FIFO discipline, built on `crossbeam` scoped
//! threads and mutexed deques (the vendored crossbeam exposes scoped
//! threads only; contention is irrelevant here because each task is a
//! whole cycle-level simulation).

use parking_lot::Mutex;
use std::collections::VecDeque;

/// Run `f` over `items` on `workers` work-stealing threads and return
/// the results **in input order**. Panics in `f` propagate (aborting
/// the batch), matching the previous fail-fast runner behaviour.
pub fn run_work_stealing<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    let deques: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].lock().push_back((i, item));
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|s| {
        for me in 0..workers {
            let deques = &deques;
            let results = &results;
            let f = &f;
            s.spawn(move |_| loop {
                let task = deques[me].lock().pop_front().or_else(|| steal(deques, me));
                let Some((idx, item)) = task else { break };
                *results[idx].lock() = Some(f(item));
            });
        }
    })
    .expect("farm worker panicked");

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task ran"))
        .collect()
}

/// Steal one task from the back of the currently fullest victim deque.
fn steal<T>(deques: &[Mutex<VecDeque<(usize, T)>>], me: usize) -> Option<(usize, T)> {
    let victim = deques
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != me)
        .max_by_key(|(_, d)| d.lock().len())?
        .0;
    deques[victim].lock().pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_work_stealing(items, 4, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_work_stealing((0..257).collect(), 8, |x: usize| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(ran.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn uneven_task_costs_still_complete() {
        // Front-load one long task per deque so stealing must happen
        // for the run to finish quickly; correctness is what we assert.
        let out = run_work_stealing((0..32).collect(), 4, |x: usize| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_and_empty_input() {
        assert_eq!(run_work_stealing(vec![1, 2, 3], 1, |x| x), vec![1, 2, 3]);
        assert!(run_work_stealing(Vec::<u8>::new(), 4, |x| x).is_empty());
    }
}
