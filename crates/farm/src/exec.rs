//! Panic-isolated, retrying work-stealing executor for farm jobs.
//!
//! Simulation times vary wildly across the sweep grid (a 16-core
//! PTB+2-level point costs ~10× a 2-core baseline), so a static
//! partition of the batch leaves workers idle. Each worker owns a deque
//! seeded round-robin; it pops work from its own front and, when empty,
//! steals from the back of the fullest victim — the classic
//! owner-LIFO/thief-FIFO discipline, built on `crossbeam` scoped
//! threads and mutexed deques (the vendored crossbeam exposes scoped
//! threads only; contention is irrelevant here because each task is a
//! whole cycle-level simulation).
//!
//! ## Failure containment
//!
//! Each job runs inside `catch_unwind`: one poisoned simulation returns
//! [`JobError::Panicked`] in its own slot and every other job still
//! completes — the pre-chaos executor aborted the whole batch instead.
//! Jobs that *return* a transient fault (injected ENOSPC, a momentarily
//! full disk) are retried with exponential backoff under a bounded
//! [`RetryPolicy`]; fatal faults and panics are never retried. A
//! [`JobCtx`] hands every attempt its wall-clock deadline so the job
//! can cut itself off (`Simulation::with_deadline`) instead of hanging
//! the sweep.

use crate::error::JobError;
use parking_lot::Mutex;
use ptb_obs::CounterRegistry;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Bounded retry with exponential backoff for transient faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the 2nd attempt; doubles per further attempt.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Backoff before attempt `attempt` (2-based): exponential, capped.
    fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(2).min(16);
        self.base_backoff
            .saturating_mul(1 << shift)
            .min(self.max_backoff)
    }
}

/// Executor configuration for one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Work-stealing worker threads.
    pub workers: usize,
    /// Retry policy for transient job faults.
    pub retry: RetryPolicy,
    /// Per-job wall-clock watchdog: each attempt receives
    /// `now + watchdog` as its [`JobCtx::deadline`]. The job itself
    /// honours it (cooperatively); `None` disables.
    pub watchdog: Option<Duration>,
}

impl ExecConfig {
    /// `workers` threads, default retry, no watchdog.
    pub fn new(workers: usize) -> Self {
        ExecConfig {
            workers,
            retry: RetryPolicy::default(),
            watchdog: None,
        }
    }
}

/// Per-attempt context handed to the job closure.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// 1-based attempt number (> 1 on retries of transient faults).
    pub attempt: u32,
    /// Wall-clock deadline for this attempt, when a watchdog is set.
    pub deadline: Option<Instant>,
}

/// A failure returned (not thrown) by one job attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFault {
    /// Plausibly clears on retry (I/O pressure); retried under the
    /// [`RetryPolicy`].
    Transient(String),
    /// Deterministic failure; retrying would fail identically.
    Fatal(String),
    /// The attempt gave up at its [`JobCtx::deadline`]; not retried
    /// (the job is as slow the second time).
    Timeout(String),
}

/// Executor telemetry accumulated across batches, exported as
/// `farm.exec.*` counters.
///
/// All fields are relaxed atomics (plus one mutexed latency vector for
/// retry-backoff percentiles), so one instance can be shared by every
/// worker of every batch a [`crate::Farm`] runs. Zero-valued stats mean
/// the executor never ran (or ran unobserved via
/// [`run_work_stealing`]).
#[derive(Debug, Default)]
pub struct ExecStats {
    tasks: AtomicU64,
    steals: AtomicU64,
    steal_misses: AtomicU64,
    max_queue_depth: AtomicU64,
    batches: AtomicU64,
    busy_ns: AtomicU64,
    capacity_ns: AtomicU64,
    wall_ns: AtomicU64,
    retry_sleeps: AtomicU64,
    backoffs_ms: Mutex<Vec<f64>>,
}

impl ExecStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tasks executed (one per input item, regardless of outcome).
    pub fn tasks(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    /// Successful steals (a thief popped a victim's deque).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Deepest per-worker queue observed at batch seeding.
    pub fn max_queue_depth(&self) -> u64 {
        self.max_queue_depth.load(Ordering::Relaxed)
    }

    /// Worker utilization across all batches: job wall time over
    /// `workers × batch wall time` (0..=1; 0 before any batch ran).
    pub fn utilization(&self) -> f64 {
        let cap = self.capacity_ns.load(Ordering::Relaxed);
        if cap == 0 {
            0.0
        } else {
            self.busy_ns.load(Ordering::Relaxed) as f64 / cap as f64
        }
    }

    fn note_backoff(&self, backoff: Duration) {
        self.retry_sleeps.fetch_add(1, Ordering::Relaxed);
        self.backoffs_ms.lock().push(backoff.as_secs_f64() * 1e3);
    }

    fn note_queue_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn note_batch(&self, n_tasks: usize, workers: usize, wall: Duration) {
        let wall_ns = wall.as_nanos() as u64;
        self.tasks.fetch_add(n_tasks as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.wall_ns.fetch_add(wall_ns, Ordering::Relaxed);
        self.capacity_ns
            .fetch_add(wall_ns.saturating_mul(workers as u64), Ordering::Relaxed);
    }

    /// Export as `farm.exec.*` series (retry-backoff percentiles via
    /// `ptb_metrics::percentile`, only when sleeps happened).
    pub fn counters(&self) -> CounterRegistry {
        let mut c = CounterRegistry::new();
        c.add("farm.exec.tasks", self.tasks() as f64);
        c.add(
            "farm.exec.batches",
            self.batches.load(Ordering::Relaxed) as f64,
        );
        c.add("farm.exec.steals", self.steals() as f64);
        c.add(
            "farm.exec.steal_misses",
            self.steal_misses.load(Ordering::Relaxed) as f64,
        );
        c.set("farm.exec.max_queue_depth", self.max_queue_depth() as f64);
        c.add(
            "farm.exec.wall_ms",
            self.wall_ns.load(Ordering::Relaxed) as f64 / 1e6,
        );
        c.add(
            "farm.exec.busy_ms",
            self.busy_ns.load(Ordering::Relaxed) as f64 / 1e6,
        );
        c.set("farm.exec.utilization_pct", self.utilization() * 100.0);
        c.add(
            "farm.exec.retry.sleeps",
            self.retry_sleeps.load(Ordering::Relaxed) as f64,
        );
        let backoffs = self.backoffs_ms.lock();
        if !backoffs.is_empty() {
            c.set(
                "farm.exec.retry.backoff_ms_p50",
                ptb_metrics::percentile(&backoffs, 50.0),
            );
            c.set(
                "farm.exec.retry.backoff_ms_p95",
                ptb_metrics::percentile(&backoffs, 95.0),
            );
        }
        c
    }
}

/// Run `f` over `items` on work-stealing threads and return one
/// `Result` per item, **in input order**.
///
/// Each attempt of each job runs inside `catch_unwind`, so a panicking
/// job yields `Err(JobError::Panicked)` in its slot while every other
/// job completes normally. `Err(JobFault::Transient)` results are
/// retried with exponential backoff under the policy's attempt budget;
/// fatal faults, timeouts and panics are final on first occurrence.
pub fn run_work_stealing<T, R, F>(items: Vec<T>, cfg: &ExecConfig, f: F) -> Vec<Result<R, JobError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &JobCtx) -> Result<R, JobFault> + Sync,
{
    run_work_stealing_observed(items, cfg, None, f)
}

/// [`run_work_stealing`] with executor telemetry: when `stats` is given,
/// queue depths, steal traffic, per-worker busy time and retry backoffs
/// are accumulated into it (the jobs themselves are unaffected).
pub fn run_work_stealing_observed<T, R, F>(
    items: Vec<T>,
    cfg: &ExecConfig,
    stats: Option<&ExecStats>,
    f: F,
) -> Vec<Result<R, JobError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &JobCtx) -> Result<R, JobFault> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let batch_t0 = Instant::now();
    let workers = cfg.workers.clamp(1, n);
    if workers == 1 {
        if let Some(s) = stats {
            s.note_queue_depth(n as u64);
        }
        let out = items
            .iter()
            .map(|item| timed_job(item, cfg, stats, &f))
            .collect();
        if let Some(s) = stats {
            s.note_batch(n, 1, batch_t0.elapsed());
        }
        return out;
    }

    let deques: Vec<Mutex<VecDeque<(usize, &T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.iter().enumerate() {
        deques[i % workers].lock().push_back((i, item));
    }
    if let Some(s) = stats {
        s.note_queue_depth(n.div_ceil(workers) as u64);
    }
    let results: Vec<Mutex<Option<Result<R, JobError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|s| {
        for me in 0..workers {
            let deques = &deques;
            let results = &results;
            let f = &f;
            s.spawn(move |_| loop {
                // Release the own-deque guard before stealing: holding
                // it while locking a victim would deadlock two thieves
                // eyeing each other's (empty) deques.
                let mut task = deques[me].lock().pop_front();
                if task.is_none() {
                    task = steal(deques, me);
                    if let Some(st) = stats {
                        if task.is_some() {
                            st.steals.fetch_add(1, Ordering::Relaxed);
                        } else {
                            st.steal_misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let Some((idx, item)) = task else { break };
                *results[idx].lock() = Some(timed_job(item, cfg, stats, f));
            });
        }
    })
    .expect("farm executor thread panicked outside catch_unwind");

    if let Some(s) = stats {
        s.note_batch(n, workers, batch_t0.elapsed());
    }
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task ran"))
        .collect()
}

/// [`run_job`] plus per-task busy-time accounting.
fn timed_job<T, R, F>(
    item: &T,
    cfg: &ExecConfig,
    stats: Option<&ExecStats>,
    f: &F,
) -> Result<R, JobError>
where
    F: Fn(&T, &JobCtx) -> Result<R, JobFault>,
{
    let t0 = Instant::now();
    let out = run_job(item, cfg, stats, f);
    if let Some(s) = stats {
        s.busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    out
}

/// One job: catch panics, retry transient faults with backoff.
fn run_job<T, R, F>(
    item: &T,
    cfg: &ExecConfig,
    stats: Option<&ExecStats>,
    f: &F,
) -> Result<R, JobError>
where
    F: Fn(&T, &JobCtx) -> Result<R, JobFault>,
{
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let ctx = JobCtx {
            attempt,
            deadline: cfg.watchdog.map(|d| Instant::now() + d),
        };
        match catch_unwind(AssertUnwindSafe(|| f(item, &ctx))) {
            Ok(Ok(r)) => return Ok(r),
            Ok(Err(JobFault::Transient(message))) => {
                if attempt >= cfg.retry.max_attempts {
                    return Err(JobError::Failed {
                        message,
                        attempts: attempt,
                    });
                }
                let backoff = cfg.retry.backoff(attempt + 1);
                if let Some(s) = stats {
                    s.note_backoff(backoff);
                }
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            Ok(Err(JobFault::Fatal(message))) => {
                return Err(JobError::Failed {
                    message,
                    attempts: attempt,
                })
            }
            Ok(Err(JobFault::Timeout(message))) => return Err(JobError::TimedOut { message }),
            Err(payload) => {
                return Err(JobError::Panicked {
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Steal one task from the back of the currently fullest victim deque.
fn steal<'a, T>(deques: &[Mutex<VecDeque<(usize, &'a T)>>], me: usize) -> Option<(usize, &'a T)> {
    let victim = deques
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != me)
        .max_by_key(|(_, d)| d.lock().len())?
        .0;
    deques[victim].lock().pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cfg(workers: usize) -> ExecConfig {
        ExecConfig {
            workers,
            retry: RetryPolicy {
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                ..RetryPolicy::default()
            },
            watchdog: None,
        }
    }

    fn unwrap_all<R: std::fmt::Debug>(res: Vec<Result<R, JobError>>) -> Vec<R> {
        res.into_iter().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = unwrap_all(run_work_stealing(items, &cfg(4), |x, _| Ok(x * 2)));
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_work_stealing((0..257).collect(), &cfg(8), |x: &usize, _| {
            ran.fetch_add(1, Ordering::Relaxed);
            Ok(*x)
        });
        assert_eq!(out.len(), 257);
        assert_eq!(ran.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn uneven_task_costs_still_complete() {
        // Front-load one long task per deque so stealing must happen
        // for the run to finish quickly; correctness is what we assert.
        let out = unwrap_all(run_work_stealing(
            (0..32).collect(),
            &cfg(4),
            |x: &usize, _| {
                if *x < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Ok(x + 1)
            },
        ));
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_and_empty_input() {
        assert_eq!(
            unwrap_all(run_work_stealing(vec![1, 2, 3], &cfg(1), |x, _| Ok(*x))),
            vec![1, 2, 3]
        );
        assert!(
            run_work_stealing(Vec::<u8>::new(), &cfg(4), |x, _| Ok::<_, JobFault>(*x)).is_empty()
        );
    }

    #[test]
    fn one_panicking_job_out_of_32_leaves_31_results() {
        let out = run_work_stealing((0..32).collect(), &cfg(4), |x: &usize, _| {
            if *x == 13 {
                panic!("poisoned simulation #{x}");
            }
            Ok(*x * 10)
        });
        assert_eq!(out.len(), 32);
        let (ok, err): (Vec<_>, Vec<_>) = out.iter().partition(|r| r.is_ok());
        assert_eq!(ok.len(), 31, "all healthy jobs completed");
        assert_eq!(err.len(), 1, "exactly the poisoned job failed");
        match &out[13] {
            Err(JobError::Panicked { message }) => {
                assert!(message.contains("poisoned simulation #13"), "{message}");
            }
            other => panic!("slot 13 should be Panicked, got {other:?}"),
        }
        assert_eq!(out[12], Ok(120));
        assert_eq!(out[14], Ok(140));
    }

    #[test]
    fn transient_faults_are_retried_with_bounded_attempts() {
        let calls = AtomicUsize::new(0);
        let out = run_work_stealing(vec![0usize], &cfg(1), |_, ctx| {
            calls.fetch_add(1, Ordering::Relaxed);
            if ctx.attempt < 3 {
                Err(JobFault::Transient("injected ENOSPC".into()))
            } else {
                Ok(ctx.attempt)
            }
        });
        assert_eq!(out[0], Ok(3), "third attempt succeeds");
        assert_eq!(calls.load(Ordering::Relaxed), 3);

        // A fault that never clears exhausts the attempt budget.
        let out = run_work_stealing(vec![0usize], &cfg(1), |_, _| {
            Err::<(), _>(JobFault::Transient("still full".into()))
        });
        assert_eq!(
            out[0],
            Err(JobError::Failed {
                message: "still full".into(),
                attempts: 3
            })
        );
    }

    #[test]
    fn fatal_faults_and_timeouts_are_not_retried() {
        let calls = AtomicUsize::new(0);
        let out = run_work_stealing(vec![0usize], &cfg(1), |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err::<(), _>(JobFault::Fatal("bad workload".into()))
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "fatal: single attempt");
        assert!(matches!(&out[0], Err(JobError::Failed { attempts: 1, .. })));

        let out = run_work_stealing(vec![0usize], &cfg(1), |_, _| {
            Err::<(), _>(JobFault::Timeout("too slow".into()))
        });
        assert_eq!(
            out[0],
            Err(JobError::TimedOut {
                message: "too slow".into()
            })
        );
    }

    #[test]
    fn watchdog_deadline_reaches_the_job() {
        let e = ExecConfig {
            watchdog: Some(Duration::from_secs(3600)),
            ..cfg(1)
        };
        let out = run_work_stealing(vec![0usize], &e, |_, ctx| {
            let dl = ctx.deadline.expect("deadline set");
            Ok(dl > Instant::now())
        });
        assert_eq!(out[0], Ok(true));
    }

    #[test]
    fn exec_stats_capture_steals_and_utilization() {
        let stats = ExecStats::new();
        let out = run_work_stealing_observed(
            (0..32).collect::<Vec<usize>>(),
            &cfg(4),
            Some(&stats),
            |x, _| {
                if *x < 4 {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Ok(*x)
            },
        );
        assert_eq!(out.len(), 32);
        assert_eq!(stats.tasks(), 32);
        assert_eq!(stats.max_queue_depth(), 8);
        // Front-loaded sleeps force stealing; every worker ends on a miss.
        assert!(stats.steals() > 0, "steals = {}", stats.steals());
        let c = stats.counters();
        assert_eq!(c.get("farm.exec.tasks"), Some(32.0));
        assert_eq!(c.get("farm.exec.batches"), Some(1.0));
        assert!(c.get("farm.exec.steal_misses").unwrap() >= 1.0);
        let util = c.get("farm.exec.utilization_pct").unwrap();
        assert!(util > 0.0 && util <= 100.0, "utilization = {util}");
        assert!(c.get("farm.exec.wall_ms").unwrap() > 0.0);
    }

    #[test]
    fn exec_stats_record_retry_backoffs() {
        let stats = ExecStats::new();
        let e = ExecConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            ..cfg(1)
        };
        let out = run_work_stealing_observed(vec![0usize], &e, Some(&stats), |_, ctx| {
            if ctx.attempt < 3 {
                Err(JobFault::Transient("flaky".into()))
            } else {
                Ok(())
            }
        });
        assert_eq!(out[0], Ok(()));
        let c = stats.counters();
        assert_eq!(c.get("farm.exec.retry.sleeps"), Some(2.0));
        let p50 = c.get("farm.exec.retry.backoff_ms_p50").unwrap();
        let p95 = c.get("farm.exec.retry.backoff_ms_p95").unwrap();
        assert!(p50 >= 1.0 && p95 <= 2.0, "p50={p50} p95={p95}");
    }

    #[test]
    fn unobserved_runs_have_zero_stats() {
        let stats = ExecStats::new();
        let _ = run_work_stealing((0..8).collect::<Vec<usize>>(), &cfg(2), |x, _| Ok(*x));
        assert_eq!(stats.tasks(), 0);
        assert_eq!(stats.utilization(), 0.0);
        // Percentile series are absent, not zero, when nothing slept.
        assert_eq!(stats.counters().get("farm.exec.retry.backoff_ms_p50"), None);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff(2), Duration::from_millis(10));
        assert_eq!(p.backoff(3), Duration::from_millis(20));
        assert_eq!(p.backoff(4), Duration::from_millis(35), "capped");
    }
}
