//! # ptb-farm — content-addressed result store + resumable experiment scheduler
//!
//! The paper's evaluation is a large, heavily overlapping sweep: 14
//! benchmarks × 4+ mechanisms × 4 core counts, re-run by more than a
//! dozen figure binaries that share most of their grid. This crate makes
//! regenerating the artefact set incremental:
//!
//! * [`ResultStore`] — every [`ptb_core::RunReport`] is persisted on
//!   disk keyed by a stable content hash of the canonicalised
//!   [`ptb_core::SimConfig`], the full workload spec (which carries the
//!   RNG seed), and the store/report format versions. Any figure binary
//!   that needs a previously simulated point loads it in milliseconds
//!   instead of re-simulating.
//! * [`Journal`] — a persistent append-only job journal. Jobs are
//!   recorded when scheduled and again when they complete, so after a
//!   crash or Ctrl-C the unfinished remainder is known exactly and can
//!   be resumed with [`Farm::resume`] (or `farm_ctl resume`).
//! * [`Farm`] — the scheduler: dedups identical jobs submitted by
//!   different figures, satisfies hits from the store, runs misses in
//!   parallel on a work-stealing executor, and records completions as
//!   they land.
//! * [`FarmStats`] — per-job outcome counters (hits / misses / deduped /
//!   corrupt / retried / quarantined …), exported as a
//!   [`ptb_obs::CounterRegistry`] under the `farm.*` namespace.
//!
//! ## Failure containment
//!
//! The farm assumes both the filesystem and the simulations can fail:
//!
//! * Every store/journal byte flows through a [`FarmIo`] handle;
//!   [`ChaosIo`] injects seeded, replayable faults (ENOSPC, partial
//!   writes, read corruption, torn journal lines, dropped flushes) so
//!   the degradation paths are tested, not hoped for.
//! * [`Farm::try_run_batch`] isolates each job behind `catch_unwind`
//!   and returns one `Result` per job — a poisoned simulation is
//!   reported as a [`JobError`] in its own slot instead of killing the
//!   batch. Transient I/O faults are retried with exponential backoff;
//!   failures can be quarantined to a replayable `failed.jsonl`
//!   manifest ([`Quarantine`]) for later `farm_ctl resume` /
//!   `sim_check --replay`.
//!
//! ## Integrity
//!
//! Store entries are never trusted blindly. Each entry embeds its own
//! key, the format versions, and the full job (benchmark + config) it
//! answers for; [`ResultStore::get`] re-checks all of them against the
//! request and treats any mismatch — truncated JSON, a stale format
//! version, or a config that no longer matches its hash — as a miss,
//! deleting the entry so it is re-simulated rather than believed.
//!
//! ## Quick start
//!
//! ```
//! use ptb_core::{MechanismKind, SimConfig};
//! use ptb_farm::{Farm, FarmJob};
//! use ptb_workloads::{Benchmark, Scale};
//!
//! let dir = std::env::temp_dir().join("ptb-farm-doctest");
//! let farm = Farm::open(&dir).expect("open farm");
//! let cfg = SimConfig {
//!     n_cores: 2,
//!     scale: Scale::Test,
//!     mechanism: MechanismKind::None,
//!     ..SimConfig::default()
//! };
//! let jobs = vec![FarmJob::new(Benchmark::Fft, cfg)];
//! let cold = farm.run_batch(&jobs, 1); // simulates
//! let warm = farm.run_batch(&jobs, 1); // loads from the store
//! assert_eq!(cold[0].cycles, warm[0].cycles);
//! assert_eq!(farm.stats().hits, 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod error;
pub mod exec;
pub mod hash;
pub mod index;
pub mod io;
pub mod journal;
pub mod quarantine;
pub mod stats;
pub mod store;

pub use error::{FarmError, JobError};
pub use exec::{ExecConfig, ExecStats, JobCtx, JobFault, RetryPolicy};
pub use io::{ChaosConfig, ChaosIo, FarmIo, RealIo};
pub use journal::{Journal, JournalStats};
pub use quarantine::{Quarantine, QuarantineEntry, QUARANTINE_FILE};
pub use stats::{FarmSnapshot, FarmStats};
pub use store::{
    EntryFormat, MigrateReport, ResultStore, StoreDiskStats, StoreLookup, INDEX_FILE, STORE_FORMAT,
};

use ptb_core::sim::SimError;
use ptb_core::{RunReport, SimConfig, Simulation};
use ptb_obs::CounterRegistry;
use ptb_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One unit of farm work: a benchmark under a full simulation config.
///
/// The config alone pins everything the simulator reads (core count,
/// scale, mechanism, power/thermal parameters, trace capture); the
/// benchmark picks the workload generator, whose spec — including its
/// RNG seed — is folded into the content hash by [`FarmJob::key`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FarmJob {
    /// Benchmark to run.
    pub bench: Benchmark,
    /// Full simulation configuration.
    pub config: SimConfig,
}

impl FarmJob {
    /// A job from its parts.
    pub fn new(bench: Benchmark, config: SimConfig) -> Self {
        FarmJob { bench, config }
    }

    /// Content-address of this job: a 128-bit hex digest over the
    /// canonical JSON of the config, the fully expanded workload spec
    /// (benchmark programs, profiles and seed), and the store/report
    /// format versions. Stable across processes and platforms.
    pub fn key(&self) -> String {
        let spec = self.bench.spec(self.config.n_cores, self.config.scale);
        hash::job_key(&self.config, &spec)
    }

    /// Human-readable label for progress output and journal listings.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}c/{:?}",
            self.bench,
            self.config.mechanism.label(),
            self.config.n_cores,
            self.config.scale
        )
    }

    /// Run the simulation for this job, classifying failures.
    ///
    /// When `deadline` is set it is handed to the simulator as a
    /// wall-clock watchdog (checked every few thousand cycles); hitting
    /// it — or the in-config livelock budget — comes back as a typed
    /// [`JobFault`] instead of a hang or a panic. Timeouts map to
    /// [`JobFault::Timeout`], every other simulation error to
    /// [`JobFault::Fatal`] (deterministic sims fail identically on
    /// retry).
    pub fn try_simulate(&self, deadline: Option<Instant>) -> Result<RunReport, JobFault> {
        let mut sim = Simulation::new(self.config.clone());
        if let Some(dl) = deadline {
            sim = sim.with_deadline(dl);
        }
        sim.run(self.bench).map_err(|e| {
            let msg = format!("{}: {e}", self.label());
            match e {
                SimError::DeadlineExceeded { .. } => JobFault::Timeout(msg),
                _ => JobFault::Fatal(msg),
            }
        })
    }

    /// Run the simulation for this job, panicking on failure (the
    /// fail-fast path used by [`Farm::run_batch`]).
    pub fn simulate(&self) -> RunReport {
        self.try_simulate(None).unwrap_or_else(|f| match f {
            JobFault::Transient(m) | JobFault::Fatal(m) | JobFault::Timeout(m) => {
                panic!("{m}")
            }
        })
    }
}

/// Per-key outcomes of a resume pass: one `(key, result)` pair per job
/// actually re-run.
pub type ResumeOutcomes = Vec<(String, Result<RunReport, JobError>)>;

/// The experiment farm: a [`ResultStore`] plus a [`Journal`] plus the
/// scheduling logic that ties them together.
pub struct Farm {
    dir: PathBuf,
    store: ResultStore,
    journal: Journal,
    stats: FarmStats,
    exec_stats: ExecStats,
    io: Arc<dyn FarmIo>,
}

impl Farm {
    /// Open (or create) a farm rooted at `dir` on the real filesystem.
    ///
    /// If the journal shows no unfinished work left over from a previous
    /// process, it is compacted to zero length on open, so the journal
    /// only ever grows while crash-recovery information is live.
    pub fn open(dir: impl AsRef<Path>) -> Result<Farm, FarmError> {
        Self::open_with_io(dir, Arc::new(RealIo))
    }

    /// [`Farm::open`] with every store/journal filesystem operation
    /// routed through `io` (pass a [`ChaosIo`] to fault-inject).
    pub fn open_with_io(dir: impl AsRef<Path>, io: Arc<dyn FarmIo>) -> Result<Farm, FarmError> {
        Self::open_with_io_format(dir, io, EntryFormat::Json)
    }

    /// [`Farm::open_with_io`] choosing the representation new store
    /// entries are written in (either is always read back).
    pub fn open_with_io_format(
        dir: impl AsRef<Path>,
        io: Arc<dyn FarmIo>,
        format: EntryFormat,
    ) -> Result<Farm, FarmError> {
        let dir = dir.as_ref().to_path_buf();
        let store = ResultStore::open_with_format(dir.join("objects"), io.clone(), format)?;
        let journal_path = dir.join("journal.jsonl");
        let mut carried = JournalStats::default();
        if Journal::load_pending_with(&journal_path, io.as_ref())?.is_empty() {
            // Compaction would also discard the accumulated traffic
            // stats; sum them first and re-append below, so the journal
            // stays a lifetime hit/miss ledger (reset by `farm_ctl gc`).
            carried = Journal::load_stats_with(&journal_path, io.as_ref()).unwrap_or_default();
            Journal::truncate(&journal_path)?;
        }
        let journal = Journal::open_with(&journal_path, io.clone())?;
        if !carried.is_empty() {
            // Telemetry only: a failed re-append must not fail the open.
            journal.record_stats(&carried).ok();
        }
        Ok(Farm {
            dir,
            store,
            journal,
            stats: FarmStats::default(),
            exec_stats: ExecStats::default(),
            io,
        })
    }

    /// Open the farm described by the environment, unless caching is
    /// disabled:
    ///
    /// * `PTB_NO_CACHE` set (to anything but `0`) — disabled, returns
    ///   `None`;
    /// * `PTB_FARM_DIR` — store location (default `target/farm`);
    /// * `PTB_STORE_FORMAT` — `json` (default) or `bin`/`binary`, the
    ///   representation new store entries are written in;
    /// * `PTB_CHAOS` — fault-injection rate in `[0, 1]`; non-zero wraps
    ///   the filesystem in a [`ChaosIo`] (testing only);
    /// * `PTB_CHAOS_SEED` — seed for the injected faults (default 0).
    ///
    /// I/O errors opening the store degrade to uncached operation with a
    /// warning instead of failing the run.
    pub fn from_env() -> Option<Farm> {
        if let Ok(v) = std::env::var("PTB_NO_CACHE") {
            if v != "0" {
                return None;
            }
        }
        let dir = std::env::var("PTB_FARM_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/farm"));
        let format = std::env::var("PTB_STORE_FORMAT")
            .ok()
            .and_then(|v| EntryFormat::parse(&v))
            .unwrap_or_default();
        let chaos_rate = std::env::var("PTB_CHAOS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0);
        let io: Arc<dyn FarmIo> = if chaos_rate > 0.0 {
            let seed = std::env::var("PTB_CHAOS_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            eprintln!("[farm] CHAOS MODE: fault rate {chaos_rate}, seed {seed}");
            Arc::new(ChaosIo::new(ChaosConfig::uniform(seed, chaos_rate)))
        } else {
            Arc::new(RealIo)
        };
        match Farm::open_with_io_format(&dir, io, format) {
            Ok(farm) => Some(farm),
            Err(e) => {
                eprintln!(
                    "warning: cannot open farm store {}: {e}; running uncached",
                    dir.display()
                );
                None
            }
        }
    }

    /// Root directory of this farm.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The underlying result store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// The quarantine manifest of this farm (`<dir>/failed.jsonl`).
    pub fn quarantine(&self) -> Quarantine {
        Quarantine::in_dir(&self.dir)
    }

    /// Snapshot of the outcome counters accumulated by this handle.
    pub fn stats(&self) -> FarmSnapshot {
        self.stats.snapshot()
    }

    /// Executor telemetry (queue depth, steals, utilization, retry
    /// backoffs) accumulated across this handle's batches.
    pub fn exec_stats(&self) -> &ExecStats {
        &self.exec_stats
    }

    /// Sum of the `{"stats":{…}}` records in this farm's journal —
    /// hit/miss traffic from *all* processes since the journal was last
    /// compacted, not just this handle.
    pub fn journal_stats(&self) -> Result<JournalStats, FarmError> {
        Journal::load_stats_with(self.dir.join("journal.jsonl"), self.io.as_ref())
    }

    /// All counters of this farm as a `ptb-obs` registry: the
    /// `farm.*` outcome counters, the `farm.exec.*` executor telemetry,
    /// plus, when fault injection is active, the `farm.chaos.*`
    /// injected-fault counters.
    pub fn counters(&self) -> CounterRegistry {
        let mut c = self.stats.snapshot().counters();
        c.merge(&self.exec_stats.counters());
        for (name, value) in self.io.counters() {
            c.set(name, value as f64);
        }
        c
    }

    /// Jobs recorded as scheduled but never completed — the unfinished
    /// remainder a crashed or interrupted process left behind.
    pub fn pending(&self) -> Result<Vec<(String, FarmJob)>, FarmError> {
        Journal::load_pending_with(self.dir.join("journal.jsonl"), self.io.as_ref())
    }

    /// Record `jobs` in the journal as scheduled without running them.
    ///
    /// `run_batch` does this automatically for every miss; the method is
    /// public so tests and tools can reconstruct an interrupted sweep.
    pub fn record_pending(&self, jobs: &[FarmJob]) -> Result<(), FarmError> {
        for job in jobs {
            self.journal.submit(&job.key(), job)?;
        }
        Ok(())
    }

    /// Run a batch of jobs and return one `Result` per job, in batch
    /// order — the failure-isolating path.
    ///
    /// Identical jobs (same content key) are deduplicated and simulated
    /// at most once (duplicates share the first occurrence's outcome,
    /// success or failure); keys present in the store are served from it
    /// after an integrity check; the remaining misses are journalled and
    /// run across the executor's work-stealing threads with each
    /// completion persisted the moment it lands. Each job runs inside
    /// `catch_unwind` under `exec`'s retry policy and watchdog: a panic,
    /// a simulation error, or a persistent transient fault yields a
    /// [`JobError`] in that job's slot while every other job completes.
    pub fn try_run_batch(
        &self,
        jobs: &[FarmJob],
        exec: &ExecConfig,
    ) -> Vec<Result<RunReport, JobError>> {
        let stats_before = self.stats.snapshot();
        let mut results: Vec<Option<Result<RunReport, JobError>>> = vec![None; jobs.len()];
        // Batch-order indices of the first job carrying each key; later
        // occurrences are duplicates satisfied by copying.
        let mut first_of: HashMap<String, usize> = HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        let mut misses: Vec<(usize, String)> = Vec::new();
        for (idx, job) in jobs.iter().enumerate() {
            let key = job.key();
            if let Some(&first) = first_of.get(&key) {
                self.stats.deduped.incr();
                dups.push((idx, first));
                continue;
            }
            first_of.insert(key.clone(), idx);
            match self.lookup(&key, job) {
                Some(report) => {
                    self.stats.hits.incr();
                    results[idx] = Some(Ok(report));
                }
                None => {
                    self.stats.misses.incr();
                    misses.push((idx, key));
                }
            }
        }

        // Journal every miss before the first simulation starts, so a
        // crash mid-batch leaves a complete record of what was owed.
        for (idx, key) in &misses {
            if let Err(e) = self.journal.submit(key, &jobs[*idx]) {
                eprintln!("warning: journal write failed: {e}");
            }
        }

        let miss_idx: Vec<usize> = misses.iter().map(|(idx, _)| *idx).collect();
        let done = exec::run_work_stealing_observed(
            misses,
            exec,
            Some(&self.exec_stats),
            |(idx, key), ctx| {
                if ctx.attempt > 1 {
                    self.stats.retried.incr();
                }
                let report = jobs[*idx].try_simulate(ctx.deadline)?;
                self.complete(key, &jobs[*idx], &report)?;
                Ok(report)
            },
        );
        // The executor returns slots in input order, so zip against the
        // recorded miss indices to place successes and failures alike.
        for (idx, outcome) in miss_idx.into_iter().zip(done) {
            results[idx] = Some(outcome);
        }
        for (idx, first) in dups {
            results[idx] = results[first].clone();
        }
        self.journal_batch_stats(&stats_before);
        results
            .into_iter()
            .map(|r| r.expect("every job resolved"))
            .collect()
    }

    /// Journal this batch's hit/miss delta as a `{"stats":{…}}` record
    /// so `farm_ctl status` can report traffic across processes. Best
    /// effort: a failed append only warns.
    fn journal_batch_stats(&self, before: &FarmSnapshot) {
        let delta = self.stats.snapshot().since(before);
        let record = JournalStats {
            hits: delta.hits,
            misses: delta.misses,
            deduped: delta.deduped,
            completed: delta.completed,
        };
        if let Err(e) = self.journal.record_stats(&record) {
            eprintln!("warning: journal stats write failed: {e}");
        }
    }

    /// Run a batch of jobs and return their reports in batch order,
    /// panicking on the first failed job — the fail-fast path.
    ///
    /// See [`Farm::try_run_batch`] for the failure-isolating variant.
    pub fn run_batch(&self, jobs: &[FarmJob], workers: usize) -> Vec<RunReport> {
        let exec = ExecConfig::new(workers);
        self.try_run_batch(jobs, &exec)
            .into_iter()
            .zip(jobs)
            .map(|(r, job)| r.unwrap_or_else(|e| panic!("{} failed: {e}", job.label())))
            .collect()
    }

    /// Append `job`'s failure to the quarantine manifest so it can be
    /// replayed later (`farm_ctl resume`, `sim_check --replay`).
    pub fn quarantine_job(&self, job: &FarmJob, err: &JobError) -> Result<(), FarmError> {
        self.stats.quarantined.incr();
        self.quarantine().record(&QuarantineEntry::new(job, err))
    }

    /// Run exactly the unfinished remainder recorded in the journal,
    /// isolating failures. Pending entries whose result is already in
    /// the store (completed by another process, or stored just before a
    /// crash cut off the `done` record) are acknowledged without
    /// re-running. Returns the `(key, outcome)` pairs actually run.
    pub fn try_resume(&self, exec: &ExecConfig) -> Result<ResumeOutcomes, FarmError> {
        let stats_before = self.stats.snapshot();
        let pending = self.pending()?;
        let mut to_run = Vec::new();
        for (key, job) in pending {
            if self.lookup(&key, &job).is_some() {
                self.stats.hits.incr();
                self.journal.done(&key)?;
            } else {
                self.stats.resumed.incr();
                self.stats.misses.incr();
                to_run.push((key, job));
            }
        }
        let done = exec::run_work_stealing_observed(
            to_run.clone(),
            exec,
            Some(&self.exec_stats),
            |(key, job), ctx| {
                if ctx.attempt > 1 {
                    self.stats.retried.incr();
                }
                let report = job.try_simulate(ctx.deadline)?;
                self.complete(key, job, &report)?;
                Ok(report)
            },
        );
        self.journal_batch_stats(&stats_before);
        Ok(to_run
            .into_iter()
            .zip(done)
            .map(|((key, _), outcome)| (key, outcome))
            .collect())
    }

    /// Run the unfinished journal remainder, panicking on the first
    /// failed job. Returns the `(key, report)` pairs actually simulated.
    pub fn resume(&self, workers: usize) -> Result<Vec<(String, RunReport)>, FarmError> {
        let exec = ExecConfig::new(workers);
        Ok(self
            .try_resume(&exec)?
            .into_iter()
            .map(|(key, r)| match r {
                Ok(report) => (key, report),
                Err(e) => panic!("resumed job {key} failed: {e}"),
            })
            .collect())
    }

    /// Retry every quarantined job; entries that now succeed are
    /// removed from the manifest (and their results stored), entries
    /// that fail again stay. Returns `(recovered, still_failing)`.
    pub fn retry_quarantined(&self, exec: &ExecConfig) -> Result<(usize, usize), FarmError> {
        let q = self.quarantine();
        let entries = q.load()?;
        if entries.is_empty() {
            return Ok((0, 0));
        }
        let jobs: Vec<FarmJob> = entries.iter().map(|e| e.job.clone()).collect();
        let outcomes = self.try_run_batch(&jobs, exec);
        let mut still = Vec::new();
        for (entry, outcome) in entries.into_iter().zip(&outcomes) {
            if let Err(e) = outcome {
                still.push(QuarantineEntry::new(&entry.job, e));
            }
        }
        let recovered = outcomes.len() - still.len();
        let failing = still.len();
        q.rewrite(&still)?;
        Ok((recovered, failing))
    }

    /// Integrity-scan every store entry; returns `(ok, dropped)` counts.
    /// Corrupt, stale-format, or mis-keyed entries are deleted so the
    /// next request re-simulates them.
    pub fn verify(&self) -> Result<(usize, usize), FarmError> {
        let mut ok = 0;
        let mut dropped = 0;
        for key in self.store.keys()? {
            match self.store.verify_entry(&key) {
                Ok(()) => ok += 1,
                Err(reason) => {
                    eprintln!("[farm] dropping {key}: {reason}");
                    self.store.remove(&key);
                    self.stats.corrupt.incr();
                    dropped += 1;
                }
            }
        }
        // The walk above is authoritative; re-derive the packed index
        // from it so stale index state cannot outlive a verify.
        self.store.rebuild_index()?;
        Ok((ok, dropped))
    }

    /// Persist a report computed *outside* this process (a remote
    /// fleet worker) under `key`, with the same verification the local
    /// path gets: the key must match the job's content address (the
    /// store's own `put` additionally embeds and re-checks the full
    /// job), and the write is atomic and round-trip-verified. Counts
    /// toward `farm.completed` and appends the journal `done` record,
    /// exactly like a local completion.
    ///
    /// Transient store faults are returned as-is (`FarmError` with
    /// `transient() == true`) so the caller can requeue the job instead
    /// of losing the result.
    pub fn commit_remote(
        &self,
        key: &str,
        job: &FarmJob,
        report: &RunReport,
    ) -> Result<(), FarmError> {
        if job.key() != key {
            return Err(FarmError::BadKey {
                key: format!("{key} does not address the supplied job"),
            });
        }
        self.store.put(key, job, report)?;
        self.stats.completed.incr();
        if let Err(e) = self.journal.done(key) {
            // Same contract as the local path: a lost `done` record is
            // benign (resume re-checks the store first).
            eprintln!("warning: journal write failed: {e}");
        }
        Ok(())
    }

    /// Whether the journal file can still be opened for appending —
    /// the liveness signal behind `/healthz`.
    pub fn journal_writable(&self) -> bool {
        self.journal.probe_writable()
    }

    /// Store lookup with integrity handling: corrupt or stale entries
    /// are counted, removed, and reported as a miss.
    fn lookup(&self, key: &str, job: &FarmJob) -> Option<RunReport> {
        match self.store.get(key, job) {
            StoreLookup::Hit(report) => Some(*report),
            StoreLookup::Miss => None,
            StoreLookup::Corrupt(reason) => {
                eprintln!("[farm] discarding entry {key}: {reason}");
                self.store.remove(key);
                self.stats.corrupt.incr();
                None
            }
        }
    }

    /// Persist a finished job and mark it done in the journal.
    ///
    /// Transient store failures (injected ENOSPC, partial writes)
    /// surface as [`JobFault::Transient`] so the executor retries the
    /// job; non-transient ones (an unstorable report) degrade to a
    /// warning — the in-memory result is still correct, it just will
    /// not be cached.
    fn complete(&self, key: &str, job: &FarmJob, report: &RunReport) -> Result<(), JobFault> {
        match self.store.put(key, job, report) {
            Ok(()) => {}
            Err(e) if e.transient() => {
                return Err(JobFault::Transient(format!(
                    "{}: store put: {e}",
                    job.label()
                )));
            }
            Err(e) => {
                eprintln!("warning: cannot store {key}: {e}");
                self.stats.unstorable.incr();
            }
        }
        self.stats.completed.incr();
        if let Err(e) = self.journal.done(key) {
            // Losing the `done` record is benign: resume re-checks the
            // store before re-running, so the job is acknowledged then.
            eprintln!("warning: journal write failed: {e}");
        }
        Ok(())
    }
}
