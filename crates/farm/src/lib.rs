//! # ptb-farm — content-addressed result store + resumable experiment scheduler
//!
//! The paper's evaluation is a large, heavily overlapping sweep: 14
//! benchmarks × 4+ mechanisms × 4 core counts, re-run by more than a
//! dozen figure binaries that share most of their grid. This crate makes
//! regenerating the artefact set incremental:
//!
//! * [`ResultStore`] — every [`ptb_core::RunReport`] is persisted on
//!   disk keyed by a stable content hash of the canonicalised
//!   [`ptb_core::SimConfig`], the full workload spec (which carries the
//!   RNG seed), and the store/report format versions. Any figure binary
//!   that needs a previously simulated point loads it in milliseconds
//!   instead of re-simulating.
//! * [`Journal`] — a persistent append-only job journal. Jobs are
//!   recorded when scheduled and again when they complete, so after a
//!   crash or Ctrl-C the unfinished remainder is known exactly and can
//!   be resumed with [`Farm::resume`] (or `farm_ctl resume`).
//! * [`Farm`] — the scheduler: dedups identical jobs submitted by
//!   different figures, satisfies hits from the store, runs misses in
//!   parallel on a work-stealing executor, and records completions as
//!   they land.
//! * [`FarmStats`] — per-job outcome counters (hits / misses / deduped /
//!   corrupt / resumed …), exported as a [`ptb_obs::CounterRegistry`]
//!   under the `farm.*` namespace.
//!
//! ## Integrity
//!
//! Store entries are never trusted blindly. Each entry embeds its own
//! key, the format versions, and the full job (benchmark + config) it
//! answers for; [`ResultStore::get`] re-checks all of them against the
//! request and treats any mismatch — truncated JSON, a stale format
//! version, or a config that no longer matches its hash — as a miss,
//! deleting the entry so it is re-simulated rather than believed.
//!
//! ## Quick start
//!
//! ```
//! use ptb_core::{MechanismKind, SimConfig};
//! use ptb_farm::{Farm, FarmJob};
//! use ptb_workloads::{Benchmark, Scale};
//!
//! let dir = std::env::temp_dir().join("ptb-farm-doctest");
//! let farm = Farm::open(&dir).expect("open farm");
//! let cfg = SimConfig {
//!     n_cores: 2,
//!     scale: Scale::Test,
//!     mechanism: MechanismKind::None,
//!     ..SimConfig::default()
//! };
//! let jobs = vec![FarmJob::new(Benchmark::Fft, cfg)];
//! let cold = farm.run_batch(&jobs, 1); // simulates
//! let warm = farm.run_batch(&jobs, 1); // loads from the store
//! assert_eq!(cold[0].cycles, warm[0].cycles);
//! assert_eq!(farm.stats().hits, 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod hash;
pub mod journal;
pub mod stats;
pub mod store;

pub use journal::Journal;
pub use stats::{FarmSnapshot, FarmStats};
pub use store::{ResultStore, StoreLookup, STORE_FORMAT};

use ptb_core::{RunReport, SimConfig, Simulation};
use ptb_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// One unit of farm work: a benchmark under a full simulation config.
///
/// The config alone pins everything the simulator reads (core count,
/// scale, mechanism, power/thermal parameters, trace capture); the
/// benchmark picks the workload generator, whose spec — including its
/// RNG seed — is folded into the content hash by [`FarmJob::key`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FarmJob {
    /// Benchmark to run.
    pub bench: Benchmark,
    /// Full simulation configuration.
    pub config: SimConfig,
}

impl FarmJob {
    /// A job from its parts.
    pub fn new(bench: Benchmark, config: SimConfig) -> Self {
        FarmJob { bench, config }
    }

    /// Content-address of this job: a 128-bit hex digest over the
    /// canonical JSON of the config, the fully expanded workload spec
    /// (benchmark programs, profiles and seed), and the store/report
    /// format versions. Stable across processes and platforms.
    pub fn key(&self) -> String {
        let spec = self.bench.spec(self.config.n_cores, self.config.scale);
        hash::job_key(&self.config, &spec)
    }

    /// Human-readable label for progress output and journal listings.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}c/{:?}",
            self.bench,
            self.config.mechanism.label(),
            self.config.n_cores,
            self.config.scale
        )
    }

    /// Run the simulation for this job (a cache miss).
    pub fn simulate(&self) -> RunReport {
        Simulation::new(self.config.clone())
            .run(self.bench)
            .unwrap_or_else(|e| panic!("{} failed: {e}", self.label()))
    }
}

/// The experiment farm: a [`ResultStore`] plus a [`Journal`] plus the
/// scheduling logic that ties them together.
pub struct Farm {
    dir: PathBuf,
    store: ResultStore,
    journal: Journal,
    stats: FarmStats,
}

impl Farm {
    /// Open (or create) a farm rooted at `dir`.
    ///
    /// If the journal shows no unfinished work left over from a previous
    /// process, it is compacted to zero length on open, so the journal
    /// only ever grows while crash-recovery information is live.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Farm> {
        let dir = dir.as_ref().to_path_buf();
        let store = ResultStore::open(dir.join("objects"))?;
        let journal_path = dir.join("journal.jsonl");
        if Journal::load_pending(&journal_path)?.is_empty() {
            Journal::truncate(&journal_path)?;
        }
        let journal = Journal::open(&journal_path)?;
        Ok(Farm {
            dir,
            store,
            journal,
            stats: FarmStats::default(),
        })
    }

    /// Open the farm described by the environment, unless caching is
    /// disabled:
    ///
    /// * `PTB_NO_CACHE` set (to anything but `0`) — disabled, returns
    ///   `None`;
    /// * `PTB_FARM_DIR` — store location (default `target/farm`).
    ///
    /// I/O errors opening the store degrade to uncached operation with a
    /// warning instead of failing the run.
    pub fn from_env() -> Option<Farm> {
        if let Ok(v) = std::env::var("PTB_NO_CACHE") {
            if v != "0" {
                return None;
            }
        }
        let dir = std::env::var("PTB_FARM_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/farm"));
        match Farm::open(&dir) {
            Ok(farm) => Some(farm),
            Err(e) => {
                eprintln!(
                    "warning: cannot open farm store {}: {e}; running uncached",
                    dir.display()
                );
                None
            }
        }
    }

    /// Root directory of this farm.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The underlying result store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Snapshot of the outcome counters accumulated by this handle.
    pub fn stats(&self) -> FarmSnapshot {
        self.stats.snapshot()
    }

    /// Jobs recorded as scheduled but never completed — the unfinished
    /// remainder a crashed or interrupted process left behind.
    pub fn pending(&self) -> io::Result<Vec<(String, FarmJob)>> {
        Journal::load_pending(self.dir.join("journal.jsonl"))
    }

    /// Record `jobs` in the journal as scheduled without running them.
    ///
    /// `run_batch` does this automatically for every miss; the method is
    /// public so tests and tools can reconstruct an interrupted sweep.
    pub fn record_pending(&self, jobs: &[FarmJob]) -> io::Result<()> {
        for job in jobs {
            self.journal.submit(&job.key(), job)?;
        }
        Ok(())
    }

    /// Run a batch of jobs and return their reports in batch order.
    ///
    /// Identical jobs (same content key) are deduplicated and simulated
    /// at most once; keys present in the store are served from it after
    /// an integrity check; the remaining misses are journalled and run
    /// across `workers` work-stealing threads, with each completion
    /// persisted to the store and journalled as done the moment it lands
    /// — so an interrupt at any point loses at most the in-flight
    /// simulations.
    pub fn run_batch(&self, jobs: &[FarmJob], workers: usize) -> Vec<RunReport> {
        let mut results: Vec<Option<RunReport>> = vec![None; jobs.len()];
        // Batch-order indices of the first job carrying each key; later
        // occurrences are duplicates satisfied by copying.
        let mut first_of: HashMap<String, usize> = HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        let mut misses: Vec<(usize, String)> = Vec::new();
        for (idx, job) in jobs.iter().enumerate() {
            let key = job.key();
            if let Some(&first) = first_of.get(&key) {
                self.stats.deduped.incr();
                dups.push((idx, first));
                continue;
            }
            first_of.insert(key.clone(), idx);
            match self.lookup(&key, job) {
                Some(report) => {
                    self.stats.hits.incr();
                    results[idx] = Some(report);
                }
                None => {
                    self.stats.misses.incr();
                    misses.push((idx, key));
                }
            }
        }

        // Journal every miss before the first simulation starts, so a
        // crash mid-batch leaves a complete record of what was owed.
        for (idx, key) in &misses {
            if let Err(e) = self.journal.submit(key, &jobs[*idx]) {
                eprintln!("warning: journal write failed: {e}");
            }
        }

        let done = exec::run_work_stealing(misses, workers, |(idx, key)| {
            let report = jobs[idx].simulate();
            self.complete(&key, &jobs[idx], &report);
            (idx, report)
        });
        for (idx, report) in done {
            results[idx] = Some(report);
        }
        for (idx, first) in dups {
            results[idx] = results[first].clone();
        }
        results
            .into_iter()
            .map(|r| r.expect("every job resolved"))
            .collect()
    }

    /// Run exactly the unfinished remainder recorded in the journal.
    ///
    /// Pending entries whose result is already in the store (completed
    /// by another process, or stored just before a crash cut off the
    /// `done` record) are acknowledged without re-running. Returns the
    /// `(key, report)` pairs that were actually simulated.
    pub fn resume(&self, workers: usize) -> io::Result<Vec<(String, RunReport)>> {
        let pending = self.pending()?;
        let mut to_run = Vec::new();
        for (key, job) in pending {
            if self.lookup(&key, &job).is_some() {
                self.stats.hits.incr();
                self.journal.done(&key)?;
            } else {
                self.stats.resumed.incr();
                self.stats.misses.incr();
                to_run.push((key, job));
            }
        }
        Ok(exec::run_work_stealing(to_run, workers, |(key, job)| {
            let report = job.simulate();
            self.complete(&key, &job, &report);
            (key, report)
        }))
    }

    /// Integrity-scan every store entry; returns `(ok, dropped)` counts.
    /// Corrupt, stale-format, or mis-keyed entries are deleted so the
    /// next request re-simulates them.
    pub fn verify(&self) -> io::Result<(usize, usize)> {
        let mut ok = 0;
        let mut dropped = 0;
        for key in self.store.keys()? {
            match self.store.verify_entry(&key) {
                Ok(()) => ok += 1,
                Err(reason) => {
                    eprintln!("[farm] dropping {key}: {reason}");
                    self.store.remove(&key);
                    self.stats.corrupt.incr();
                    dropped += 1;
                }
            }
        }
        Ok((ok, dropped))
    }

    /// Store lookup with integrity handling: corrupt or stale entries
    /// are counted, removed, and reported as a miss.
    fn lookup(&self, key: &str, job: &FarmJob) -> Option<RunReport> {
        match self.store.get(key, job) {
            StoreLookup::Hit(report) => Some(*report),
            StoreLookup::Miss => None,
            StoreLookup::Corrupt(reason) => {
                eprintln!("[farm] discarding entry {key}: {reason}");
                self.store.remove(key);
                self.stats.corrupt.incr();
                None
            }
        }
    }

    /// Persist a finished job and mark it done in the journal.
    fn complete(&self, key: &str, job: &FarmJob, report: &RunReport) {
        match self.store.put(key, job, report) {
            Ok(()) => {}
            Err(e) => {
                // An unstorable report (e.g. non-finite metric that does
                // not survive the JSON round-trip) still produces a
                // correct in-memory result; it just will not be cached.
                eprintln!("warning: cannot store {key}: {e}");
                self.stats.unstorable.incr();
            }
        }
        self.stats.completed.incr();
        if let Err(e) = self.journal.done(key) {
            eprintln!("warning: journal write failed: {e}");
        }
    }
}
