//! Farm outcome counters, exportable through `ptb-obs`.

use ptb_obs::CounterRegistry;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic counter shared across farm worker threads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-job outcome counters of a [`crate::Farm`] handle.
///
/// Every job submitted to the farm lands in exactly one of `hits`,
/// `misses`, or `deduped`; misses additionally count in `completed`
/// once finished (and in `resumed` when they came from the journal's
/// pending set rather than a live batch).
#[derive(Debug, Default)]
pub struct FarmStats {
    /// Served from the store after integrity validation.
    pub hits: Counter,
    /// Not in the store (or evicted as corrupt); simulated.
    pub misses: Counter,
    /// Duplicate of an earlier job in the same batch; result shared.
    pub deduped: Counter,
    /// Simulations finished and recorded.
    pub completed: Counter,
    /// Misses that came from the journal's unfinished remainder.
    pub resumed: Counter,
    /// Store entries discarded as corrupt, stale, or mismatched.
    pub corrupt: Counter,
    /// Reports that could not be persisted (kept in memory only).
    pub unstorable: Counter,
    /// Extra attempts spent retrying transient job failures.
    pub retried: Counter,
    /// Failed jobs written to the quarantine manifest.
    pub quarantined: Counter,
}

impl FarmStats {
    /// Copy the current values.
    pub fn snapshot(&self) -> FarmSnapshot {
        FarmSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            deduped: self.deduped.get(),
            completed: self.completed.get(),
            resumed: self.resumed.get(),
            corrupt: self.corrupt.get(),
            unstorable: self.unstorable.get(),
            retried: self.retried.get(),
            quarantined: self.quarantined.get(),
        }
    }
}

/// A point-in-time copy of [`FarmStats`], with reporting helpers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarmSnapshot {
    /// See [`FarmStats::hits`].
    pub hits: u64,
    /// See [`FarmStats::misses`].
    pub misses: u64,
    /// See [`FarmStats::deduped`].
    pub deduped: u64,
    /// See [`FarmStats::completed`].
    pub completed: u64,
    /// See [`FarmStats::resumed`].
    pub resumed: u64,
    /// See [`FarmStats::corrupt`].
    pub corrupt: u64,
    /// See [`FarmStats::unstorable`].
    pub unstorable: u64,
    /// See [`FarmStats::retried`].
    pub retried: u64,
    /// See [`FarmStats::quarantined`].
    pub quarantined: u64,
}

impl FarmSnapshot {
    /// Counter-wise difference against an earlier snapshot (for
    /// per-batch reporting on a long-lived handle).
    pub fn since(&self, earlier: &FarmSnapshot) -> FarmSnapshot {
        FarmSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            deduped: self.deduped - earlier.deduped,
            completed: self.completed - earlier.completed,
            resumed: self.resumed - earlier.resumed,
            corrupt: self.corrupt - earlier.corrupt,
            unstorable: self.unstorable - earlier.unstorable,
            retried: self.retried - earlier.retried,
            quarantined: self.quarantined - earlier.quarantined,
        }
    }

    /// Cache hit rate over the unique jobs seen, in percent (100.0 when
    /// nothing missed; 0.0 when nothing was looked up).
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }

    /// Export as a `ptb-obs` counter registry under the `farm.*`
    /// namespace (mergeable into `RunReport::extra_metrics` or a
    /// metrics CSV alongside the simulator's own counters).
    pub fn counters(&self) -> CounterRegistry {
        let mut c = CounterRegistry::new();
        c.add("farm.hits", self.hits as f64);
        c.add("farm.misses", self.misses as f64);
        c.add("farm.deduped", self.deduped as f64);
        c.add("farm.completed", self.completed as f64);
        c.add("farm.resumed", self.resumed as f64);
        c.add("farm.corrupt", self.corrupt as f64);
        c.add("farm.unstorable", self.unstorable as f64);
        c.add("farm.retry.attempts", self.retried as f64);
        c.add("farm.quarantine.written", self.quarantined as f64);
        c.set("farm.hit_rate_pct", self.hit_rate_pct());
        c
    }

    /// One-line human summary, e.g.
    /// `126 jobs: 120 hits, 4 misses, 2 deduped (hit-rate 97%)`.
    pub fn summary(&self) -> String {
        let jobs = self.hits + self.misses + self.deduped;
        let mut s = format!(
            "{jobs} jobs: {} hits, {} misses, {} deduped (hit-rate {:.0}%)",
            self.hits,
            self.misses,
            self.deduped,
            self.hit_rate_pct()
        );
        if self.resumed > 0 {
            s.push_str(&format!(", {} resumed", self.resumed));
        }
        if self.corrupt > 0 {
            s.push_str(&format!(", {} corrupt dropped", self.corrupt));
        }
        if self.unstorable > 0 {
            s.push_str(&format!(", {} unstorable", self.unstorable));
        }
        if self.retried > 0 {
            s.push_str(&format!(", {} retries", self.retried));
        }
        if self.quarantined > 0 {
            s.push_str(&format!(", {} quarantined", self.quarantined));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_and_summary() {
        let stats = FarmStats::default();
        stats.hits.incr();
        stats.hits.incr();
        stats.misses.incr();
        let a = stats.snapshot();
        stats.hits.incr();
        let d = stats.snapshot().since(&a);
        assert_eq!(d.hits, 1);
        assert_eq!(d.misses, 0);
        let s = a.summary();
        assert!(s.contains("2 hits"), "{s}");
        assert!(s.contains("1 misses"), "{s}");
        assert!((a.hit_rate_pct() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn counters_land_in_farm_namespace() {
        let stats = FarmStats::default();
        stats.hits.incr();
        let c = stats.snapshot().counters();
        assert_eq!(c.get("farm.hits"), Some(1.0));
        assert_eq!(c.get("farm.misses"), Some(0.0));
        assert_eq!(c.get("farm.hit_rate_pct"), Some(100.0));
    }

    #[test]
    fn empty_snapshot_rates() {
        assert_eq!(FarmSnapshot::default().hit_rate_pct(), 0.0);
    }
}
