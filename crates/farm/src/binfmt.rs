//! Compact binary envelope format for store entries.
//!
//! The pretty-printed JSON envelope (one per entry, human-greppable) is
//! the right debugging format but the wrong serving format: at service
//! scale (~10⁵ entries, thousands of lookups per second) its per-read
//! cost is dominated by parsing whitespace-heavy text. The binary
//! envelope keeps the job/report payloads as *compact* JSON (the only
//! serialiser the offline vendor set provides) but wraps them in a
//! versioned, length-prefixed, checksummed frame, so a reader can
//!
//! * reject truncation and bit rot with one integer compare (the
//!   trailing FNV-1a checksum covers every preceding byte) instead of a
//!   full JSON parse, and
//! * slice straight to the report payload without scanning the job.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PTBE"
//! 4       4     envelope version (ENVELOPE_VERSION)
//! 8       4     store format    (crate::STORE_FORMAT)
//! 12      4     report format   (ptb_core::report::REPORT_FORMAT)
//! 16      4     key length  K
//! 20      4     job length  J      (compact JSON bytes)
//! 24      4     report length R    (compact JSON bytes)
//! 28      K     key (lowercase hex, ASCII)
//! 28+K    J     job JSON
//! 28+K+J  R     report JSON
//! …       8     FNV-1a 64 checksum of bytes [0, 28+K+J+R)
//! ```
//!
//! Decoding is *total*: every malformed input — short buffer, bad
//! magic, absurd lengths, checksum mismatch — returns a typed reason
//! string (mapped to a corrupt-entry miss by the store), never panics.

/// Magic bytes opening every binary envelope.
pub const MAGIC: [u8; 4] = *b"PTBE";

/// Version of the binary frame itself (independent of the store format,
/// which versions the *semantics* of what is stored).
pub const ENVELOPE_VERSION: u32 = 1;

/// Fixed header size before the variable-length sections.
const HEADER: usize = 28;

/// Trailing checksum size.
const TRAILER: usize = 8;

/// Sanity ceiling on any single section (64 MiB) so a corrupt length
/// field cannot drive a huge allocation.
const MAX_SECTION: u32 = 64 << 20;

/// FNV-1a 64 over `bytes` (same construction as `crate::hash`).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded envelope: borrowed views into the input buffer.
#[derive(Debug, PartialEq, Eq)]
pub struct Envelope<'a> {
    /// Store format version recorded at write time.
    pub store_format: u32,
    /// Report format version recorded at write time.
    pub report_format: u32,
    /// Content key (lowercase hex).
    pub key: &'a str,
    /// Compact JSON of the job (benchmark + full config).
    pub job_json: &'a str,
    /// Compact JSON of the report.
    pub report_json: &'a str,
}

/// Encode an envelope frame.
pub fn encode(key: &str, job_json: &str, report_json: &str) -> Vec<u8> {
    let (k, j, r) = (key.len(), job_json.len(), report_json.len());
    let mut buf = Vec::with_capacity(HEADER + k + j + r + TRAILER);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
    buf.extend_from_slice(&crate::STORE_FORMAT.to_le_bytes());
    buf.extend_from_slice(&ptb_core::report::REPORT_FORMAT.to_le_bytes());
    buf.extend_from_slice(&(k as u32).to_le_bytes());
    buf.extend_from_slice(&(j as u32).to_le_bytes());
    buf.extend_from_slice(&(r as u32).to_le_bytes());
    buf.extend_from_slice(key.as_bytes());
    buf.extend_from_slice(job_json.as_bytes());
    buf.extend_from_slice(report_json.as_bytes());
    let sum = fnv1a64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

/// Decode and fully validate an envelope frame.
pub fn decode(bytes: &[u8]) -> Result<Envelope<'_>, String> {
    if bytes.len() < HEADER + TRAILER {
        return Err(format!("envelope too short ({} bytes)", bytes.len()));
    }
    if bytes[0..4] != MAGIC {
        return Err("bad magic (not a PTBE envelope)".into());
    }
    let version = le_u32(bytes, 4);
    if version != ENVELOPE_VERSION {
        return Err(format!(
            "envelope version {version} != current {ENVELOPE_VERSION}"
        ));
    }
    let store_format = le_u32(bytes, 8);
    let report_format = le_u32(bytes, 12);
    let (k, j, r) = (le_u32(bytes, 16), le_u32(bytes, 20), le_u32(bytes, 24));
    if k > MAX_SECTION || j > MAX_SECTION || r > MAX_SECTION {
        return Err("section length exceeds sanity ceiling".into());
    }
    let body = HEADER
        .checked_add(k as usize)
        .and_then(|n| n.checked_add(j as usize))
        .and_then(|n| n.checked_add(r as usize))
        .ok_or("section lengths overflow")?;
    if bytes.len() != body + TRAILER {
        return Err(format!(
            "length mismatch: header promises {} bytes, file has {}",
            body + TRAILER,
            bytes.len()
        ));
    }
    let stored_sum = u64::from_le_bytes(bytes[body..].try_into().expect("8 bytes"));
    let actual = fnv1a64(&bytes[..body]);
    if stored_sum != actual {
        return Err(format!(
            "checksum mismatch (stored {stored_sum:016x}, computed {actual:016x})"
        ));
    }
    let key_end = HEADER + k as usize;
    let job_end = key_end + j as usize;
    let section = |range: std::ops::Range<usize>, what: &str| {
        std::str::from_utf8(&bytes[range]).map_err(|_| format!("{what} is not UTF-8"))
    };
    Ok(Envelope {
        store_format,
        report_format,
        key: section(HEADER..key_end, "key")?,
        job_json: section(key_end..job_end, "job")?,
        report_json: section(job_end..body, "report")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode(
            "6f0cdeadbeef",
            r#"{"bench":"fft","config":{}}"#,
            r#"{"cycles":42}"#,
        )
    }

    #[test]
    fn round_trips() {
        let buf = sample();
        let env = decode(&buf).unwrap();
        assert_eq!(env.key, "6f0cdeadbeef");
        assert_eq!(env.job_json, r#"{"bench":"fft","config":{}}"#);
        assert_eq!(env.report_json, r#"{"cycles":42}"#);
        assert_eq!(env.store_format, crate::STORE_FORMAT);
        assert_eq!(env.report_format, ptb_core::report::REPORT_FORMAT);
    }

    #[test]
    fn empty_sections_round_trip() {
        let buf = encode("", "", "");
        let env = decode(&buf).unwrap();
        assert_eq!(env.key, "");
        assert_eq!(env.job_json, "");
        assert_eq!(env.report_json, "");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let buf = sample();
        for cut in 0..buf.len() {
            assert!(decode(&buf[..cut]).is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let buf = sample();
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0xa5;
            assert!(decode(&bad).is_err(), "flip at byte {pos} accepted");
        }
    }

    #[test]
    fn absurd_length_fields_do_not_allocate() {
        let mut buf = sample();
        buf[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&buf).unwrap_err();
        assert!(err.contains("sanity ceiling"), "{err}");
    }

    #[test]
    fn appended_garbage_is_rejected() {
        let mut buf = sample();
        buf.push(0);
        assert!(decode(&buf).unwrap_err().contains("length mismatch"));
    }
}
