//! Ticket (FIFO) spinlock.
//!
//! SPLASH-2 style runtimes use several lock flavours; besides the
//! test-and-test-and-set lock of [`crate::LockAcquire`], this module
//! provides a fair ticket lock: acquisition fetch-adds a *ticket* from the
//! next-ticket word and spins until the now-serving word reaches it;
//! release increments now-serving. Under heavy contention the ticket lock
//! trades the TTAS lock's release broadcast storm for strict FIFO order —
//! a useful comparison point for the PTB ToOne policy, which implicitly
//! prioritises whichever core holds the critical section.
//!
//! Layout: the ticket word is the lock line's word 0 (`addr`); the
//! now-serving word lives on the *following* line (`addr + 64`) to avoid
//! ping-ponging one line between arrivals and releases.

use ptb_isa::{
    Addr, DynInst, ExecCtx, LockId, OpKind, RmwOp, RmwRequest, RmwToken, StreamEnv,
    CACHE_LINE_BYTES,
};

use crate::protocol::SyncStep;

#[derive(Debug, Clone, Copy, PartialEq)]
enum TState {
    TakeTicket,
    WaitTicket,
    PollLoad,
    PollTest,
    PollPause,
    PollBranch,
    Done,
}

/// FIFO acquisition of a ticket lock.
#[derive(Debug)]
pub struct TicketAcquire {
    lock: LockId,
    ticket_addr: Addr,
    serving_addr: Addr,
    token: RmwToken,
    pc_base: u64,
    state: TState,
    my_ticket: u64,
    /// Spin iterations performed (diagnostics).
    pub spin_iters: u64,
}

impl TicketAcquire {
    /// Start acquiring the ticket lock whose ticket word is at `addr`.
    pub fn new(lock: LockId, addr: Addr, pc_base: u64, token: RmwToken) -> Self {
        TicketAcquire {
            lock,
            ticket_addr: addr,
            serving_addr: addr.offset(CACHE_LINE_BYTES),
            token,
            pc_base,
            state: TState::TakeTicket,
            my_ticket: 0,
            spin_iters: 0,
        }
    }

    /// Produce the next instruction (or stall/done).
    pub fn next(&mut self, env: &mut dyn StreamEnv) -> SyncStep {
        let spin = ExecCtx::lock_spin(self.lock);
        match self.state {
            TState::TakeTicket => {
                self.state = TState::WaitTicket;
                let req = RmwRequest {
                    op: RmwOp::FetchAdd,
                    operand: 1,
                    token: self.token,
                };
                SyncStep::Inst(
                    DynInst::rmw(self.pc_base, self.ticket_addr, req)
                        .with_ctx(ExecCtx::lock_acq(self.lock)),
                )
            }
            TState::WaitTicket => SyncStep::Stall,
            TState::PollLoad => {
                self.state = TState::PollTest;
                SyncStep::Inst(
                    DynInst::load(self.pc_base + 4, self.serving_addr)
                        .with_deps(Some(1), None)
                        .with_ctx(spin),
                )
            }
            TState::PollTest => {
                self.state = TState::PollPause;
                SyncStep::Inst(
                    DynInst::compute(self.pc_base + 8, OpKind::IntAlu)
                        .with_deps(Some(1), None)
                        .with_ctx(spin),
                )
            }
            TState::PollPause => {
                self.state = TState::PollBranch;
                SyncStep::Inst(
                    DynInst::compute(self.pc_base + 12, OpKind::Nop)
                        .with_deps(Some(1), None)
                        .with_ctx(spin),
                )
            }
            TState::PollBranch => {
                let serving = env.read_sync_word(self.serving_addr);
                let wait = serving < self.my_ticket;
                self.state = if wait {
                    self.spin_iters += 1;
                    TState::PollLoad
                } else {
                    TState::Done
                };
                SyncStep::Inst(
                    DynInst::branch(self.pc_base + 16, wait, self.pc_base + 4)
                        .with_deps(Some(1), None)
                        .with_ctx(spin),
                )
            }
            TState::Done => SyncStep::Done,
        }
    }

    /// Report the fetch-add result (our ticket number).
    pub fn rmw_result(&mut self, token: RmwToken, old: u64) {
        debug_assert_eq!(token, self.token);
        debug_assert_eq!(self.state, TState::WaitTicket);
        self.my_ticket = old;
        self.state = TState::PollLoad;
    }

    /// Finished?
    pub fn is_done(&self) -> bool {
        self.state == TState::Done
    }

    /// The ticket drawn (valid once polling starts).
    pub fn ticket(&self) -> u64 {
        self.my_ticket
    }
}

/// Release of a ticket lock: bump now-serving.
#[derive(Debug)]
pub struct TicketRelease {
    lock: LockId,
    serving_addr: Addr,
    token: RmwToken,
    pc_base: u64,
    state: u8,
}

impl TicketRelease {
    /// Start releasing the ticket lock whose ticket word is at `addr`.
    pub fn new(lock: LockId, addr: Addr, pc_base: u64, token: RmwToken) -> Self {
        TicketRelease {
            lock,
            serving_addr: addr.offset(CACHE_LINE_BYTES),
            token,
            pc_base,
            state: 0,
        }
    }

    /// Produce the next instruction (or stall/done).
    pub fn next(&mut self, _env: &mut dyn StreamEnv) -> SyncStep {
        match self.state {
            0 => {
                self.state = 1;
                let req = RmwRequest {
                    op: RmwOp::FetchAdd,
                    operand: 1,
                    token: self.token,
                };
                SyncStep::Inst(
                    DynInst::rmw(self.pc_base + 20, self.serving_addr, req)
                        .with_ctx(ExecCtx::lock_rel(self.lock)),
                )
            }
            1 => SyncStep::Stall,
            _ => SyncStep::Done,
        }
    }

    /// Report the increment result.
    pub fn rmw_result(&mut self, token: RmwToken, _old: u64) {
        debug_assert_eq!(token, self.token);
        self.state = 2;
    }

    /// Finished?
    pub fn is_done(&self) -> bool {
        self.state == 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::SyncFabric;
    use crate::protocol::FabricEnv;
    use ptb_isa::addr::layout;

    /// Drive `n` ticket acquirers round-robin (functional), releasing as
    /// soon as each acquires; FIFO order must equal ticket order.
    #[test]
    fn grants_are_fifo_in_ticket_order() {
        let n = 5;
        let addr = layout::lock_addr(10);
        let mut fabric = SyncFabric::new();
        let mut sms: Vec<TicketAcquire> = (0..n)
            .map(|i| TicketAcquire::new(LockId(10), addr, 0xB000, RmwToken(i as u64)))
            .collect();
        let mut finish_order = Vec::new();
        // Stagger ticket draws: thread i only starts after i*7 steps so
        // tickets are drawn in thread order.
        for step in 0..100_000usize {
            let i = step % n;
            if sms[i].is_done() || step / n < i * 7 {
                continue;
            }
            let stepr = {
                let mut env = FabricEnv {
                    fabric: &fabric,
                    cycle: step as u64,
                };
                sms[i].next(&mut env)
            };
            if let SyncStep::Inst(inst) = stepr {
                if let Some(rmw) = inst.rmw {
                    let old = fabric.execute(rmw.op, inst.mem.unwrap().addr, rmw.operand);
                    sms[i].rmw_result(rmw.token, old);
                }
            }
            if sms[i].is_done() && !finish_order.contains(&i) {
                finish_order.push(i);
                // Release so the next ticket holder proceeds.
                let mut rel = TicketRelease::new(LockId(10), addr, 0xB000, RmwToken(99));
                loop {
                    let stepr = {
                        let mut env = FabricEnv {
                            fabric: &fabric,
                            cycle: step as u64,
                        };
                        rel.next(&mut env)
                    };
                    match stepr {
                        SyncStep::Inst(inst) => {
                            if let Some(rmw) = inst.rmw {
                                let old =
                                    fabric.execute(rmw.op, inst.mem.unwrap().addr, rmw.operand);
                                rel.rmw_result(rmw.token, old);
                            }
                        }
                        SyncStep::Done => break,
                        SyncStep::Stall => {}
                    }
                }
            }
            if finish_order.len() == n {
                break;
            }
        }
        assert_eq!(
            finish_order,
            vec![0, 1, 2, 3, 4],
            "ticket lock must be FIFO"
        );
        let tickets: Vec<u64> = sms.iter().map(|s| s.ticket()).collect();
        assert_eq!(tickets, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ticket_and_serving_words_are_on_distinct_lines() {
        let a = layout::lock_addr(3);
        let acq = TicketAcquire::new(LockId(3), a, 0xB000, RmwToken(0));
        assert_ne!(acq.ticket_addr.line(), acq.serving_addr.line());
    }

    #[test]
    fn uncontended_acquire_is_short() {
        let mut fabric = SyncFabric::new();
        let addr = layout::lock_addr(4);
        let mut sm = TicketAcquire::new(LockId(4), addr, 0xB000, RmwToken(0));
        let mut insts = 0;
        for cycle in 0..30 {
            let stepr = {
                let mut env = FabricEnv {
                    fabric: &fabric,
                    cycle,
                };
                sm.next(&mut env)
            };
            match stepr {
                SyncStep::Inst(inst) => {
                    insts += 1;
                    if let Some(rmw) = inst.rmw {
                        let old = fabric.execute(rmw.op, inst.mem.unwrap().addr, rmw.operand);
                        sm.rmw_result(rmw.token, old);
                    }
                }
                SyncStep::Done => break,
                SyncStep::Stall => {}
            }
        }
        assert!(sm.is_done());
        // fetch-add + one poll round (serving == ticket == 0).
        assert!(
            insts <= 6,
            "uncontended ticket acquire took {insts} instructions"
        );
        assert_eq!(sm.spin_iters, 0);
    }
}
