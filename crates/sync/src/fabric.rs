//! Functional state of synchronisation words.

use ptb_isa::{Addr, RmwOp};
use std::collections::HashMap;

/// The architectural values of lock/barrier words.
///
/// Every word defaults to zero. The simulator applies RMWs here at the
/// moment the memory system grants ownership (coherence-completion order),
/// which is what serialises lock acquisitions; instruction streams read
/// words functionally while spinning.
#[derive(Debug, Clone, Default)]
pub struct SyncFabric {
    words: HashMap<u64, u64>,
    /// Total RMWs applied (diagnostics).
    pub rmws_applied: u64,
}

impl SyncFabric {
    /// An empty fabric (all words zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of the word at `addr` (word-aligned key).
    pub fn read(&self, addr: Addr) -> u64 {
        self.words.get(&(addr.0 & !7)).copied().unwrap_or(0)
    }

    /// Write a word directly (test setup / initialisation).
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.words.insert(addr.0 & !7, value);
    }

    /// Apply an atomic RMW; returns the old value.
    pub fn execute(&mut self, op: RmwOp, addr: Addr, operand: u64) -> u64 {
        self.rmws_applied += 1;
        let slot = self.words.entry(addr.0 & !7).or_insert(0);
        let old = *slot;
        match op {
            RmwOp::TestAndSet => {
                if old == 0 {
                    *slot = operand;
                }
            }
            RmwOp::FetchAdd => {
                *slot = old.wrapping_add(operand);
            }
            RmwOp::Swap => {
                *slot = operand;
            }
        }
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_words_read_zero() {
        let f = SyncFabric::new();
        assert_eq!(f.read(Addr(0x8000_0000)), 0);
    }

    #[test]
    fn test_and_set_only_sets_when_free() {
        let mut f = SyncFabric::new();
        let a = Addr(0x8000_0000);
        assert_eq!(f.execute(RmwOp::TestAndSet, a, 7), 0);
        assert_eq!(f.read(a), 7);
        // Second TAS fails: returns old, does not overwrite.
        assert_eq!(f.execute(RmwOp::TestAndSet, a, 9), 7);
        assert_eq!(f.read(a), 7);
    }

    #[test]
    fn fetch_add_accumulates() {
        let mut f = SyncFabric::new();
        let a = Addr(0x8000_0100);
        assert_eq!(f.execute(RmwOp::FetchAdd, a, 1), 0);
        assert_eq!(f.execute(RmwOp::FetchAdd, a, 1), 1);
        assert_eq!(f.execute(RmwOp::FetchAdd, a, 5), 2);
        assert_eq!(f.read(a), 7);
    }

    #[test]
    fn swap_replaces_and_returns_old() {
        let mut f = SyncFabric::new();
        let a = Addr(0x8000_0200);
        f.write(a, 3);
        assert_eq!(f.execute(RmwOp::Swap, a, 0), 3);
        assert_eq!(f.read(a), 0);
    }

    #[test]
    fn word_aligned_addressing() {
        let mut f = SyncFabric::new();
        f.write(Addr(0x8000_0000), 5);
        // Any byte within the word sees the same value.
        assert_eq!(f.read(Addr(0x8000_0003)), 5);
        assert_eq!(f.read(Addr(0x8000_0008)), 0);
    }

    #[test]
    fn rmw_counter_tracks_applications() {
        let mut f = SyncFabric::new();
        f.execute(RmwOp::FetchAdd, Addr(0), 1);
        f.execute(RmwOp::Swap, Addr(8), 1);
        assert_eq!(f.rmws_applied, 2);
    }
}
