//! Spin detection hardware models.
//!
//! Two detectors:
//!
//! * [`BctSpinDetector`] — Li, Lebeck & Sorin's hardware (TPDS 2006, the
//!   paper's \[12\]): observe the instructions committed between *backward
//!   control transfers* (BCTs); if the same BCT keeps recurring with an
//!   identical instruction footprint and no architectural state change
//!   (approximated here as "no stores or atomics committed"), the thread
//!   is spinning.
//! * [`PowerSpinDetector`] — the PTB-native detector of §III.E/Figure 6:
//!   spinning needs no dedicated tracking hardware because the power
//!   signature gives it away — after the initial burst, a spinning core's
//!   per-cycle token draw settles to a stable low plateau. The detector
//!   flags a core whose exponentially-weighted power mean sits below a
//!   threshold with low variance for long enough.

use ptb_isa::OpKind;
use serde::{Deserialize, Serialize};

/// Backward-control-transfer spin detector (Li et al. \[12\]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BctSpinDetector {
    /// Consecutive identical BCT episodes required to declare spinning.
    threshold: u32,
    last_bct_pc: u64,
    /// Rolling hash of the PCs committed since the last BCT.
    hash: u64,
    /// Footprint of the previous episode.
    prev_episode: Option<(u64, u64)>,
    repeats: u32,
    wrote_state: bool,
    spinning: bool,
}

impl BctSpinDetector {
    /// Detector requiring `threshold` identical loop iterations.
    pub fn new(threshold: u32) -> Self {
        BctSpinDetector {
            threshold,
            last_bct_pc: 0,
            hash: 0xcbf2_9ce4_8422_2325,
            prev_episode: None,
            repeats: 0,
            wrote_state: false,
            spinning: false,
        }
    }

    /// Observe one committed instruction. Returns the current verdict.
    pub fn commit(&mut self, pc: u64, kind: OpKind, taken_backward: bool) -> bool {
        if matches!(kind, OpKind::Store | OpKind::AtomicRmw) {
            self.wrote_state = true;
        }
        // FNV-style fold of the committed PC.
        self.hash = (self.hash ^ pc).wrapping_mul(0x100_0000_01b3);
        if kind.is_ctrl() && taken_backward {
            let episode = (pc, self.hash);
            if !self.wrote_state && self.prev_episode == Some(episode) {
                self.repeats += 1;
            } else {
                self.repeats = 0;
            }
            self.prev_episode = Some(episode);
            self.last_bct_pc = pc;
            self.hash = 0xcbf2_9ce4_8422_2325;
            self.wrote_state = false;
            self.spinning = self.repeats >= self.threshold;
        }
        self.spinning
    }

    /// Current verdict.
    pub fn is_spinning(&self) -> bool {
        self.spinning
    }
}

/// Power-pattern spin detector (§III.E, Figure 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerSpinDetector {
    /// Tokens/cycle below which a core *might* be spinning.
    pub low_threshold: f64,
    /// Allowed relative fluctuation of the plateau.
    pub stability: f64,
    /// Cycles the plateau must persist.
    pub persistence: u32,
    ema: f64,
    stable_cycles: u32,
}

impl PowerSpinDetector {
    /// Detector declaring a spin when per-cycle tokens stay below
    /// `low_threshold` (± `stability` relative wobble) for `persistence`
    /// cycles.
    pub fn new(low_threshold: f64, stability: f64, persistence: u32) -> Self {
        PowerSpinDetector {
            low_threshold,
            stability,
            persistence,
            ema: 0.0,
            stable_cycles: 0,
        }
    }

    /// Observe one cycle's token draw. Returns the current verdict.
    pub fn observe(&mut self, tokens: f64) -> bool {
        const ALPHA: f64 = 0.1;
        self.ema = if self.ema == 0.0 {
            tokens
        } else {
            ALPHA * tokens + (1.0 - ALPHA) * self.ema
        };
        let stable = self.ema > 0.0
            && self.ema < self.low_threshold
            && (tokens - self.ema).abs() <= self.stability * self.ema.max(1e-9);
        if stable {
            self.stable_cycles = self.stable_cycles.saturating_add(1);
        } else {
            self.stable_cycles = 0;
        }
        self.is_spinning()
    }

    /// Current verdict.
    pub fn is_spinning(&self) -> bool {
        self.stable_cycles >= self.persistence
    }

    /// Reset after a known phase change (e.g. the local budget moved).
    pub fn reset(&mut self) {
        self.stable_cycles = 0;
        self.ema = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_iteration(det: &mut BctSpinDetector) -> bool {
        det.commit(0x100, OpKind::Load, false);
        det.commit(0x104, OpKind::IntAlu, false);
        det.commit(0x108, OpKind::Branch, true)
    }

    #[test]
    fn bct_detects_identical_loop() {
        let mut d = BctSpinDetector::new(3);
        let mut verdicts = Vec::new();
        for _ in 0..6 {
            verdicts.push(spin_iteration(&mut d));
        }
        assert!(!verdicts[0]);
        assert!(verdicts[5], "six identical iterations must be detected");
    }

    #[test]
    fn bct_resets_on_store() {
        let mut d = BctSpinDetector::new(3);
        for _ in 0..6 {
            spin_iteration(&mut d);
        }
        assert!(d.is_spinning());
        // A store in the loop body means architectural progress.
        d.commit(0x100, OpKind::Load, false);
        d.commit(0x104, OpKind::Store, false);
        assert!(!d.commit(0x108, OpKind::Branch, true));
    }

    #[test]
    fn bct_resets_on_different_footprint() {
        let mut d = BctSpinDetector::new(2);
        for _ in 0..4 {
            spin_iteration(&mut d);
        }
        assert!(d.is_spinning());
        // Different body PC -> different hash -> not the same loop.
        d.commit(0x200, OpKind::IntAlu, false);
        assert!(!d.commit(0x108, OpKind::Branch, true));
    }

    #[test]
    fn bct_ignores_forward_branches() {
        let mut d = BctSpinDetector::new(1);
        for _ in 0..10 {
            d.commit(0x100, OpKind::Load, false);
            d.commit(0x108, OpKind::Branch, false); // forward/not-taken
        }
        assert!(!d.is_spinning());
    }

    #[test]
    fn power_detector_flags_stable_low_plateau() {
        let mut d = PowerSpinDetector::new(100.0, 0.2, 30);
        // Busy phase: high power.
        for _ in 0..50 {
            assert!(!d.observe(300.0));
        }
        // Spin plateau: low, stable.
        let mut flagged = false;
        for _ in 0..200 {
            flagged = d.observe(60.0);
        }
        assert!(flagged);
    }

    #[test]
    fn power_detector_rejects_noisy_low_power() {
        let mut d = PowerSpinDetector::new(100.0, 0.1, 30);
        let mut flagged = false;
        for i in 0..300 {
            let p = if i % 2 == 0 { 20.0 } else { 90.0 };
            flagged = d.observe(p);
        }
        assert!(!flagged, "wildly fluctuating power is not a spin plateau");
    }

    #[test]
    fn power_detector_rejects_high_power() {
        let mut d = PowerSpinDetector::new(100.0, 0.2, 30);
        let mut flagged = false;
        for _ in 0..300 {
            flagged = d.observe(250.0);
        }
        assert!(!flagged);
    }

    #[test]
    fn power_detector_reset_clears_state() {
        let mut d = PowerSpinDetector::new(100.0, 0.2, 10);
        for _ in 0..100 {
            d.observe(50.0);
        }
        assert!(d.is_spinning());
        d.reset();
        assert!(!d.is_spinning());
    }
}
