//! # ptb-sync — simulated synchronisation fabric
//!
//! Implements the synchronisation layer of the simulated CMP:
//!
//! * [`SyncFabric`] — the functional state of lock and barrier words (the
//!   only architecturally-live values in the simulation; everything else is
//!   timing-only). RMWs are applied here, in coherence-completion order, by
//!   the simulator.
//! * [`LockAcquire`] / [`LockRelease`] — test-and-test-and-set spinlock
//!   protocols expressed as instruction-emitting state machines. Spin
//!   iterations are real loads/branches through the cache hierarchy, so a
//!   spinner exhibits the paper's Figure 6 power signature (initial burst,
//!   then a stable low plateau of L1 hits) and releases trigger genuine
//!   invalidation/forward traffic.
//! * [`BarrierWait`] — sense-reversing centralised barrier with a
//!   fetch-add arrival counter.
//! * [`BctSpinDetector`] — Li et al.'s backward-control-transfer spin
//!   detection hardware (TPDS 2006, the paper's reference \[12\]).
//! * [`PowerSpinDetector`] — spin detection from power-token patterns
//!   alone, the PTB-native detector of §III.E (Figure 6): a core whose
//!   per-cycle token draw stabilises at a low plateau is presumed spinning.

//! ```
//! use ptb_isa::{addr::layout, LockId, RmwToken};
//! use ptb_sync::{protocol::FabricEnv, LockAcquire, SyncFabric, SyncStep};
//!
//! let mut fabric = SyncFabric::new();
//! let addr = layout::lock_addr(0);
//! let mut acq = LockAcquire::new(LockId(0), addr, 1, 0x9000, RmwToken(0));
//! for cycle in 0..32 {
//!     let step = {
//!         let mut env = FabricEnv { fabric: &fabric, cycle };
//!         acq.next(&mut env)
//!     };
//!     if let SyncStep::Inst(inst) = step {
//!         if let Some(rmw) = inst.rmw {
//!             // In the full simulator the RMW travels through MOESI; here
//!             // we apply it functionally.
//!             let old = fabric.execute(rmw.op, inst.mem.unwrap().addr, rmw.operand);
//!             acq.rmw_result(rmw.token, old);
//!         }
//!     }
//!     if acq.is_done() { break; }
//! }
//! assert!(acq.is_done());
//! assert_eq!(fabric.read(addr), 1); // we hold the lock
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod fabric;
pub mod protocol;
pub mod ticket;

pub use detect::{BctSpinDetector, PowerSpinDetector};
pub use fabric::SyncFabric;
pub use protocol::{BarrierWait, LockAcquire, LockRelease, SyncStep};
pub use ticket::{TicketAcquire, TicketRelease};
