//! Lock and barrier protocols as instruction-emitting state machines.
//!
//! Each protocol yields the exact dynamic-instruction sequence a SPLASH-2
//! style runtime would execute — test-and-test-and-set polling loops,
//! atomic acquisition, sense-reversing barrier arrival — one instruction
//! per call, tagged with the execution context ([`ptb_isa::ExecCtx`]) that
//! drives the paper's Figure 3/4 breakdowns.
//!
//! The atomic step is split-phase: after emitting the RMW the machine
//! returns [`SyncStep::Stall`] until the caller reports the executed old
//! value via `rmw_result`, so lock winners are chosen by the memory
//! system's coherence serialisation, not by this code.

use crate::fabric::SyncFabric;
use ptb_isa::{
    Addr, BarrierId, DynInst, ExecCtx, LockId, OpKind, RmwOp, RmwRequest, RmwToken, StreamEnv,
};

/// One step of a synchronisation protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncStep {
    /// Feed this instruction to the core.
    Inst(DynInst),
    /// Waiting for an RMW result; nothing to feed.
    Stall,
    /// Protocol finished.
    Done,
}

// ---------------------------------------------------------------- lock ---

#[derive(Debug, Clone, Copy, PartialEq)]
enum AcqState {
    PollLoad,
    PollTest,
    PollPause1,
    PollPause2,
    PollBranch,
    TryRmw,
    WaitRmw,
    Done,
}

/// Test-and-test-and-set acquisition of a spinlock.
#[derive(Debug)]
pub struct LockAcquire {
    lock: LockId,
    addr: Addr,
    /// Value stored on acquisition (owner id + 1, so 0 = free).
    claim: u64,
    token: RmwToken,
    pc_base: u64,
    state: AcqState,
    /// Spin-loop iterations performed (diagnostics).
    pub spin_iters: u64,
}

impl LockAcquire {
    /// Start acquiring `lock` (at address `addr`) for owner `claim − 1`.
    /// `pc_base` anchors the spin loop's static PCs; `token` correlates the
    /// RMW result.
    pub fn new(lock: LockId, addr: Addr, claim: u64, pc_base: u64, token: RmwToken) -> Self {
        assert!(claim != 0, "claim value 0 means 'free'");
        LockAcquire {
            lock,
            addr,
            claim,
            token,
            pc_base,
            state: AcqState::PollLoad,
            spin_iters: 0,
        }
    }

    /// Produce the next instruction (or stall/done).
    pub fn next(&mut self, env: &mut dyn StreamEnv) -> SyncStep {
        match self.state {
            // The poll loop is fully dependence-chained (each instruction
            // consumes its predecessor) with two pause slots, modelling a
            // polite spin-wait: one iteration resolves every ~5-6 cycles,
            // so a spinning core draws well under its local budget — the
            // low stable plateau of the paper's Figure 6.
            AcqState::PollLoad => {
                self.state = AcqState::PollTest;
                SyncStep::Inst(
                    DynInst::load(self.pc_base, self.addr)
                        .with_deps(Some(1), None)
                        .with_ctx(ExecCtx::lock_spin(self.lock)),
                )
            }
            AcqState::PollTest => {
                self.state = AcqState::PollPause1;
                SyncStep::Inst(
                    DynInst::compute(self.pc_base + 4, OpKind::IntAlu)
                        .with_deps(Some(1), None)
                        .with_ctx(ExecCtx::lock_spin(self.lock)),
                )
            }
            AcqState::PollPause1 => {
                self.state = AcqState::PollPause2;
                SyncStep::Inst(
                    DynInst::compute(self.pc_base + 8, OpKind::Nop)
                        .with_deps(Some(1), None)
                        .with_ctx(ExecCtx::lock_spin(self.lock)),
                )
            }
            AcqState::PollPause2 => {
                self.state = AcqState::PollBranch;
                SyncStep::Inst(
                    DynInst::compute(self.pc_base + 12, OpKind::Nop)
                        .with_deps(Some(1), None)
                        .with_ctx(ExecCtx::lock_spin(self.lock)),
                )
            }
            AcqState::PollBranch => {
                let held = env.read_sync_word(self.addr) != 0;
                self.state = if held {
                    self.spin_iters += 1;
                    AcqState::PollLoad
                } else {
                    AcqState::TryRmw
                };
                SyncStep::Inst(
                    DynInst::branch(self.pc_base + 16, held, self.pc_base)
                        .with_deps(Some(1), None)
                        .with_ctx(ExecCtx::lock_spin(self.lock)),
                )
            }
            AcqState::TryRmw => {
                self.state = AcqState::WaitRmw;
                let req = RmwRequest {
                    op: RmwOp::TestAndSet,
                    operand: self.claim,
                    token: self.token,
                };
                SyncStep::Inst(
                    DynInst::rmw(self.pc_base + 20, self.addr, req)
                        .with_ctx(ExecCtx::lock_acq(self.lock)),
                )
            }
            AcqState::WaitRmw => SyncStep::Stall,
            AcqState::Done => SyncStep::Done,
        }
    }

    /// Report the TAS result; returns `true` if the lock was acquired.
    pub fn rmw_result(&mut self, token: RmwToken, old: u64) -> bool {
        debug_assert_eq!(token, self.token);
        debug_assert_eq!(self.state, AcqState::WaitRmw);
        if old == 0 {
            self.state = AcqState::Done;
            true
        } else {
            self.spin_iters += 1;
            self.state = AcqState::PollLoad;
            false
        }
    }

    /// Finished?
    pub fn is_done(&self) -> bool {
        self.state == AcqState::Done
    }
}

/// Release of a held spinlock (atomic swap to 0, so the release's
/// coherence traffic — invalidating the spinners' copies — is modelled).
#[derive(Debug)]
pub struct LockRelease {
    lock: LockId,
    addr: Addr,
    token: RmwToken,
    pc_base: u64,
    state: u8, // 0 = emit, 1 = wait, 2 = done
}

impl LockRelease {
    /// Start releasing `lock`.
    pub fn new(lock: LockId, addr: Addr, pc_base: u64, token: RmwToken) -> Self {
        LockRelease {
            lock,
            addr,
            token,
            pc_base,
            state: 0,
        }
    }

    /// Produce the next instruction (or stall/done).
    pub fn next(&mut self, _env: &mut dyn StreamEnv) -> SyncStep {
        match self.state {
            0 => {
                self.state = 1;
                let req = RmwRequest {
                    op: RmwOp::Swap,
                    operand: 0,
                    token: self.token,
                };
                SyncStep::Inst(
                    DynInst::rmw(self.pc_base + 24, self.addr, req)
                        .with_ctx(ExecCtx::lock_rel(self.lock)),
                )
            }
            1 => SyncStep::Stall,
            _ => SyncStep::Done,
        }
    }

    /// Report the swap result.
    pub fn rmw_result(&mut self, token: RmwToken, _old: u64) {
        debug_assert_eq!(token, self.token);
        debug_assert_eq!(self.state, 1);
        self.state = 2;
    }

    /// Finished?
    pub fn is_done(&self) -> bool {
        self.state == 2
    }
}

// ------------------------------------------------------------- barrier ---

#[derive(Debug, Clone, Copy, PartialEq)]
enum BarState {
    ReadSense,
    Arrive,
    WaitArrive,
    ResetCounter,
    WaitReset,
    FlipSense,
    WaitFlip,
    SpinLoad,
    SpinTest,
    SpinPause1,
    SpinPause2,
    SpinBranch,
    Done,
}

/// Sense-reversing centralised barrier for `n_threads` participants.
///
/// Arrival is a fetch-add on the counter word; the last arriver resets the
/// counter and flips the generation (sense) word, releasing the spinners.
#[derive(Debug)]
pub struct BarrierWait {
    barrier: BarrierId,
    counter: Addr,
    sense: Addr,
    n_threads: u64,
    token: RmwToken,
    pc_base: u64,
    state: BarState,
    my_gen: u64,
    /// Spin-loop iterations performed (diagnostics).
    pub spin_iters: u64,
    /// Was this thread the last arriver?
    pub was_last: bool,
}

impl BarrierWait {
    /// Start waiting at `barrier` (counter and sense word addresses from
    /// the standard layout).
    pub fn new(
        barrier: BarrierId,
        counter: Addr,
        sense: Addr,
        n_threads: u64,
        pc_base: u64,
        token: RmwToken,
    ) -> Self {
        assert!(n_threads >= 1);
        BarrierWait {
            barrier,
            counter,
            sense,
            n_threads,
            token,
            pc_base,
            state: BarState::ReadSense,
            my_gen: 0,
            spin_iters: 0,
            was_last: false,
        }
    }

    /// Produce the next instruction (or stall/done).
    pub fn next(&mut self, env: &mut dyn StreamEnv) -> SyncStep {
        let arrive = ExecCtx::barrier_arrive(self.barrier);
        let spin = ExecCtx::barrier_spin(self.barrier);
        match self.state {
            BarState::ReadSense => {
                self.my_gen = env.read_sync_word(self.sense);
                self.state = BarState::Arrive;
                SyncStep::Inst(DynInst::load(self.pc_base, self.sense).with_ctx(arrive))
            }
            BarState::Arrive => {
                self.state = BarState::WaitArrive;
                let req = RmwRequest {
                    op: RmwOp::FetchAdd,
                    operand: 1,
                    token: self.token,
                };
                SyncStep::Inst(DynInst::rmw(self.pc_base + 4, self.counter, req).with_ctx(arrive))
            }
            BarState::WaitArrive | BarState::WaitReset | BarState::WaitFlip => SyncStep::Stall,
            BarState::ResetCounter => {
                self.state = BarState::WaitReset;
                let req = RmwRequest {
                    op: RmwOp::Swap,
                    operand: 0,
                    token: self.token,
                };
                SyncStep::Inst(DynInst::rmw(self.pc_base + 8, self.counter, req).with_ctx(arrive))
            }
            BarState::FlipSense => {
                self.state = BarState::WaitFlip;
                let req = RmwRequest {
                    op: RmwOp::FetchAdd,
                    operand: 1,
                    token: self.token,
                };
                SyncStep::Inst(DynInst::rmw(self.pc_base + 12, self.sense, req).with_ctx(arrive))
            }
            // Dependence-chained spin loop with pause slots (see the lock
            // poll loop above for rationale).
            BarState::SpinLoad => {
                self.state = BarState::SpinTest;
                SyncStep::Inst(
                    DynInst::load(self.pc_base + 16, self.sense)
                        .with_deps(Some(1), None)
                        .with_ctx(spin),
                )
            }
            BarState::SpinTest => {
                self.state = BarState::SpinPause1;
                SyncStep::Inst(
                    DynInst::compute(self.pc_base + 20, OpKind::IntAlu)
                        .with_deps(Some(1), None)
                        .with_ctx(spin),
                )
            }
            BarState::SpinPause1 => {
                self.state = BarState::SpinPause2;
                SyncStep::Inst(
                    DynInst::compute(self.pc_base + 24, OpKind::Nop)
                        .with_deps(Some(1), None)
                        .with_ctx(spin),
                )
            }
            BarState::SpinPause2 => {
                self.state = BarState::SpinBranch;
                SyncStep::Inst(
                    DynInst::compute(self.pc_base + 28, OpKind::Nop)
                        .with_deps(Some(1), None)
                        .with_ctx(spin),
                )
            }
            BarState::SpinBranch => {
                let released = env.read_sync_word(self.sense) != self.my_gen;
                self.state = if released {
                    BarState::Done
                } else {
                    self.spin_iters += 1;
                    BarState::SpinLoad
                };
                SyncStep::Inst(
                    DynInst::branch(self.pc_base + 32, !released, self.pc_base + 16)
                        .with_deps(Some(1), None)
                        .with_ctx(spin),
                )
            }
            BarState::Done => SyncStep::Done,
        }
    }

    /// Report an RMW result (arrival, counter reset or sense flip).
    pub fn rmw_result(&mut self, token: RmwToken, old: u64) {
        debug_assert_eq!(token, self.token);
        match self.state {
            BarState::WaitArrive => {
                if old == self.n_threads - 1 {
                    self.was_last = true;
                    self.state = BarState::ResetCounter;
                } else {
                    self.state = BarState::SpinLoad;
                }
            }
            BarState::WaitReset => self.state = BarState::FlipSense,
            BarState::WaitFlip => self.state = BarState::Done,
            s => unreachable!("unexpected rmw_result in state {s:?}"),
        }
    }

    /// Finished?
    pub fn is_done(&self) -> bool {
        self.state == BarState::Done
    }
}

// -------------------------------------------------------------- helpers ---

/// A `StreamEnv` view over a [`SyncFabric`] — used by tests here and by the
/// full simulator in `ptb-core`.
pub struct FabricEnv<'a> {
    /// The fabric to read.
    pub fabric: &'a SyncFabric,
    /// Reported cycle.
    pub cycle: u64,
}

impl StreamEnv for FabricEnv<'_> {
    fn read_sync_word(&self, addr: Addr) -> u64 {
        self.fabric.read(addr)
    }
    fn now(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptb_isa::addr::layout;

    /// Drive a set of protocol state machines round-robin against a shared
    /// fabric, applying RMWs instantly (functional check only). Returns the
    /// order in which machines finished.
    fn drive_locks(n: usize, max_steps: usize) -> (Vec<usize>, SyncFabric) {
        let mut fabric = SyncFabric::new();
        let addr = layout::lock_addr(0);
        let mut sms: Vec<LockAcquire> = (0..n)
            .map(|i| LockAcquire::new(LockId(0), addr, i as u64 + 1, 0x9000, RmwToken(i as u64)))
            .collect();
        let mut finish_order = Vec::new();
        let mut holder: Option<usize> = None;
        for step in 0..max_steps {
            let i = step % n;
            if sms[i].is_done() {
                continue;
            }
            let stepr = {
                let mut env = FabricEnv {
                    fabric: &fabric,
                    cycle: step as u64,
                };
                sms[i].next(&mut env)
            };
            match stepr {
                SyncStep::Inst(inst) => {
                    assert!(inst.validate().is_ok());
                    if let Some(rmw) = inst.rmw {
                        let old = fabric.execute(rmw.op, inst.mem.unwrap().addr, rmw.operand);
                        let acquired = sms[i].rmw_result(rmw.token, old);
                        if acquired {
                            assert!(holder.is_none(), "mutual exclusion violated");
                            holder = Some(i);
                            finish_order.push(i);
                            // Release immediately so others can proceed.
                            fabric.execute(RmwOp::Swap, addr, 0);
                            let _ = holder.take();
                        }
                    }
                }
                SyncStep::Stall | SyncStep::Done => {}
            }
            if finish_order.len() == n {
                break;
            }
        }
        (finish_order, fabric)
    }

    #[test]
    fn all_contenders_eventually_acquire() {
        let (order, _) = drive_locks(4, 100_000);
        assert_eq!(order.len(), 4, "not all threads acquired the lock");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn uncontended_lock_takes_four_instructions() {
        let fabric = SyncFabric::new();
        let mut sm = LockAcquire::new(LockId(1), layout::lock_addr(1), 1, 0x9000, RmwToken(0));
        let mut insts = Vec::new();
        let mut fab = fabric;
        for cycle in 0..20 {
            let stepr = {
                let mut env = FabricEnv {
                    fabric: &fab,
                    cycle,
                };
                sm.next(&mut env)
            };
            match stepr {
                SyncStep::Inst(inst) => {
                    if let Some(rmw) = inst.rmw {
                        let old = fab.execute(rmw.op, inst.mem.unwrap().addr, rmw.operand);
                        sm.rmw_result(rmw.token, old);
                    }
                    insts.push(inst);
                }
                SyncStep::Done => break,
                SyncStep::Stall => {}
            }
        }
        // load, test, pause, pause, branch(not taken), TAS.
        assert_eq!(insts.len(), 6);
        assert_eq!(insts[0].kind, OpKind::Load);
        assert_eq!(insts[4].kind, OpKind::Branch);
        assert!(!insts[4].branch.unwrap().taken);
        assert_eq!(insts[5].kind, OpKind::AtomicRmw);
        assert!(sm.is_done());
        assert_eq!(sm.spin_iters, 0);
    }

    #[test]
    fn spinning_on_held_lock_emits_tagged_loop() {
        let mut fabric = SyncFabric::new();
        let addr = layout::lock_addr(2);
        fabric.write(addr, 99); // held by someone else
        let mut sm = LockAcquire::new(LockId(2), addr, 1, 0x9000, RmwToken(0));
        let mut spin_insts = 0;
        for cycle in 0..30 {
            let stepr = {
                let mut env = FabricEnv {
                    fabric: &fabric,
                    cycle,
                };
                sm.next(&mut env)
            };
            if let SyncStep::Inst(inst) = stepr {
                assert!(
                    inst.ctx.spinning,
                    "all spin-loop instructions must be tagged"
                );
                assert_eq!(inst.ctx.state.bucket(), 1); // LockAcq
                spin_insts += 1;
                assert_ne!(inst.kind, OpKind::AtomicRmw, "must not TAS while held");
            }
        }
        assert_eq!(spin_insts, 30);
        assert!(sm.spin_iters >= 5);
        // Release; the machine proceeds to a TAS and acquires.
        fabric.write(addr, 0);
        let mut acquired = false;
        for cycle in 0..20 {
            let stepr = {
                let mut env = FabricEnv {
                    fabric: &fabric,
                    cycle,
                };
                sm.next(&mut env)
            };
            if let SyncStep::Inst(inst) = stepr {
                if let Some(rmw) = inst.rmw {
                    let old = fabric.execute(rmw.op, inst.mem.unwrap().addr, rmw.operand);
                    acquired = sm.rmw_result(rmw.token, old);
                }
            }
            if sm.is_done() {
                break;
            }
        }
        assert!(acquired);
    }

    #[test]
    fn failed_tas_returns_to_spinning() {
        // Lock free at poll time but stolen before the TAS executes.
        let mut fabric = SyncFabric::new();
        let addr = layout::lock_addr(3);
        let mut sm = LockAcquire::new(LockId(3), addr, 1, 0x9000, RmwToken(0));
        // poll load, test, pause, pause, branch(free) -> TryRmw.
        for cycle in 0..5 {
            let mut env = FabricEnv {
                fabric: &fabric,
                cycle,
            };
            assert!(matches!(sm.next(&mut env), SyncStep::Inst(_)));
        }
        // Thief takes the lock now.
        fabric.execute(RmwOp::TestAndSet, addr, 42);
        // Our TAS executes and fails.
        let inst = {
            let mut env = FabricEnv {
                fabric: &fabric,
                cycle: 5,
            };
            match sm.next(&mut env) {
                SyncStep::Inst(i) => i,
                other => panic!("expected TAS, got {other:?}"),
            }
        };
        let rmw = inst.rmw.unwrap();
        let old = fabric.execute(rmw.op, addr, rmw.operand);
        assert!(!sm.rmw_result(rmw.token, old));
        assert!(!sm.is_done());
        // Back to polling.
        let mut env = FabricEnv {
            fabric: &fabric,
            cycle: 4,
        };
        match sm.next(&mut env) {
            SyncStep::Inst(i) => assert_eq!(i.kind, OpKind::Load),
            other => panic!("expected poll load, got {other:?}"),
        }
    }

    #[test]
    fn release_emits_single_rmw_and_frees() {
        let mut fabric = SyncFabric::new();
        let addr = layout::lock_addr(4);
        fabric.write(addr, 1);
        let mut sm = LockRelease::new(LockId(4), addr, 0x9000, RmwToken(0));
        let inst = {
            let mut env = FabricEnv {
                fabric: &fabric,
                cycle: 0,
            };
            match sm.next(&mut env) {
                SyncStep::Inst(i) => i,
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(inst.ctx.state.bucket(), 2); // LockRel
        let rmw = inst.rmw.unwrap();
        let old = fabric.execute(rmw.op, addr, rmw.operand);
        sm.rmw_result(rmw.token, old);
        assert!(sm.is_done());
        assert_eq!(fabric.read(addr), 0);
    }

    /// Full barrier episode across `n` participants, applying RMWs
    /// instantly; checks that nobody passes early and everyone passes
    /// eventually, twice in a row (sense reversal).
    #[test]
    fn barrier_releases_everyone_and_is_reusable() {
        let n = 4usize;
        let counter = layout::barrier_counter_addr(0);
        let sense = layout::barrier_sense_addr(0);
        let mut fabric = SyncFabric::new();
        for episode in 0..2 {
            let mut sms: Vec<BarrierWait> = (0..n)
                .map(|i| {
                    BarrierWait::new(
                        BarrierId(0),
                        counter,
                        sense,
                        n as u64,
                        0xA000,
                        RmwToken(i as u64),
                    )
                })
                .collect();
            let mut done = vec![false; n];
            // Stagger arrivals: thread i only starts stepping after i*50
            // steps.
            for step in 0..100_000usize {
                let i = step % n;
                if done[i] || step / n < i * 50 {
                    continue;
                }
                let stepr = {
                    let mut env = FabricEnv {
                        fabric: &fabric,
                        cycle: step as u64,
                    };
                    sms[i].next(&mut env)
                };
                match stepr {
                    SyncStep::Inst(inst) => {
                        if let Some(rmw) = inst.rmw {
                            let old = fabric.execute(rmw.op, inst.mem.unwrap().addr, rmw.operand);
                            sms[i].rmw_result(rmw.token, old);
                        }
                    }
                    SyncStep::Done => {
                        done[i] = true;
                        // No one may finish before the last thread arrived:
                        // once anyone is done, the counter must have cycled.
                        assert_eq!(
                            fabric.read(counter),
                            0,
                            "early release in episode {episode}"
                        );
                    }
                    SyncStep::Stall => {}
                }
                if done.iter().all(|&d| d) {
                    break;
                }
            }
            assert!(
                done.iter().all(|&d| d),
                "barrier deadlock in episode {episode}"
            );
            let lasts = sms.iter().filter(|s| s.was_last).count();
            assert_eq!(lasts, 1, "exactly one last arriver");
        }
    }

    #[test]
    fn single_thread_barrier_passes_straight_through() {
        let counter = layout::barrier_counter_addr(1);
        let sense = layout::barrier_sense_addr(1);
        let mut fabric = SyncFabric::new();
        let mut sm = BarrierWait::new(BarrierId(1), counter, sense, 1, 0xA000, RmwToken(0));
        for cycle in 0..50 {
            let stepr = {
                let mut env = FabricEnv {
                    fabric: &fabric,
                    cycle,
                };
                sm.next(&mut env)
            };
            match stepr {
                SyncStep::Inst(inst) => {
                    if let Some(rmw) = inst.rmw {
                        let old = fabric.execute(rmw.op, inst.mem.unwrap().addr, rmw.operand);
                        sm.rmw_result(rmw.token, old);
                    }
                }
                SyncStep::Done => break,
                SyncStep::Stall => {}
            }
        }
        assert!(sm.is_done());
        assert!(sm.was_last);
        assert_eq!(sm.spin_iters, 0);
    }
}
