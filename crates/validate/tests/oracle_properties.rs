//! Property tests driving the oracle suite through the vendored
//! proptest: random cases drawn from [`CaseStrategy`] must satisfy every
//! invariant. This is the in-tree (small-N) counterpart of the
//! `sim_check` fuzzing binary; both share the generator and oracles, so
//! a failure here replays there via the printed case JSON.

use proptest::prelude::*;
use ptb_validate::{
    check_budget_monotonicity, check_case, check_mechanism_vs_baseline, CaseStrategy,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn random_cases_satisfy_all_invariants(case in CaseStrategy) {
        let violations = check_case(&case);
        prop_assert!(
            violations.is_empty(),
            "case {} violates: {}",
            case.to_json(),
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn budget_tightening_is_monotone(case in CaseStrategy) {
        let violations = check_budget_monotonicity(&case);
        prop_assert!(
            violations.is_empty(),
            "case {} violates: {}",
            case.to_json(),
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn mechanisms_only_remove_power(case in CaseStrategy) {
        let violations = check_mechanism_vs_baseline(&case);
        prop_assert!(
            violations.is_empty(),
            "case {} violates: {}",
            case.to_json(),
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}
