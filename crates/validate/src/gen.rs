//! Seeded generation of simulation cases.
//!
//! A [`CaseSpec`] is a compact, serialisable description of one
//! simulation: the knobs the fuzzer explores (core count, budget,
//! mechanism, PTB hardware geometry, workload). It materialises into a
//! [`SimConfig`] + [`WorkloadSpec`] pair on demand, so a failing case can
//! be stored, replayed and shrunk as plain JSON.
//!
//! Generation builds on the vendored `proptest`: [`CaseStrategy`]
//! implements [`proptest::Strategy`], so cases can be drawn inside
//! `proptest!` tests or directly from a seeded
//! [`proptest::test_runner::TestRng`] (which is what the `sim_check`
//! binary does). The vendored proptest has no shrinking; `ptb-validate`
//! supplies its own greedy shrinker in [`crate::shrink`].

use proptest::{Strategy, TestRng};
use ptb_core::{MechanismKind, PtbConfig, PtbPolicy, SimConfig};
use ptb_isa::{BarrierId, BlockGenConfig, InstMix, LockId, MemPattern};
use ptb_workloads::stmt::{flatten, Stmt};
use ptb_workloads::{Benchmark, LockKind, Scale, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Safety cap on simulated cycles for generated cases. Test-scale
/// workloads finish in well under a million cycles even when throttled
/// to a 30 % budget; hitting this cap is reported as a liveness
/// violation, not tolerated.
pub const CASE_MAX_CYCLES: u64 = 20_000_000;

/// Shape of a degenerate synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SynthShape {
    /// One thread, one pure integer-ALU loop: the closed-form reference
    /// model of [`crate::reference`] predicts its cycles and energy.
    /// Only valid with `n_cores == 1`.
    SingleAlu,
    /// Embarrassingly parallel: every thread computes independently on
    /// its own data and synchronises once at the final barrier.
    Parallel,
    /// All threads hammer one lock around a tiny critical section.
    LockContended,
    /// Barrier phases with linearly imbalanced per-thread work (thread
    /// `t` does `1 + t` units), the paper's barrier-spin signature.
    BarrierImbalanced,
}

/// Which workload a case runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadDesc {
    /// One of the fourteen benchmark models at test scale.
    Bench(Benchmark),
    /// A degenerate synthetic program (see [`SynthShape`]); `work` is
    /// the per-thread compute-block instruction count.
    Synth {
        /// Program shape.
        shape: SynthShape,
        /// Base dynamic instructions per compute block.
        work: u64,
    },
}

/// A complete, serialisable description of one fuzzed simulation case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Core count (= thread count).
    pub n_cores: usize,
    /// Global power budget as a fraction of peak chip power.
    pub budget_frac: f64,
    /// Mechanism under test.
    pub mechanism: MechanismKind,
    /// PTB token-wire width in bits.
    pub wire_bits: u32,
    /// Balancer round-trip latency override (`None` = paper values).
    pub latency_override: Option<u64>,
    /// Balancer clustering (`None` = one chip-wide balancer).
    pub cluster_size: Option<usize>,
    /// Workload to run.
    pub workload: WorkloadDesc,
    /// Workload RNG seed.
    pub seed: u64,
}

impl CaseSpec {
    /// The simulator configuration this case materialises to.
    pub fn config(&self) -> SimConfig {
        SimConfig {
            n_cores: self.n_cores,
            budget_frac: self.budget_frac,
            mechanism: self.mechanism,
            ptb: PtbConfig {
                latency_override: self.latency_override,
                wire_bits: self.wire_bits,
                cluster_size: self.cluster_size,
                ..PtbConfig::default()
            },
            scale: Scale::Test,
            max_cycles: CASE_MAX_CYCLES,
            ..SimConfig::default()
        }
    }

    /// The workload this case runs (one thread per core).
    pub fn workload_spec(&self) -> WorkloadSpec {
        match self.workload {
            WorkloadDesc::Bench(b) => {
                let mut spec = b.spec(self.n_cores, Scale::Test);
                spec.seed ^= self.seed;
                spec
            }
            WorkloadDesc::Synth { shape, work } => synth_spec(shape, work, self.n_cores, self.seed),
        }
    }

    /// Serialise to single-line JSON (the canonical replay artefact for
    /// `sim_check --replay`).
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Parse a case back from [`CaseSpec::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = serde::json::parse(s).map_err(|e| format!("bad case JSON: {e}"))?;
        <CaseSpec as serde::Deserialize>::from_value(&v).map_err(|e| format!("bad case shape: {e}"))
    }
}

/// Pure independent integer-ALU profile: no memory traffic, no flaky
/// branches, no register dependences. With the default 4-wide core this
/// sustains one full issue group per cycle, which is what makes the
/// closed-form model in [`crate::reference`] tractable.
pub fn alu_profile() -> BlockGenConfig {
    BlockGenConfig {
        mix: InstMix {
            int_alu: 1.0,
            int_mul: 0.0,
            fp_alu: 0.0,
            fp_mul: 0.0,
            load: 0.0,
            store: 0.0,
            branch: 0.0,
        },
        mem: MemPattern::cache_resident(),
        static_len: 64,
        flaky_branch_frac: 0.0,
        dep_density: 0.0,
    }
}

fn synth_spec(shape: SynthShape, work: u64, n_cores: usize, seed: u64) -> WorkloadSpec {
    let work = work.max(1);
    let balanced = BlockGenConfig::default();
    let (name, profiles, programs): (&str, Vec<BlockGenConfig>, Vec<Vec<Stmt>>) = match shape {
        SynthShape::SingleAlu => (
            "synth-single-alu",
            vec![alu_profile()],
            vec![vec![Stmt::Compute {
                profile: 0,
                count: work,
            }]],
        ),
        SynthShape::Parallel => (
            "synth-parallel",
            vec![balanced],
            (0..n_cores)
                .map(|_| {
                    vec![
                        Stmt::Compute {
                            profile: 0,
                            count: work,
                        },
                        Stmt::Barrier(BarrierId(0)),
                    ]
                })
                .collect(),
        ),
        SynthShape::LockContended => (
            "synth-lock",
            vec![balanced],
            (0..n_cores)
                .map(|_| {
                    vec![
                        Stmt::Repeat {
                            times: 8,
                            body: vec![
                                Stmt::Compute {
                                    profile: 0,
                                    count: work / 8 + 1,
                                },
                                Stmt::Lock(LockId(0)),
                                Stmt::Compute {
                                    profile: 0,
                                    count: 16,
                                },
                                Stmt::Unlock(LockId(0)),
                            ],
                        },
                        Stmt::Barrier(BarrierId(0)),
                    ]
                })
                .collect(),
        ),
        SynthShape::BarrierImbalanced => (
            "synth-imbalance",
            vec![balanced],
            (0..n_cores)
                .map(|t| {
                    vec![Stmt::Repeat {
                        times: 4,
                        body: vec![
                            Stmt::Compute {
                                profile: 0,
                                count: work * (1 + t as u64),
                            },
                            Stmt::Barrier(BarrierId(0)),
                        ],
                    }]
                })
                .collect(),
        ),
    };
    WorkloadSpec {
        name: name.into(),
        programs: programs.iter().map(|p| flatten(p)).collect(),
        profiles,
        seed,
        lock_kind: LockKind::TestAndSet,
    }
}

const CORE_COUNTS: [usize; 7] = [1, 2, 3, 4, 6, 8, 16];
const POLICIES: [PtbPolicy; 3] = [PtbPolicy::ToAll, PtbPolicy::ToOne, PtbPolicy::Dynamic];

fn pick<T: Copy>(rng: &mut TestRng, xs: &[T]) -> T {
    xs[(rng.next_u64() % xs.len() as u64) as usize]
}

fn chance(rng: &mut TestRng, num: u64, den: u64) -> bool {
    rng.next_u64() % den < num
}

/// Draw one case from a seeded generator. Covers every mechanism kind,
/// a spread of core counts (including non-power-of-two mesh shapes),
/// budgets from deep throttle to near-peak, non-default PTB wire/latency
/// geometry, all four synthetic shapes and all fourteen benchmarks.
pub fn arbitrary_case(rng: &mut TestRng) -> CaseSpec {
    let mechanism = match rng.next_u64() % 8 {
        0 => MechanismKind::None,
        1 => MechanismKind::Dvfs,
        2 => MechanismKind::Dfs,
        3 => MechanismKind::TwoLevel,
        4 | 5 => MechanismKind::PtbTwoLevel {
            policy: pick(rng, &POLICIES),
            relax: if chance(rng, 1, 4) { 0.2 } else { 0.0 },
        },
        _ => MechanismKind::PtbSpinGate {
            policy: pick(rng, &POLICIES),
            relax: if chance(rng, 1, 4) { 0.2 } else { 0.0 },
        },
    };
    // Mostly degenerate synthetics (they stress the accounting paths
    // hardest per simulated cycle); benchmarks keep the realistic
    // lock/barrier choreography in the pool.
    let workload = if chance(rng, 1, 3) {
        WorkloadDesc::Bench(pick(rng, &Benchmark::ALL))
    } else {
        let shape = pick(
            rng,
            &[
                SynthShape::Parallel,
                SynthShape::LockContended,
                SynthShape::BarrierImbalanced,
                SynthShape::SingleAlu,
            ],
        );
        WorkloadDesc::Synth {
            shape,
            work: 200 + rng.next_u64() % 1800,
        }
    };
    let n_cores = match workload {
        WorkloadDesc::Synth {
            shape: SynthShape::SingleAlu,
            ..
        } => 1,
        _ => pick(rng, &CORE_COUNTS),
    };
    CaseSpec {
        n_cores,
        budget_frac: 0.3 + (rng.next_u64() % 61) as f64 / 100.0,
        mechanism,
        wire_bits: pick(rng, &[2u32, 4, 4, 4, 8]),
        latency_override: if chance(rng, 1, 4) {
            Some(1 + rng.next_u64() % 20)
        } else {
            None
        },
        cluster_size: if chance(rng, 1, 5) {
            Some(pick(rng, &[2usize, 4, 8]))
        } else {
            None
        },
        workload,
        seed: rng.next_u64(),
    }
}

/// [`proptest::Strategy`] yielding [`CaseSpec`]s, for use in
/// `proptest!`-based tests: `case in CaseStrategy`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStrategy;

impl Strategy for CaseStrategy {
    type Value = CaseSpec;
    fn generate(&self, rng: &mut TestRng) -> CaseSpec {
        arbitrary_case(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_materialise_to_valid_workloads() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let case = arbitrary_case(&mut rng);
            let spec = case.workload_spec();
            assert_eq!(spec.n_threads(), case.n_cores, "one thread per core");
            assert!(
                spec.validate().is_empty(),
                "generated workload invalid: {:?}",
                spec.validate()
            );
            assert!(spec.total_compute() > 0);
            assert!((0.0..=1.0).contains(&case.budget_frac));
        }
    }

    #[test]
    fn case_json_round_trips() {
        let mut rng = TestRng::new(11);
        for _ in 0..50 {
            let case = arbitrary_case(&mut rng);
            let back = CaseSpec::from_json(&case.to_json()).expect("parse");
            assert_eq!(back, case);
            assert_eq!(
                back.config().canonical_json(),
                case.config().canonical_json()
            );
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a: Vec<CaseSpec> = {
            let mut rng = TestRng::new(3);
            (0..20).map(|_| arbitrary_case(&mut rng)).collect()
        };
        let b: Vec<CaseSpec> = {
            let mut rng = TestRng::new(3);
            (0..20).map(|_| arbitrary_case(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn single_alu_is_always_single_core() {
        let mut rng = TestRng::new(5);
        for _ in 0..300 {
            let case = arbitrary_case(&mut rng);
            if let WorkloadDesc::Synth {
                shape: SynthShape::SingleAlu,
                ..
            } = case.workload
            {
                assert_eq!(case.n_cores, 1);
            }
        }
    }
}
