//! Invariant oracles run against full simulations.
//!
//! Each oracle takes a materialised case, runs the simulator and checks
//! properties that must hold for *every* configuration:
//!
//! * **token conservation / energy integral** — delegated to
//!   [`ptb_obs::AuditObserver`] in counting mode (per-cycle chip sample
//!   = Σ per-core + uncore; accumulated energy = trace integral);
//! * **report consistency** — internal arithmetic of [`RunReport`]
//!   (AoPB ⊆ energy, mean power × cycles = energy, per-core totals
//!   bounded by chip totals, committed work ≥ the spec's compute count);
//! * **budget compliance** — mechanism-specific bounds on mean power
//!   against the global budget;
//! * **determinism & observer non-interference** — the same case run
//!   twice, once audited and once unobserved, must serialise to
//!   byte-identical reports;
//! * **metamorphic monotonicity** — tightening the budget must not raise
//!   consumed power or IPC; doubling cores on an embarrassingly parallel
//!   workload must not lower throughput.

use crate::gen::{CaseSpec, SynthShape, WorkloadDesc};
use ptb_core::sim::SimError;
use ptb_core::{MechanismKind, RunReport, Simulation};
use ptb_obs::{AuditObserver, NullObserver};

/// One failed invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Short stable name of the oracle that fired (used to match
    /// failures while shrinking).
    pub oracle: &'static str,
    /// Human-readable description with the observed numbers.
    pub detail: String,
}

impl Violation {
    fn new(oracle: &'static str, detail: String) -> Self {
        Violation { oracle, detail }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Relative closeness with an absolute floor, for accumulated f64 sums.
fn close(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel * scale
}

/// Run the full per-case oracle suite. Returns every violation found
/// (empty = case passes). The simulation runs twice (audited +
/// unobserved) to check determinism and observer non-interference.
pub fn check_case(case: &CaseSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let cfg = case.config();
    let spec = case.workload_spec();
    let problems = spec.validate();
    if !problems.is_empty() {
        out.push(Violation::new(
            "workload-valid",
            format!("generated workload fails validation: {problems:?}"),
        ));
        return out;
    }

    let sim = Simulation::new(cfg.clone());
    let mut audit = AuditObserver::new(1).counting_only();
    let report = match sim.run_spec_observed(&spec, &mut audit) {
        Ok(r) => r,
        Err(SimError::MaxCyclesExceeded { limit, unfinished }) => {
            out.push(Violation::new(
                "liveness",
                format!("run exceeded {limit} cycles with cores {unfinished:?} unfinished"),
            ));
            return out;
        }
        Err(SimError::BadWorkload(msg)) => {
            out.push(Violation::new(
                "workload-valid",
                format!("simulator rejected workload: {msg}"),
            ));
            return out;
        }
        Err(SimError::CycleBudgetExceeded {
            budget,
            cycle,
            ref spinning,
        }) => {
            out.push(Violation::new(
                "liveness",
                format!(
                    "livelock watchdog fired at cycle {cycle}: every unfinished core \
                     ({spinning:?}) spun for {budget} consecutive cycles"
                ),
            ));
            return out;
        }
        Err(SimError::DeadlineExceeded { cycles_done }) => {
            out.push(Violation::new(
                "liveness",
                format!("wall-clock watchdog fired after {cycles_done} simulated cycles"),
            ));
            return out;
        }
    };
    if audit.violations() > 0 {
        out.push(Violation::new(
            "token-conservation",
            format!(
                "audit counted {} violation(s) over {} checks (per-cycle chip sample \
                 vs Σ per-core + uncore, or energy integral)",
                audit.violations(),
                audit.checks()
            ),
        ));
    }
    out.extend(report_invariants(&report, &spec.total_compute(), case));

    // Determinism + observer non-interference: an unobserved second run
    // must produce a byte-identical report.
    match Simulation::new(cfg).run_spec(&spec) {
        Ok(second) => {
            let a = serde::json::to_string(&report);
            let b = serde::json::to_string(&second);
            if a != b {
                out.push(Violation::new(
                    "determinism",
                    format!(
                        "audited and unobserved runs of the same config+seed diverge \
                         (cycles {} vs {}, energy {} vs {})",
                        report.cycles, second.cycles, report.energy_tokens, second.energy_tokens
                    ),
                ));
            }
        }
        Err(e) => out.push(Violation::new(
            "determinism",
            format!("second run of the same case errored: {e}"),
        )),
    }
    out
}

/// Internal consistency of a finished [`RunReport`].
fn report_invariants(r: &RunReport, total_compute: &u64, case: &CaseSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut bad = |oracle: &'static str, detail: String| out.push(Violation::new(oracle, detail));

    for (name, v) in [
        ("energy_tokens", r.energy_tokens),
        ("energy_joules", r.energy_joules),
        ("aopb_tokens", r.aopb_tokens),
        ("aopb_joules", r.aopb_joules),
        ("mean_power", r.mean_power),
        ("power_stddev", r.power_stddev),
        ("max_temp_c", r.max_temp_c),
        ("mean_temp_c", r.mean_temp_c),
        ("temp_stddev_c", r.temp_stddev_c),
    ] {
        if !v.is_finite() {
            bad("report-finite", format!("{name} = {v} is not finite"));
        }
    }
    if r.energy_tokens < 0.0 || r.aopb_tokens < 0.0 || r.power_stddev < 0.0 {
        bad(
            "report-sign",
            format!(
                "negative accumulator: energy {} aopb {} stddev {}",
                r.energy_tokens, r.aopb_tokens, r.power_stddev
            ),
        );
    }
    if r.cycles == 0 {
        bad("report-cycles", "finished run reports zero cycles".into());
        return out;
    }

    // AoPB is the over-budget part of the energy integral, so it can
    // never exceed the energy itself; and it is nonzero exactly when
    // some cycle went over budget.
    if r.aopb_tokens > r.energy_tokens * (1.0 + 1e-9) {
        bad(
            "aopb-bound",
            format!(
                "AoPB {} tokens exceeds total energy {} tokens",
                r.aopb_tokens, r.energy_tokens
            ),
        );
    }
    if r.cycles_over_budget > r.cycles {
        bad(
            "aopb-bound",
            format!(
                "cycles_over_budget {} > cycles {}",
                r.cycles_over_budget, r.cycles
            ),
        );
    }
    if (r.aopb_tokens > 0.0) != (r.cycles_over_budget > 0) {
        bad(
            "aopb-bound",
            format!(
                "AoPB {} tokens but {} over-budget cycles",
                r.aopb_tokens, r.cycles_over_budget
            ),
        );
    }
    // AoPB ≤ cycles_over × (what the worst cycle could exceed by); the
    // cheap universal bound is AoPB ≤ energy of the over cycles, already
    // covered. Also mean power must integrate back to the energy.
    if !close(r.mean_power * r.cycles as f64, r.energy_tokens, 1e-6) {
        bad(
            "energy-mean",
            format!(
                "mean_power {} × cycles {} = {} ≠ energy {}",
                r.mean_power,
                r.cycles,
                r.mean_power * r.cycles as f64,
                r.energy_tokens
            ),
        );
    }
    // Case configs use the default power params, so the tokens→joules
    // conversion of the report must match them.
    let joules = ptb_power::PowerParams::default().joules(r.energy_tokens);
    if !close(joules, r.energy_joules, 1e-9) {
        bad(
            "energy-units",
            format!(
                "energy_joules {} does not match joules(energy_tokens) = {joules}",
                r.energy_joules
            ),
        );
    }

    // Per-core totals live inside the chip totals.
    let core_sum: f64 = r.cores.iter().map(|c| c.tokens).sum();
    if core_sum > r.energy_tokens * (1.0 + 1e-9) {
        bad(
            "core-energy-bound",
            format!(
                "Σ per-core tokens {} exceeds chip energy {} (uncore share negative)",
                core_sum, r.energy_tokens
            ),
        );
    }
    if r.cores.len() != case.n_cores {
        bad(
            "core-count",
            format!(
                "report has {} cores, case has {}",
                r.cores.len(),
                case.n_cores
            ),
        );
    }
    for (i, c) in r.cores.iter().enumerate() {
        if c.spin_cycles > r.cycles {
            bad(
                "spin-bound",
                format!(
                    "core {i}: spin_cycles {} > run cycles {}",
                    c.spin_cycles, r.cycles
                ),
            );
        }
        if c.spin_tokens > c.tokens * (1.0 + 1e-9) + 1e-9 {
            bad(
                "spin-bound",
                format!(
                    "core {i}: spin tokens {} exceed total core tokens {}",
                    c.spin_tokens, c.tokens
                ),
            );
        }
        if c.spin_tokens < 0.0 || c.tokens < 0.0 {
            bad(
                "report-sign",
                format!(
                    "core {i}: negative tokens (spin {}, total {})",
                    c.spin_tokens, c.tokens
                ),
            );
        }
        let ctx_sum: u64 = c.ctx_cycles.iter().sum();
        if ctx_sum > r.cycles {
            bad(
                "ctx-bound",
                format!(
                    "core {i}: Σ ctx_cycles {} > run cycles {}",
                    ctx_sum, r.cycles
                ),
            );
        }
        if !(0.0..=1.0).contains(&c.mispredict_rate) {
            bad(
                "report-sign",
                format!(
                    "core {i}: mispredict_rate {} outside [0,1]",
                    c.mispredict_rate
                ),
            );
        }
    }

    // The cores must at least commit the spec's compute instructions
    // (sync instructions only add to this).
    if r.committed() < *total_compute {
        bad(
            "committed-work",
            format!(
                "committed {} < spec compute instructions {total_compute}",
                r.committed()
            ),
        );
    }

    out.extend(budget_compliance(r, case));
    out
}

/// Mechanism-specific budget-compliance bounds.
///
/// No mechanism can bound every individual cycle (that is the paper's
/// whole point: AoPB > 0), and the frequency/voltage ladders have a
/// floor — DFS at its deepest mode still runs dynamic power at 65 % of
/// nominal, which is exactly why the paper's Figure 2 shows DFS pinned
/// at ≈ 100 % AoPB under a 50 % budget. The per-mechanism cap is
/// therefore the larger of a slack-padded global budget and the
/// mechanism's physical throttle floor expressed as a fraction of chip
/// peak. The caps are loose on purpose: they catch unit-level
/// bookkeeping bugs (doubled samples, unscaled overhead), not tuning
/// regressions — the sharp check is [`check_mechanism_vs_baseline`].
fn budget_compliance(r: &RunReport, case: &CaseSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let peak = r.budget.peak_chip;
    let global = r.budget.global;
    if r.mean_power > peak * 1.001 {
        out.push(Violation::new(
            "budget-peak",
            format!("mean power {} exceeds chip peak {peak}", r.mean_power),
        ));
    }
    // Deepest-mode mean-power floor as a fraction of peak: dynamic
    // scales with f·V², leakage with V, and a busy core is ~65-70 % of
    // peak to begin with. DFS (f 0.65, V 1.0) ⇒ ≤ 0.75 peak; DVFS
    // (f 0.65, V 0.9) ⇒ ≤ 0.62 peak. Mechanisms with
    // micro-architectural throttling can gate the front end entirely,
    // so only the budget-relative cap applies to them.
    let floor_frac = match case.mechanism {
        MechanismKind::None => return out,
        MechanismKind::Dfs => 0.75,
        MechanismKind::Dvfs => 0.62,
        MechanismKind::TwoLevel
        | MechanismKind::PtbTwoLevel { .. }
        | MechanismKind::PtbSpinGate { .. } => 0.0,
    };
    let cap = (global * 1.5 + 0.05 * peak).max(peak * floor_frac);
    if r.mean_power > cap {
        out.push(Violation::new(
            "budget-mean",
            format!(
                "{}: mean power {} far above global budget {global} (cap {cap})",
                r.mechanism, r.mean_power
            ),
        ));
    }
    out
}

/// Baseline-relative metamorphic check: re-run the case with no
/// mechanism. Power control can only *remove* power — the controlled
/// run's mean power must not exceed the uncontrolled baseline's (plus
/// the PTB balancer's ~1 % overhead allowance). Total energy *can* rise
/// under control: throttling stretches the run, and leakage plus ROB
/// occupancy keep burning over every extra cycle. The energy bound
/// therefore allows the baseline energy plus extra cycles priced at the
/// baseline mean power — anything above that means the mechanism
/// manufactured energy rather than merely stretching time.
pub fn check_mechanism_vs_baseline(case: &CaseSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    if matches!(case.mechanism, MechanismKind::None) {
        return out;
    }
    let baseline = CaseSpec {
        mechanism: MechanismKind::None,
        ..case.clone()
    };
    let (mech, base) = match (run_quiet(case), run_quiet(&baseline)) {
        (Ok(m), Ok(b)) => (m, b),
        _ => return out,
    };
    if mech.mean_power > base.mean_power * 1.03 + 1e-6 {
        out.push(Violation::new(
            "mechanism-adds-power",
            format!(
                "{}: mean power {} exceeds uncontrolled baseline {}",
                mech.mechanism, mech.mean_power, base.mean_power
            ),
        ));
    }
    let extra_cycles = mech.cycles.saturating_sub(base.cycles) as f64;
    let allowed = (base.energy_tokens + extra_cycles * base.mean_power) * 1.05;
    if mech.energy_tokens > allowed {
        out.push(Violation::new(
            "mechanism-energy-cost",
            format!(
                "{}: energy {} tokens exceeds slowdown-adjusted baseline allowance {} \
                 (baseline {} tokens over {} cycles, controlled run took {} cycles)",
                mech.mechanism,
                mech.energy_tokens,
                allowed,
                base.energy_tokens,
                base.cycles,
                mech.cycles
            ),
        ));
    }
    out
}

/// Budget-monotonicity metamorphic check: re-run `case` with a tighter
/// budget; consumed mean power must not rise and the run must not get
/// faster (IPC ≤). Only meaningful for controlling mechanisms.
pub fn check_budget_monotonicity(case: &CaseSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    if matches!(case.mechanism, MechanismKind::None) || case.budget_frac < 0.45 {
        return out;
    }
    let tight = CaseSpec {
        budget_frac: case.budget_frac - 0.15,
        ..case.clone()
    };
    let (a, b) = match (run_quiet(case), run_quiet(&tight)) {
        (Ok(a), Ok(b)) => (a, b),
        // Liveness/validity failures are caught by check_case.
        _ => return out,
    };
    // Tolerances absorb control-loop hysteresis at tiny test scale.
    if b.mean_power > a.mean_power * 1.02 + 1e-6 {
        out.push(Violation::new(
            "budget-monotonic-power",
            format!(
                "tightening budget {:.2} -> {:.2} raised mean power {} -> {}",
                case.budget_frac, tight.budget_frac, a.mean_power, b.mean_power
            ),
        ));
    }
    if (b.cycles as f64) < a.cycles as f64 * 0.98 {
        out.push(Violation::new(
            "budget-monotonic-perf",
            format!(
                "tightening budget {:.2} -> {:.2} made the run faster: {} -> {} cycles",
                case.budget_frac, tight.budget_frac, a.cycles, b.cycles
            ),
        ));
    }
    out
}

/// Core-scaling metamorphic check: an embarrassingly parallel synthetic
/// with twice the cores does ~twice the total work and must deliver
/// more committed instructions per cycle. Applied only to uncontrolled
/// `Parallel` cases (no mechanism, no lock coupling).
pub fn check_core_scaling(case: &CaseSpec) -> Vec<Violation> {
    let mut out = Vec::new();
    let parallel = matches!(
        case.workload,
        WorkloadDesc::Synth {
            shape: SynthShape::Parallel,
            ..
        }
    );
    if !parallel || !matches!(case.mechanism, MechanismKind::None) || case.n_cores > 8 {
        return out;
    }
    let doubled = CaseSpec {
        n_cores: case.n_cores * 2,
        ..case.clone()
    };
    let (a, b) = match (run_quiet(case), run_quiet(&doubled)) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return out,
    };
    let tp_a = a.committed() as f64 / a.cycles as f64;
    let tp_b = b.committed() as f64 / b.cycles as f64;
    if tp_b < tp_a * 1.2 {
        out.push(Violation::new(
            "core-scaling",
            format!(
                "throughput did not scale: {} cores -> {tp_a:.3} IPC(chip), \
                 {} cores -> {tp_b:.3}",
                case.n_cores, doubled.n_cores
            ),
        ));
    }
    out
}

/// Run a case without oracles, propagating simulator errors.
pub fn run_quiet(case: &CaseSpec) -> Result<RunReport, SimError> {
    let mut obs = NullObserver;
    Simulation::new(case.config()).run_spec_observed(&case.workload_spec(), &mut obs)
}
