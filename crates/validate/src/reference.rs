//! Closed-form reference model for the degenerate single-core workload.
//!
//! The [`crate::gen::SynthShape::SingleAlu`] case is constructed so that
//! simple arithmetic predicts the simulator's output:
//!
//! * one thread, one compute block of `work` pure `IntAlu` instructions
//!   (no loads/stores, no register dependences, no flaky branches), with
//!   a 64-slot static loop body whose last slot is the taken back-edge;
//! * mechanism `None` at budget 1.0 — no throttling, nominal voltage.
//!
//! Then:
//!
//! * **committed** must equal `work` exactly (the engine emits exactly
//!   `count` instructions for a single-thread pure-compute program);
//! * **cycles** ≈ `work / issue_width` plus a bounded startup/drain
//!   transient (the 4-wide core sustains one full issue group per cycle
//!   on independent single-cycle ALU ops);
//! * **energy** lies between a floor of the per-instruction pipeline
//!   costs plus leakage, and that floor plus a bounded per-cycle ROB
//!   occupancy allowance (the only term the closed form does not pin
//!   down exactly).
//!
//! A simulator change that miscounts tokens, double-charges a pipeline
//! stage, drops committed instructions or breaks the issue logic moves
//! the observed numbers outside these analytic bands.

use crate::gen::{alu_profile, CaseSpec, SynthShape, WorkloadDesc};
use crate::oracle::{run_quiet, Violation};
use ptb_power::{PowerParams, TokenClass};
use ptb_uarch::CoreConfig;

/// Analytic prediction for a [`SynthShape::SingleAlu`] run of `work`
/// instructions.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// Exact committed-instruction count.
    pub committed: u64,
    /// Inclusive cycle-count band.
    pub cycles: (u64, u64),
    /// Inclusive energy band in tokens (depends on the observed cycle
    /// count, which multiplies the leakage and ROB terms).
    pub energy: (f64, f64),
}

/// Per-cycle ROB-occupancy allowance (tokens) used for the energy
/// ceiling: with single-cycle ALU ops the window drains as fast as it
/// fills, so active + gated occupancy charges stay far below this.
const ROB_ALLOWANCE: f64 = 40.0;

/// Predict the reference run. `cycles_observed` feeds the energy band
/// (leakage is charged per cycle, so the band scales with the real run
/// length, which the cycle band itself validates).
pub fn predict(work: u64, cycles_observed: u64) -> Prediction {
    let p = PowerParams::default();
    let c = CoreConfig::default();
    let profile = alu_profile();
    let l = profile.static_len as f64;

    // Static body: `static_len - 1` IntAlu slots plus the Control
    // back-edge.
    let base_mix = ((l - 1.0) * p.base(TokenClass::IntSimple) + p.base(TokenClass::Control)) / l;
    // Every instruction is fetched, decoded and issued once, and makes
    // two PTHT accesses (fetch-time estimate, commit-time update).
    let per_inst = p.fetch_cost + p.decode_cost + base_mix + 2.0 * p.ptht_access;

    let ideal = work.div_ceil(c.issue_width as u64);
    // Startup (cold I-cache, front-end fill) + drain + predictor
    // warm-up transients; generous but still a thin band at real sizes.
    let cycles_hi = ideal + ideal / 3 + 250;

    let energy_lo = work as f64 * per_inst + cycles_observed as f64 * p.core_leakage;
    let energy_hi = energy_lo + cycles_observed as f64 * ROB_ALLOWANCE
        // Wrong-path fetches while the predictor warms up.
        + 64.0 * p.wrongpath_cost;
    Prediction {
        committed: work,
        cycles: (ideal, cycles_hi),
        energy: (energy_lo * 0.999, energy_hi),
    }
}

/// Build the reference case for `work` instructions.
pub fn reference_case(work: u64, seed: u64) -> CaseSpec {
    CaseSpec {
        n_cores: 1,
        budget_frac: 1.0,
        mechanism: ptb_core::MechanismKind::None,
        wire_bits: 4,
        latency_override: None,
        cluster_size: None,
        workload: WorkloadDesc::Synth {
            shape: SynthShape::SingleAlu,
            work,
        },
        seed,
    }
}

/// Run the differential oracle: simulate the reference case and compare
/// against [`predict`].
pub fn check_reference(work: u64, seed: u64) -> Vec<Violation> {
    let mut out = Vec::new();
    let case = reference_case(work, seed);
    let r = match run_quiet(&case) {
        Ok(r) => r,
        Err(e) => {
            out.push(Violation {
                oracle: "reference-liveness",
                detail: format!("reference run ({work} insts) failed: {e}"),
            });
            return out;
        }
    };
    let pred = predict(work, r.cycles);
    if r.committed() != pred.committed {
        out.push(Violation {
            oracle: "reference-committed",
            detail: format!(
                "committed {} != exact prediction {} (work {work})",
                r.committed(),
                pred.committed
            ),
        });
    }
    if r.cycles < pred.cycles.0 || r.cycles > pred.cycles.1 {
        out.push(Violation {
            oracle: "reference-cycles",
            detail: format!(
                "cycles {} outside analytic band [{}, {}] (work {work})",
                r.cycles, pred.cycles.0, pred.cycles.1
            ),
        });
    }
    if r.energy_tokens < pred.energy.0 || r.energy_tokens > pred.energy.1 {
        out.push(Violation {
            oracle: "reference-energy",
            detail: format!(
                "energy {} tokens outside analytic band [{:.1}, {:.1}] (work {work}, \
                 cycles {})",
                r.energy_tokens, pred.energy.0, pred.energy.1, r.cycles
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_model_matches_simulator() {
        for (work, seed) in [(512, 1), (2048, 2), (10_000, 3)] {
            let v = check_reference(work, seed);
            assert!(v.is_empty(), "reference oracle fired: {v:?}");
        }
    }

    #[test]
    fn prediction_bands_are_sane() {
        let p = predict(4096, 1100);
        assert_eq!(p.committed, 4096);
        assert!(p.cycles.0 <= p.cycles.1);
        assert!(p.energy.0 < p.energy.1);
        // Per-instruction cost dominates: the band is materially above
        // pure leakage.
        assert!(p.energy.0 > 4096.0 * 60.0);
    }
}
