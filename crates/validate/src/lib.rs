//! # ptb-validate — property-based validation harness for the simulator
//!
//! Simulator reproductions live or die on correctness arguments, not
//! unit tests alone: the paper's headline numbers (Figures 9–14) are
//! integrals over millions of simulated cycles, and a silent accounting
//! bug poisons every figure downstream. This crate supplies the
//! correctness layer the experiment stack runs on:
//!
//! * [`gen`] — seeded, serialisable generation of simulation cases
//!   ([`CaseSpec`]), covering core counts (including non-square mesh
//!   shapes), budgets, every mechanism, PTB hardware geometry and both
//!   benchmark and degenerate synthetic workloads. Implements the
//!   vendored [`proptest::Strategy`], so cases compose with `proptest!`
//!   tests and with the `sim_check` fuzzing binary alike.
//! * [`oracle`] — invariant oracles over full runs: token conservation
//!   and the energy integral (via [`ptb_obs::AuditObserver`]), report
//!   arithmetic, per-mechanism budget-compliance bounds, bit-exact
//!   determinism with observer non-interference, and metamorphic
//!   monotonicity checks (budget ↓ ⇒ power ↓ and IPC ≤; cores ↑ on
//!   embarrassingly parallel work ⇒ throughput ≥).
//! * [`reference`] — a closed-form analytical model for the degenerate
//!   single-core ALU workload, used as a differential oracle: predicted
//!   committed instructions are exact, predicted cycle and energy bands
//!   are thin enough to catch any unit-level accounting error.
//! * [`shrink`] — greedy counterexample minimisation (the vendored
//!   proptest does not shrink), producing small, replayable cases.
//!
//! The `sim_check` binary in `ptb-experiments` drives all of this from
//! a seed for CI; failures are printed as replayable [`CaseSpec`] JSON
//! plus the materialised [`ptb_core::SimConfig`] canonical JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod reference;
pub mod shrink;

pub use gen::{arbitrary_case, CaseSpec, CaseStrategy, SynthShape, WorkloadDesc};
pub use oracle::{
    check_budget_monotonicity, check_case, check_core_scaling, check_mechanism_vs_baseline,
    run_quiet, Violation,
};
pub use proptest::TestRng;
pub use reference::{check_reference, predict, reference_case, Prediction};
pub use shrink::shrink;
