//! Greedy counterexample shrinking.
//!
//! The vendored `proptest` reports failing cases but does not minimise
//! them, so `ptb-validate` carries its own shrinker: a fixed list of
//! simplifying transforms applied greedily until none of them preserves
//! the failure. Each accepted transform re-runs the failing predicate
//! (i.e. re-simulates), so shrinking cost is bounded by
//! `transforms × rounds` simulations of ever-smaller cases.

use crate::gen::{CaseSpec, SynthShape, WorkloadDesc};
use ptb_core::{MechanismKind, PtbPolicy};

/// Candidate one-step simplifications of `case`, most aggressive first.
/// Every candidate is strictly "smaller" under a lexicographic measure
/// (workload class, work size, core count, mechanism complexity, knob
/// distance from defaults), which guarantees shrinking terminates.
fn candidates(case: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    let mut push = |c: CaseSpec| {
        if c != *case {
            out.push(c);
        }
    };

    // Workload: benchmark -> parallel synthetic -> smaller work.
    match case.workload {
        WorkloadDesc::Bench(_) => {
            push(CaseSpec {
                workload: WorkloadDesc::Synth {
                    shape: SynthShape::Parallel,
                    work: 400,
                },
                ..case.clone()
            });
        }
        WorkloadDesc::Synth { shape, work } => {
            if work > 50 {
                push(CaseSpec {
                    workload: WorkloadDesc::Synth {
                        shape,
                        work: (work / 2).max(50),
                    },
                    ..case.clone()
                });
            }
            if shape != SynthShape::Parallel && shape != SynthShape::SingleAlu {
                push(CaseSpec {
                    workload: WorkloadDesc::Synth {
                        shape: SynthShape::Parallel,
                        work,
                    },
                    ..case.clone()
                });
            }
        }
    }

    // Fewer cores: try halving first, then a single step, so shrinking
    // can cross odd counts (SingleAlu is pinned to one core already).
    if case.n_cores > 1 {
        push(CaseSpec {
            n_cores: (case.n_cores / 2).max(1),
            ..case.clone()
        });
        push(CaseSpec {
            n_cores: case.n_cores - 1,
            ..case.clone()
        });
    }

    // Simpler mechanism, preserving "is a PTB mechanism" first so
    // balancer bugs do not shrink into DVFS bugs unless they reproduce
    // there too.
    let simpler: &[MechanismKind] = match case.mechanism {
        MechanismKind::PtbSpinGate { policy, relax } => {
            &[MechanismKind::PtbTwoLevel { policy, relax }]
        }
        MechanismKind::PtbTwoLevel { policy, relax } => {
            let mut v: Vec<MechanismKind> = Vec::new();
            if relax != 0.0 {
                v.push(MechanismKind::PtbTwoLevel { policy, relax: 0.0 });
            }
            if policy != PtbPolicy::ToAll {
                v.push(MechanismKind::PtbTwoLevel {
                    policy: PtbPolicy::ToAll,
                    relax,
                });
            }
            v.push(MechanismKind::TwoLevel);
            return with_knob_shrinks(case, out, v);
        }
        MechanismKind::TwoLevel => &[MechanismKind::Dvfs],
        MechanismKind::Dvfs | MechanismKind::Dfs => &[MechanismKind::None],
        MechanismKind::None => &[],
    };
    let simpler = simpler.to_vec();
    with_knob_shrinks(case, out, simpler)
}

fn with_knob_shrinks(
    case: &CaseSpec,
    mut out: Vec<CaseSpec>,
    mechs: Vec<MechanismKind>,
) -> Vec<CaseSpec> {
    for m in mechs {
        out.push(CaseSpec {
            mechanism: m,
            ..case.clone()
        });
    }
    // PTB hardware knobs back to defaults.
    if case.wire_bits != 4 {
        out.push(CaseSpec {
            wire_bits: 4,
            ..case.clone()
        });
    }
    if case.latency_override.is_some() {
        out.push(CaseSpec {
            latency_override: None,
            ..case.clone()
        });
    }
    if case.cluster_size.is_some() {
        out.push(CaseSpec {
            cluster_size: None,
            ..case.clone()
        });
    }
    // Budget toward the paper's 0.5.
    if (case.budget_frac - 0.5).abs() > 0.05 {
        out.push(CaseSpec {
            budget_frac: 0.5,
            ..case.clone()
        });
    }
    if case.seed != 0 {
        out.push(CaseSpec {
            seed: 0,
            ..case.clone()
        });
    }
    out
}

/// Greedily shrink `case` while `fails` keeps returning `true`.
/// `fails(case)` must be `true` on entry; the result is a (locally)
/// minimal case that still fails. `max_steps` bounds total predicate
/// evaluations (each one is a simulation).
pub fn shrink(
    case: &CaseSpec,
    max_steps: usize,
    mut fails: impl FnMut(&CaseSpec) -> bool,
) -> CaseSpec {
    let mut best = case.clone();
    let mut steps = 0;
    'outer: loop {
        for cand in candidates(&best) {
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if fails(&cand) {
                best = cand;
                continue 'outer;
            }
        }
        break;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::arbitrary_case;
    use proptest::TestRng;

    /// Shrinking against an always-failing predicate must terminate at
    /// a fully minimal case.
    #[test]
    fn shrink_reaches_fixpoint() {
        let mut rng = TestRng::new(9);
        for _ in 0..50 {
            let case = arbitrary_case(&mut rng);
            let min = shrink(&case, 10_000, |_| true);
            assert_eq!(min.wire_bits, 4);
            assert_eq!(min.latency_override, None);
            assert_eq!(min.cluster_size, None);
            assert_eq!(min.seed, 0);
            assert_eq!(min.n_cores, 1);
            assert!(matches!(min.mechanism, MechanismKind::None));
            match min.workload {
                WorkloadDesc::Synth { work, .. } => assert_eq!(work, 50),
                WorkloadDesc::Bench(_) => panic!("benchmark survived shrinking"),
            }
        }
    }

    /// A predicate keyed to a specific property is preserved: the shrunk
    /// case still satisfies it.
    #[test]
    fn shrink_preserves_failure_predicate() {
        let mut rng = TestRng::new(13);
        for _ in 0..50 {
            let case = arbitrary_case(&mut rng);
            if case.n_cores < 4 {
                continue;
            }
            let min = shrink(&case, 10_000, |c| c.n_cores >= 2);
            assert_eq!(min.n_cores, 2, "shrinks cores to the predicate floor");
        }
    }

    /// Shrinking is deterministic.
    #[test]
    fn shrink_is_deterministic() {
        let mut rng = TestRng::new(21);
        let case = arbitrary_case(&mut rng);
        let a = shrink(&case, 10_000, |c| c.n_cores >= 1);
        let b = shrink(&case, 10_000, |c| c.n_cores >= 1);
        assert_eq!(a, b);
    }
}
