//! `ptb-serve`: simulation-as-a-service over the `ptb-farm` store.
//!
//! A hand-rolled HTTP/1.1 batch API (std-only — no async runtime in the
//! vendor set, and none needed) in front of a [`Farm`]: clients POST
//! batches of `SimConfig`s, the server deduplicates them against the
//! content-addressed result store and against jobs already in flight,
//! runs the misses on the farm's work-stealing executor (inheriting its
//! journal/retry/watchdog/quarantine contract unchanged), and serves
//! the stored `RunReport`s back byte-stable.
//!
//! Layering:
//!
//! * [`http`] — wire plumbing: parsing, bounded worker pool, one-shot
//!   client, streaming bodies;
//! * [`state`] — job registry, submission queue, scheduler thread,
//!   lease reaper, `serve.*` metrics;
//! * [`fleet`] — the lease table behind the `/v1/work/*` endpoints
//!   that remote `ptb_worker` processes pull jobs through;
//! * [`net`] — the seeded chaos transport fleet workers are tested
//!   under;
//! * [`api`] — routes and the JSON protocol.
//!
//! [`start`] assembles them into a running [`ServeHandle`]; the
//! `ptb_serve` binary is a thin flag-parsing shell around it,
//! `ptb_worker` is the pull-based fleet worker, and `ptb_loadgen`
//! drives the server under load. See `DESIGN.md` §13–§14.

pub mod api;
pub mod fleet;
pub mod http;
pub mod net;
pub mod state;

pub use fleet::{CompleteOutcome, FailOutcome, FleetRefusal, FleetState, LeaseRec, WorkerRec};
pub use http::{http_call, Body, Handler, Request, Response, Server, ServerConfig};
pub use net::{ChaosNet, NetChaosConfig, RealNet, Transport};
pub use state::{
    Disposition, JobRecord, JobState, RequestPhase, ServeConfig, ServeMetrics, ServeState,
};

use ptb_farm::Farm;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running service: HTTP server + scheduler + lease reaper over
/// shared state.
pub struct ServeHandle {
    server: Server,
    scheduler: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    state: Arc<ServeState>,
}

impl ServeHandle {
    /// The bound address (resolves an ephemeral port request).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// The shared state (for in-process tests and tools).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stop the HTTP server, then the scheduler and reaper, and join
    /// all of them.
    pub fn shutdown(mut self) {
        self.server.shutdown();
        self.state.stop();
        if let Some(h) = self.scheduler.take() {
            h.join().ok();
        }
        if let Some(h) = self.reaper.take() {
            h.join().ok();
        }
    }
}

/// Start serving `farm` on `addr` (`"127.0.0.1:0"` picks a free port).
pub fn start(
    farm: Arc<Farm>,
    addr: &str,
    serve_cfg: ServeConfig,
    server_cfg: ServerConfig,
) -> io::Result<ServeHandle> {
    let state = Arc::new(ServeState::new(farm, serve_cfg));
    let scheduler = state::spawn_scheduler(state.clone());
    let reaper = state::spawn_reaper(state.clone());
    let rejected = Arc::new(AtomicU64::new(0));
    let handler: Handler = {
        let state = state.clone();
        let rejected = rejected.clone();
        Arc::new(move |req: &Request| api::handle(&state, req, rejected.load(Ordering::Relaxed)))
    };
    let server = Server::spawn_with(addr, server_cfg, handler, rejected)?;
    Ok(ServeHandle {
        server,
        scheduler: Some(scheduler),
        reaper: Some(reaper),
        state,
    })
}
