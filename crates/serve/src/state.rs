//! Shared server state: the job registry, the submission queue, the
//! scheduler thread that drains it onto the farm executor, and the
//! `serve.*` metrics.
//!
//! ## Dedup contract
//!
//! A submitted job is identified by its farm content key. On submit:
//!
//! * key already `Done` (or its report is in the store) → answered as a
//!   cache hit, nothing runs;
//! * key `Queued`/`Running` → deduplicated against the in-flight job;
//! * key previously `Failed` → re-enqueued (a deliberate retry);
//! * otherwise → enqueued for the scheduler.
//!
//! The scheduler feeds batches to [`Farm::try_run_batch`], so every
//! miss inherits the farm's full execution contract unchanged: journal
//! record before first simulation, work-stealing execution,
//! `catch_unwind` isolation, bounded retries with backoff, the per-job
//! watchdog, and quarantine of persistent failures to `failed.jsonl`.
//! A faulted job marks only its own key `failed`; the server keeps
//! serving.

use ptb_farm::{ExecConfig, Farm, FarmJob, StoreLookup};
use ptb_obs::CounterRegistry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads of the simulation executor (independent of the
    /// HTTP pool).
    pub sim_threads: usize,
    /// Per-job wall-clock watchdog handed to the executor.
    pub job_timeout: Option<Duration>,
    /// Max jobs drained into one executor batch.
    pub batch_max: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sim_threads: 4,
            job_timeout: Some(Duration::from_secs(300)),
            batch_max: 64,
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for the scheduler.
    Queued,
    /// Handed to the executor.
    Running,
    /// Report available in the store.
    Done,
    /// Failed (retries exhausted, panic, or timeout); quarantined.
    Failed(String),
}

impl JobState {
    /// Wire name of this state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Registry record of one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The replayable job.
    pub job: FarmJob,
    /// Current lifecycle state.
    pub state: JobState,
}

/// How a submit resolved one job (also its wire name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served from the store without running.
    Cached,
    /// Identical job already queued or running.
    InFlight,
    /// Scheduled to run.
    Enqueued,
    /// Previously failed; scheduled to run again.
    Requeued,
}

impl Disposition {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Disposition::Cached => "cached",
            Disposition::InFlight => "in-flight",
            Disposition::Enqueued => "enqueued",
            Disposition::Requeued => "requeued",
        }
    }
}

/// Latency reservoir: keeps the most recent `cap` samples (plain ring
/// overwrite) so percentile reads stay O(cap) at any traffic volume.
#[derive(Debug)]
pub struct LatencyRing {
    buf: Vec<f64>,
    cap: usize,
    count: u64,
}

impl LatencyRing {
    fn new(cap: usize) -> Self {
        LatencyRing {
            buf: Vec::new(),
            cap,
            count: 0,
        }
    }

    fn push(&mut self, ms: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(ms);
        } else {
            let at = (self.count % self.cap as u64) as usize;
            self.buf[at] = ms;
        }
        self.count += 1;
    }

    /// `(count, p50, p95, p99)` over the retained window.
    pub fn summary(&self) -> (u64, f64, f64, f64) {
        if self.buf.is_empty() {
            return (0, 0.0, 0.0, 0.0);
        }
        let mut xs = self.buf.clone();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        (
            self.count,
            ptb_metrics::percentile(&xs, 50.0),
            ptb_metrics::percentile(&xs, 95.0),
            ptb_metrics::percentile(&xs, 99.0),
        )
    }
}

/// Request phases whose wall-clock latency the server tracks (the
/// serving-path analogue of the simulator's `ptb_obs::Phase`
/// attribution; exported as `serve.latency.*` percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPhase {
    /// `POST /v1/batches` (parse + dedup + enqueue).
    Submit,
    /// Job/batch status polls.
    Poll,
    /// Report fetches (`GET /v1/reports/*`) — the cached-lookup path.
    Report,
    /// Everything else (status, metrics, health).
    Other,
    /// One executor dispatch in the scheduler (covers simulation).
    Execute,
}

impl RequestPhase {
    const ALL: [RequestPhase; 5] = [
        RequestPhase::Submit,
        RequestPhase::Poll,
        RequestPhase::Report,
        RequestPhase::Other,
        RequestPhase::Execute,
    ];

    fn name(self) -> &'static str {
        match self {
            RequestPhase::Submit => "submit",
            RequestPhase::Poll => "poll",
            RequestPhase::Report => "report",
            RequestPhase::Other => "other",
            RequestPhase::Execute => "execute",
        }
    }

    fn index(self) -> usize {
        match self {
            RequestPhase::Submit => 0,
            RequestPhase::Poll => 1,
            RequestPhase::Report => 2,
            RequestPhase::Other => 3,
            RequestPhase::Execute => 4,
        }
    }
}

/// `serve.*` counters and latency reservoirs.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Jobs received across all submits.
    pub submitted: AtomicU64,
    /// Jobs answered from the store (or already `Done`).
    pub hits: AtomicU64,
    /// Jobs identical to one queued/running.
    pub deduped: AtomicU64,
    /// Jobs newly enqueued.
    pub enqueued: AtomicU64,
    /// Failed jobs re-enqueued by a repeat submit.
    pub requeued: AtomicU64,
    /// Jobs completed by the executor.
    pub completed: AtomicU64,
    /// Jobs that exhausted the farm's failure handling.
    pub failed: AtomicU64,
    /// HTTP requests handled (parsed well enough to route).
    pub http_requests: AtomicU64,
    /// Responses with status ≥ 400.
    pub http_errors: AtomicU64,
    latency: [Mutex<LatencyRing>; 5],
}

/// Retained samples per latency ring (per phase).
const LATENCY_WINDOW: usize = 65_536;

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            submitted: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            latency: std::array::from_fn(|_| Mutex::new(LatencyRing::new(LATENCY_WINDOW))),
        }
    }
}

impl ServeMetrics {
    /// Record `ms` spent in `phase`.
    pub fn observe(&self, phase: RequestPhase, ms: f64) {
        self.latency[phase.index()]
            .lock()
            .expect("latency lock")
            .push(ms);
    }

    /// `(count, p50, p95, p99)` for `phase`, in milliseconds.
    pub fn phase_summary(&self, phase: RequestPhase) -> (u64, f64, f64, f64) {
        self.latency[phase.index()]
            .lock()
            .expect("latency lock")
            .summary()
    }
}

/// Everything the HTTP handlers and the scheduler share.
pub struct ServeState {
    farm: Arc<Farm>,
    cfg: ServeConfig,
    jobs: Mutex<HashMap<String, JobRecord>>,
    batches: Mutex<HashMap<String, Vec<String>>>,
    batch_seq: AtomicU64,
    queue: Mutex<VecDeque<String>>,
    wake: Condvar,
    stop: AtomicBool,
    started: Instant,
    /// The `serve.*` metrics.
    pub metrics: ServeMetrics,
}

impl ServeState {
    /// Fresh state over an open farm.
    pub fn new(farm: Arc<Farm>, cfg: ServeConfig) -> Self {
        ServeState {
            farm,
            cfg,
            jobs: Mutex::new(HashMap::new()),
            batches: Mutex::new(HashMap::new()),
            batch_seq: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            metrics: ServeMetrics::default(),
        }
    }

    /// The farm being served.
    pub fn farm(&self) -> &Farm {
        &self.farm
    }

    /// Seconds since the state was created.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Jobs waiting for the scheduler.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").len()
    }

    /// Register a batch of jobs, deduplicating by content key. Returns
    /// the batch id and one `(key, state, disposition)` per job, in
    /// submission order.
    pub fn submit(
        &self,
        submitted: Vec<FarmJob>,
    ) -> (String, Vec<(String, JobState, Disposition)>) {
        let keys: Vec<String> = submitted.iter().map(FarmJob::key).collect();
        // Probe the store for keys not yet in the registry WITHOUT
        // holding the jobs lock — a validated store lookup is disk I/O,
        // and serializing it behind the registry lock would stall every
        // concurrent submit and poll. The registry only grows, so a key
        // absent here can at worst be inserted by a racing submitter
        // before we re-take the lock; the Occupied arm handles that.
        let probed: HashMap<&str, bool> = {
            let jobs = self.jobs.lock().expect("jobs lock");
            let need: Vec<usize> = (0..submitted.len())
                .filter(|&i| !jobs.contains_key(&keys[i]))
                .collect();
            drop(jobs);
            need.into_iter()
                .map(|i| {
                    // A hit means the job is already answered; corrupt
                    // entries are left for the farm's own lookup (which
                    // removes and re-runs them).
                    let hit = matches!(
                        self.farm.store().get(&keys[i], &submitted[i]),
                        StoreLookup::Hit(_)
                    );
                    (keys[i].as_str(), hit)
                })
                .collect()
        };
        let mut resolved = Vec::with_capacity(submitted.len());
        let mut to_enqueue = Vec::new();
        {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            for (job, key) in submitted.iter().zip(&keys) {
                self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                let (state, disposition) = match jobs.get_mut(key) {
                    Some(rec) => match rec.state {
                        JobState::Done => {
                            self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                            (JobState::Done, Disposition::Cached)
                        }
                        JobState::Queued | JobState::Running => {
                            self.metrics.deduped.fetch_add(1, Ordering::Relaxed);
                            (rec.state.clone(), Disposition::InFlight)
                        }
                        JobState::Failed(_) => {
                            rec.state = JobState::Queued;
                            self.metrics.requeued.fetch_add(1, Ordering::Relaxed);
                            to_enqueue.push(key.clone());
                            (JobState::Queued, Disposition::Requeued)
                        }
                    },
                    None => {
                        if probed.get(key.as_str()).copied().unwrap_or(false) {
                            self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                            jobs.insert(
                                key.clone(),
                                JobRecord {
                                    job: job.clone(),
                                    state: JobState::Done,
                                },
                            );
                            (JobState::Done, Disposition::Cached)
                        } else {
                            self.metrics.enqueued.fetch_add(1, Ordering::Relaxed);
                            jobs.insert(
                                key.clone(),
                                JobRecord {
                                    job: job.clone(),
                                    state: JobState::Queued,
                                },
                            );
                            to_enqueue.push(key.clone());
                            (JobState::Queued, Disposition::Enqueued)
                        }
                    }
                };
                resolved.push((key.clone(), state, disposition));
            }
        }
        if !to_enqueue.is_empty() {
            let mut queue = self.queue.lock().expect("queue lock");
            queue.extend(to_enqueue);
            drop(queue);
            self.wake.notify_all();
        }
        let id = format!("b{}", self.batch_seq.fetch_add(1, Ordering::Relaxed) + 1);
        self.batches.lock().expect("batches lock").insert(
            id.clone(),
            resolved.iter().map(|(k, _, _)| k.clone()).collect(),
        );
        (id, resolved)
    }

    /// Current record of one job, by key.
    pub fn job(&self, key: &str) -> Option<JobRecord> {
        self.jobs.lock().expect("jobs lock").get(key).cloned()
    }

    /// The keys of one batch plus each one's current record, in
    /// submission order. `None` for an unknown batch id.
    pub fn batch(&self, id: &str) -> Option<Vec<(String, Option<JobRecord>)>> {
        let keys = self
            .batches
            .lock()
            .expect("batches lock")
            .get(id)
            .cloned()?;
        let jobs = self.jobs.lock().expect("jobs lock");
        Some(
            keys.into_iter()
                .map(|k| {
                    let rec = jobs.get(&k).cloned();
                    (k, rec)
                })
                .collect(),
        )
    }

    /// Totals of the job registry by state:
    /// `(queued, running, done, failed)`.
    pub fn job_totals(&self) -> (u64, u64, u64, u64) {
        let jobs = self.jobs.lock().expect("jobs lock");
        let mut t = (0, 0, 0, 0);
        for rec in jobs.values() {
            match rec.state {
                JobState::Queued => t.0 += 1,
                JobState::Running => t.1 += 1,
                JobState::Done => t.2 += 1,
                JobState::Failed(_) => t.3 += 1,
            }
        }
        t
    }

    /// All counters of the server as a `ptb-obs` registry: the
    /// `serve.*` namespace (traffic, outcomes, latency percentiles),
    /// merged with the farm's own `farm.*` counters (plus
    /// `farm.chaos.*` under fault injection).
    pub fn counters(&self, rejected: u64) -> CounterRegistry {
        let mut c = CounterRegistry::new();
        let m = &self.metrics;
        c.set(
            "serve.submitted",
            m.submitted.load(Ordering::Relaxed) as f64,
        );
        c.set("serve.hits", m.hits.load(Ordering::Relaxed) as f64);
        c.set("serve.deduped", m.deduped.load(Ordering::Relaxed) as f64);
        c.set("serve.enqueued", m.enqueued.load(Ordering::Relaxed) as f64);
        c.set("serve.requeued", m.requeued.load(Ordering::Relaxed) as f64);
        c.set(
            "serve.completed",
            m.completed.load(Ordering::Relaxed) as f64,
        );
        c.set("serve.failed", m.failed.load(Ordering::Relaxed) as f64);
        c.set(
            "serve.http.requests",
            m.http_requests.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "serve.http.errors",
            m.http_errors.load(Ordering::Relaxed) as f64,
        );
        c.set("serve.http.rejected", rejected as f64);
        c.set("serve.queue_depth", self.queue_depth() as f64);
        c.set("serve.uptime_secs", self.uptime_secs());
        for phase in RequestPhase::ALL {
            let (count, p50, p95, p99) = m.phase_summary(phase);
            let name = phase.name();
            c.set(&format!("serve.latency.{name}.count"), count as f64);
            if count > 0 {
                c.set(&format!("serve.latency.{name}.p50_ms"), p50);
                c.set(&format!("serve.latency.{name}.p95_ms"), p95);
                c.set(&format!("serve.latency.{name}.p99_ms"), p99);
            }
        }
        c.merge(&self.farm.counters());
        c
    }

    /// Ask the scheduler to exit once the queue is drained of what it
    /// has already taken.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }
}

/// Start the scheduler thread: drains the submission queue in batches
/// of at most `batch_max` onto [`Farm::try_run_batch`], updating job
/// states and quarantining failures as they resolve.
pub fn spawn_scheduler(state: Arc<ServeState>) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        let keys: Vec<String> = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if !queue.is_empty() {
                    break;
                }
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = state.wake.wait(queue).expect("queue wait");
            }
            let take = queue.len().min(state.cfg.batch_max.max(1));
            queue.drain(..take).collect()
        };
        let jobs: Vec<FarmJob> = {
            let mut registry = state.jobs.lock().expect("jobs lock");
            keys.iter()
                .map(|k| {
                    let rec = registry.get_mut(k).expect("queued job is registered");
                    rec.state = JobState::Running;
                    rec.job.clone()
                })
                .collect()
        };
        let exec = ExecConfig {
            watchdog: state.cfg.job_timeout,
            ..ExecConfig::new(state.cfg.sim_threads)
        };
        let t0 = Instant::now();
        let outcomes = state.farm.try_run_batch(&jobs, &exec);
        state
            .metrics
            .observe(RequestPhase::Execute, t0.elapsed().as_secs_f64() * 1e3);
        let mut registry = state.jobs.lock().expect("jobs lock");
        for ((key, job), outcome) in keys.iter().zip(&jobs).zip(outcomes) {
            let rec = registry.get_mut(key).expect("running job is registered");
            match outcome {
                Ok(_) => {
                    state.metrics.completed.fetch_add(1, Ordering::Relaxed);
                    rec.state = JobState::Done;
                }
                Err(e) => {
                    state.metrics.failed.fetch_add(1, Ordering::Relaxed);
                    // Quarantine keeps the full replayable config; the
                    // server itself stays up.
                    if let Err(qe) = state.farm.quarantine_job(job, &e) {
                        eprintln!("warning: cannot quarantine {key}: {qe}");
                    }
                    rec.state = JobState::Failed(e.to_string());
                }
            }
        }
    })
}
