//! Shared server state: the job registry, the submission queue, the
//! scheduler thread that drains it onto the farm executor, and the
//! `serve.*` metrics.
//!
//! ## Dedup contract
//!
//! A submitted job is identified by its farm content key. On submit:
//!
//! * key already `Done` (or its report is in the store) → answered as a
//!   cache hit, nothing runs;
//! * key `Queued`/`Running` → deduplicated against the in-flight job;
//! * key previously `Failed` → re-enqueued (a deliberate retry);
//! * otherwise → enqueued for the scheduler.
//!
//! The scheduler feeds batches to [`Farm::try_run_batch`], so every
//! miss inherits the farm's full execution contract unchanged: journal
//! record before first simulation, work-stealing execution,
//! `catch_unwind` isolation, bounded retries with backoff, the per-job
//! watchdog, and quarantine of persistent failures to `failed.jsonl`.
//! A faulted job marks only its own key `failed`; the server keeps
//! serving.

use ptb_farm::{ExecConfig, Farm, FarmJob, StoreLookup};
use ptb_obs::CounterRegistry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler, lease, and registry sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads of the simulation executor (independent of the
    /// HTTP pool).
    pub sim_threads: usize,
    /// Per-job wall-clock watchdog handed to the executor.
    pub job_timeout: Option<Duration>,
    /// Max jobs drained into one executor batch.
    pub batch_max: usize,
    /// Whether the local scheduler simulates at all (disable to run a
    /// pure coordinator that only hands work to fleet workers).
    pub local_execution: bool,
    /// How recently a fleet worker must have been heard from for the
    /// local scheduler to hold back and let the fleet drain the queue.
    /// With no worker contact inside this window the server degrades
    /// transparently to local-only execution.
    pub worker_grace: Duration,
    /// Lease TTL granted when a claim does not request one.
    pub lease_default_ttl: Duration,
    /// Upper bound on the TTL a claim or heartbeat may request.
    pub lease_max_ttl: Duration,
    /// Period of the lease-reaper thread (also drives batch eviction).
    pub reaper_tick: Duration,
    /// Claims a single job may consume across lease expiries before it
    /// is quarantined as poison.
    pub max_claims: u32,
    /// Remote transient-failure retries before a job is quarantined.
    pub remote_retry_max: u32,
    /// How long a settled batch stays in the registry before eviction.
    pub batch_ttl: Duration,
    /// Max concurrent `/v1/metrics/stream` subscribers.
    pub max_streams: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sim_threads: 4,
            job_timeout: Some(Duration::from_secs(300)),
            batch_max: 64,
            local_execution: true,
            worker_grace: Duration::from_secs(3),
            lease_default_ttl: Duration::from_secs(10),
            lease_max_ttl: Duration::from_secs(120),
            reaper_tick: Duration::from_millis(250),
            max_claims: 5,
            remote_retry_max: 3,
            batch_ttl: Duration::from_secs(3600),
            max_streams: 4,
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for the scheduler or a fleet claim.
    Queued,
    /// Leased to the named fleet worker.
    Leased(String),
    /// Handed to the local executor.
    Running,
    /// Report available in the store.
    Done,
    /// Failed (retries exhausted, panic, or timeout); quarantined.
    Failed(String),
}

impl JobState {
    /// Wire name of this state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Leased(_) => "leased",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Registry record of one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The replayable job.
    pub job: FarmJob,
    /// Current lifecycle state.
    pub state: JobState,
    /// Fleet claims this key has consumed (each lease expiry returns
    /// the job to the queue; past `max_claims` it is quarantined).
    pub claims: u32,
    /// Remote transient failures reported for this key.
    pub remote_attempts: u32,
    /// Who produced the stored report: `Some("local")` or a fleet
    /// worker's name. `None` until the job settles (or when it was
    /// answered straight from a pre-existing store entry).
    pub executed_by: Option<String>,
}

impl JobRecord {
    /// Fresh record in `state` with zeroed fleet bookkeeping.
    pub fn new(job: FarmJob, state: JobState) -> JobRecord {
        JobRecord {
            job,
            state,
            claims: 0,
            remote_attempts: 0,
            executed_by: None,
        }
    }
}

/// Registry record of one batch: its job keys plus, once every job has
/// settled, when that happened (the eviction clock).
#[derive(Debug, Clone)]
pub(crate) struct BatchRec {
    pub(crate) keys: Vec<String>,
    pub(crate) settled_at: Option<Instant>,
}

/// How a submit resolved one job (also its wire name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served from the store without running.
    Cached,
    /// Identical job already queued or running.
    InFlight,
    /// Scheduled to run.
    Enqueued,
    /// Previously failed; scheduled to run again.
    Requeued,
}

impl Disposition {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Disposition::Cached => "cached",
            Disposition::InFlight => "in-flight",
            Disposition::Enqueued => "enqueued",
            Disposition::Requeued => "requeued",
        }
    }
}

/// Latency reservoir: keeps the most recent `cap` samples (plain ring
/// overwrite) so percentile reads stay O(cap) at any traffic volume.
#[derive(Debug)]
pub struct LatencyRing {
    buf: Vec<f64>,
    cap: usize,
    count: u64,
}

impl LatencyRing {
    fn new(cap: usize) -> Self {
        LatencyRing {
            buf: Vec::new(),
            cap,
            count: 0,
        }
    }

    fn push(&mut self, ms: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(ms);
        } else {
            let at = (self.count % self.cap as u64) as usize;
            self.buf[at] = ms;
        }
        self.count += 1;
    }

    /// `(count, p50, p95, p99)` over the retained window.
    pub fn summary(&self) -> (u64, f64, f64, f64) {
        if self.buf.is_empty() {
            return (0, 0.0, 0.0, 0.0);
        }
        let mut xs = self.buf.clone();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        (
            self.count,
            ptb_metrics::percentile(&xs, 50.0),
            ptb_metrics::percentile(&xs, 95.0),
            ptb_metrics::percentile(&xs, 99.0),
        )
    }
}

/// Request phases whose wall-clock latency the server tracks (the
/// serving-path analogue of the simulator's `ptb_obs::Phase`
/// attribution; exported as `serve.latency.*` percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPhase {
    /// `POST /v1/batches` (parse + dedup + enqueue).
    Submit,
    /// Job/batch status polls.
    Poll,
    /// Report fetches (`GET /v1/reports/*`) — the cached-lookup path.
    Report,
    /// Everything else (status, metrics, health).
    Other,
    /// One executor dispatch in the scheduler (covers simulation).
    Execute,
    /// Fleet work endpoints (`/v1/work/*`: claim, heartbeat,
    /// complete, fail).
    Work,
}

impl RequestPhase {
    const ALL: [RequestPhase; 6] = [
        RequestPhase::Submit,
        RequestPhase::Poll,
        RequestPhase::Report,
        RequestPhase::Other,
        RequestPhase::Execute,
        RequestPhase::Work,
    ];

    fn name(self) -> &'static str {
        match self {
            RequestPhase::Submit => "submit",
            RequestPhase::Poll => "poll",
            RequestPhase::Report => "report",
            RequestPhase::Other => "other",
            RequestPhase::Execute => "execute",
            RequestPhase::Work => "work",
        }
    }

    fn index(self) -> usize {
        match self {
            RequestPhase::Submit => 0,
            RequestPhase::Poll => 1,
            RequestPhase::Report => 2,
            RequestPhase::Other => 3,
            RequestPhase::Execute => 4,
            RequestPhase::Work => 5,
        }
    }
}

/// `serve.*` counters and latency reservoirs.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Jobs received across all submits.
    pub submitted: AtomicU64,
    /// Jobs answered from the store (or already `Done`).
    pub hits: AtomicU64,
    /// Jobs identical to one queued/running.
    pub deduped: AtomicU64,
    /// Jobs newly enqueued.
    pub enqueued: AtomicU64,
    /// Failed jobs re-enqueued by a repeat submit.
    pub requeued: AtomicU64,
    /// Jobs completed by the executor.
    pub completed: AtomicU64,
    /// Jobs that exhausted the farm's failure handling.
    pub failed: AtomicU64,
    /// HTTP requests handled (parsed well enough to route).
    pub http_requests: AtomicU64,
    /// Responses with status ≥ 400.
    pub http_errors: AtomicU64,
    /// Settled batches evicted from the registry by the TTL sweep.
    pub batches_evicted: AtomicU64,
    /// Live `/v1/metrics/stream` subscribers (gauge).
    pub streams_active: AtomicU64,
    /// Stream subscriptions refused because the cap was reached.
    pub streams_rejected: AtomicU64,
    latency: [Mutex<LatencyRing>; 6],
}

/// Retained samples per latency ring (per phase).
const LATENCY_WINDOW: usize = 65_536;

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            submitted: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            batches_evicted: AtomicU64::new(0),
            streams_active: AtomicU64::new(0),
            streams_rejected: AtomicU64::new(0),
            latency: std::array::from_fn(|_| Mutex::new(LatencyRing::new(LATENCY_WINDOW))),
        }
    }
}

impl ServeMetrics {
    /// Record `ms` spent in `phase`.
    pub fn observe(&self, phase: RequestPhase, ms: f64) {
        self.latency[phase.index()]
            .lock()
            .expect("latency lock")
            .push(ms);
    }

    /// `(count, p50, p95, p99)` for `phase`, in milliseconds.
    pub fn phase_summary(&self, phase: RequestPhase) -> (u64, f64, f64, f64) {
        self.latency[phase.index()]
            .lock()
            .expect("latency lock")
            .summary()
    }
}

/// Everything the HTTP handlers, the scheduler, the lease reaper, and
/// the fleet endpoints share.
pub struct ServeState {
    pub(crate) farm: Arc<Farm>,
    pub(crate) cfg: ServeConfig,
    pub(crate) jobs: Mutex<HashMap<String, JobRecord>>,
    pub(crate) batches: Mutex<HashMap<String, BatchRec>>,
    batch_seq: AtomicU64,
    pub(crate) queue: Mutex<VecDeque<String>>,
    pub(crate) wake: Condvar,
    pub(crate) stop: AtomicBool,
    started: Instant,
    /// False once the scheduler thread has exited (panic included) —
    /// flips `/healthz` to 503.
    pub(crate) scheduler_alive: AtomicBool,
    /// False once the lease-reaper thread has exited.
    pub(crate) reaper_alive: AtomicBool,
    /// The `serve.*` metrics.
    pub metrics: ServeMetrics,
    /// Lease table, worker registry, and `fleet.*` metrics.
    pub fleet: crate::fleet::FleetState,
}

impl ServeState {
    /// Fresh state over an open farm.
    pub fn new(farm: Arc<Farm>, cfg: ServeConfig) -> Self {
        ServeState {
            farm,
            cfg,
            jobs: Mutex::new(HashMap::new()),
            batches: Mutex::new(HashMap::new()),
            batch_seq: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            // Liveness flags start true: a probe racing thread startup
            // should not report a dying server.
            scheduler_alive: AtomicBool::new(true),
            reaper_alive: AtomicBool::new(true),
            metrics: ServeMetrics::default(),
            fleet: crate::fleet::FleetState::default(),
        }
    }

    /// The farm being served.
    pub fn farm(&self) -> &Farm {
        &self.farm
    }

    /// The serve configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Liveness verdict for `/healthz`: `Ok` while the scheduler and
    /// reaper threads are running and the journal accepts appends;
    /// otherwise the reason the server should be restarted.
    pub fn liveness(&self) -> Result<(), String> {
        if !self.scheduler_alive.load(Ordering::SeqCst) {
            return Err("scheduler thread has exited".into());
        }
        if !self.reaper_alive.load(Ordering::SeqCst) {
            return Err("lease reaper thread has exited".into());
        }
        if !self.farm.journal_writable() {
            return Err("journal is not writable".into());
        }
        Ok(())
    }

    /// Seconds since the state was created.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Jobs waiting for the scheduler.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").len()
    }

    /// Register a batch of jobs, deduplicating by content key. Returns
    /// the batch id and one `(key, state, disposition)` per job, in
    /// submission order.
    pub fn submit(
        &self,
        submitted: Vec<FarmJob>,
    ) -> (String, Vec<(String, JobState, Disposition)>) {
        let keys: Vec<String> = submitted.iter().map(FarmJob::key).collect();
        // Probe the store for keys not yet in the registry WITHOUT
        // holding the jobs lock — a validated store lookup is disk I/O,
        // and serializing it behind the registry lock would stall every
        // concurrent submit and poll. The registry only grows, so a key
        // absent here can at worst be inserted by a racing submitter
        // before we re-take the lock; the Occupied arm handles that.
        let probed: HashMap<&str, bool> = {
            let jobs = self.jobs.lock().expect("jobs lock");
            let need: Vec<usize> = (0..submitted.len())
                .filter(|&i| !jobs.contains_key(&keys[i]))
                .collect();
            drop(jobs);
            need.into_iter()
                .map(|i| {
                    // A hit means the job is already answered; corrupt
                    // entries are left for the farm's own lookup (which
                    // removes and re-runs them).
                    let hit = matches!(
                        self.farm.store().get(&keys[i], &submitted[i]),
                        StoreLookup::Hit(_)
                    );
                    (keys[i].as_str(), hit)
                })
                .collect()
        };
        let mut resolved = Vec::with_capacity(submitted.len());
        let mut to_enqueue = Vec::new();
        {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            for (job, key) in submitted.iter().zip(&keys) {
                self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                let (state, disposition) = match jobs.get_mut(key) {
                    Some(rec) => match rec.state {
                        JobState::Done => {
                            self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                            (JobState::Done, Disposition::Cached)
                        }
                        JobState::Queued | JobState::Leased(_) | JobState::Running => {
                            self.metrics.deduped.fetch_add(1, Ordering::Relaxed);
                            (rec.state.clone(), Disposition::InFlight)
                        }
                        JobState::Failed(_) => {
                            rec.state = JobState::Queued;
                            self.metrics.requeued.fetch_add(1, Ordering::Relaxed);
                            to_enqueue.push(key.clone());
                            (JobState::Queued, Disposition::Requeued)
                        }
                    },
                    None => {
                        if probed.get(key.as_str()).copied().unwrap_or(false) {
                            self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                            jobs.insert(key.clone(), JobRecord::new(job.clone(), JobState::Done));
                            (JobState::Done, Disposition::Cached)
                        } else {
                            self.metrics.enqueued.fetch_add(1, Ordering::Relaxed);
                            jobs.insert(key.clone(), JobRecord::new(job.clone(), JobState::Queued));
                            to_enqueue.push(key.clone());
                            (JobState::Queued, Disposition::Enqueued)
                        }
                    }
                };
                resolved.push((key.clone(), state, disposition));
            }
        }
        if !to_enqueue.is_empty() {
            let mut queue = self.queue.lock().expect("queue lock");
            queue.extend(to_enqueue);
            drop(queue);
            self.wake.notify_all();
        }
        let id = format!("b{}", self.batch_seq.fetch_add(1, Ordering::Relaxed) + 1);
        self.batches.lock().expect("batches lock").insert(
            id.clone(),
            BatchRec {
                keys: resolved.iter().map(|(k, _, _)| k.clone()).collect(),
                settled_at: None,
            },
        );
        (id, resolved)
    }

    /// Current record of one job, by key.
    pub fn job(&self, key: &str) -> Option<JobRecord> {
        self.jobs.lock().expect("jobs lock").get(key).cloned()
    }

    /// The keys of one batch plus each one's current record, in
    /// submission order. `None` for an unknown (or evicted) batch id.
    pub fn batch(&self, id: &str) -> Option<Vec<(String, Option<JobRecord>)>> {
        let keys = self
            .batches
            .lock()
            .expect("batches lock")
            .get(id)
            .map(|b| b.keys.clone())?;
        let jobs = self.jobs.lock().expect("jobs lock");
        Some(
            keys.into_iter()
                .map(|k| {
                    let rec = jobs.get(&k).cloned();
                    (k, rec)
                })
                .collect(),
        )
    }

    /// Batches still held in the registry.
    pub fn batch_count(&self) -> usize {
        self.batches.lock().expect("batches lock").len()
    }

    /// Totals of the job registry by state:
    /// `(queued, leased, running, done, failed)`.
    pub fn job_totals(&self) -> (u64, u64, u64, u64, u64) {
        let jobs = self.jobs.lock().expect("jobs lock");
        let mut t = (0, 0, 0, 0, 0);
        for rec in jobs.values() {
            match rec.state {
                JobState::Queued => t.0 += 1,
                JobState::Leased(_) => t.1 += 1,
                JobState::Running => t.2 += 1,
                JobState::Done => t.3 += 1,
                JobState::Failed(_) => t.4 += 1,
            }
        }
        t
    }

    /// Sweep the batch registry: stamp newly settled batches (every job
    /// `Done`/`Failed`) and evict those settled longer than `batch_ttl`
    /// ago. Returns how many were evicted. Called from the reaper tick;
    /// public so tests can drive it directly.
    pub fn sweep_batches(&self) -> usize {
        // Snapshot, judge, then stamp — three short critical sections,
        // never two locks held at once.
        let unsettled: Vec<(String, Vec<String>)> = {
            let batches = self.batches.lock().expect("batches lock");
            batches
                .iter()
                .filter(|(_, b)| b.settled_at.is_none())
                .map(|(id, b)| (id.clone(), b.keys.clone()))
                .collect()
        };
        let mut now_settled = Vec::new();
        if !unsettled.is_empty() {
            let jobs = self.jobs.lock().expect("jobs lock");
            for (id, keys) in unsettled {
                let all_settled = keys.iter().all(|k| {
                    matches!(
                        jobs.get(k).map(|r| &r.state),
                        Some(JobState::Done) | Some(JobState::Failed(_))
                    )
                });
                if all_settled {
                    now_settled.push(id);
                }
            }
        }
        let mut batches = self.batches.lock().expect("batches lock");
        let now = Instant::now();
        for id in now_settled {
            if let Some(b) = batches.get_mut(&id) {
                b.settled_at = Some(now);
            }
        }
        let before = batches.len();
        batches.retain(|_, b| match b.settled_at {
            Some(t) => now.duration_since(t) < self.cfg.batch_ttl,
            None => true,
        });
        let evicted = before - batches.len();
        if evicted > 0 {
            self.metrics
                .batches_evicted
                .fetch_add(evicted as u64, Ordering::Relaxed);
        }
        evicted
    }

    /// All counters of the server as a `ptb-obs` registry: the
    /// `serve.*` namespace (traffic, outcomes, latency percentiles),
    /// merged with the farm's own `farm.*` counters (plus
    /// `farm.chaos.*` under fault injection).
    pub fn counters(&self, rejected: u64) -> CounterRegistry {
        let mut c = CounterRegistry::new();
        let m = &self.metrics;
        c.set(
            "serve.submitted",
            m.submitted.load(Ordering::Relaxed) as f64,
        );
        c.set("serve.hits", m.hits.load(Ordering::Relaxed) as f64);
        c.set("serve.deduped", m.deduped.load(Ordering::Relaxed) as f64);
        c.set("serve.enqueued", m.enqueued.load(Ordering::Relaxed) as f64);
        c.set("serve.requeued", m.requeued.load(Ordering::Relaxed) as f64);
        c.set(
            "serve.completed",
            m.completed.load(Ordering::Relaxed) as f64,
        );
        c.set("serve.failed", m.failed.load(Ordering::Relaxed) as f64);
        c.set(
            "serve.http.requests",
            m.http_requests.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "serve.http.errors",
            m.http_errors.load(Ordering::Relaxed) as f64,
        );
        c.set("serve.http.rejected", rejected as f64);
        c.set("serve.queue_depth", self.queue_depth() as f64);
        c.set("serve.uptime_secs", self.uptime_secs());
        c.set("serve.batches.active", self.batch_count() as f64);
        c.set(
            "serve.batches.evicted",
            m.batches_evicted.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "serve.stream.active",
            m.streams_active.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "serve.stream.rejected",
            m.streams_rejected.load(Ordering::Relaxed) as f64,
        );
        self.fleet.fill_counters(&mut c);
        for phase in RequestPhase::ALL {
            let (count, p50, p95, p99) = m.phase_summary(phase);
            let name = phase.name();
            c.set(&format!("serve.latency.{name}.count"), count as f64);
            if count > 0 {
                c.set(&format!("serve.latency.{name}.p50_ms"), p50);
                c.set(&format!("serve.latency.{name}.p95_ms"), p95);
                c.set(&format!("serve.latency.{name}.p99_ms"), p99);
            }
        }
        c.merge(&self.farm.counters());
        c
    }

    /// Ask the scheduler to exit once the queue is drained of what it
    /// has already taken.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }
}

/// Flips an atomic to `false` when dropped — including during an
/// unwind, which is exactly how a panicking scheduler or reaper thread
/// reports itself dead to `/healthz`.
pub(crate) struct AliveGuard<'a>(pub(crate) &'a AtomicBool);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

/// Start the scheduler thread: drains the submission queue in batches
/// of at most `batch_max` onto [`Farm::try_run_batch`], updating job
/// states and quarantining failures as they resolve.
///
/// Fleet awareness: while at least one remote worker has been heard
/// from inside `worker_grace`, the local scheduler holds back and lets
/// the fleet drain the queue (one queue, one executor at a time per
/// job). With no live workers — the degraded mode, and the default —
/// it behaves exactly as before. During shutdown it drains whatever is
/// queued regardless, so `stop()` never strands work.
pub fn spawn_scheduler(state: Arc<ServeState>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let _alive = AliveGuard(&state.scheduler_alive);
        loop {
            let keys: Vec<String> = {
                let mut queue = state.queue.lock().expect("queue lock");
                loop {
                    let stopping = state.stop.load(Ordering::SeqCst);
                    if !queue.is_empty() && (stopping || state.local_may_run()) {
                        break;
                    }
                    if stopping {
                        return;
                    }
                    // Bounded wait: worker liveness can change without a
                    // queue notification (a worker going silent must
                    // eventually hand the queue back to local execution).
                    let (q, _) = state
                        .wake
                        .wait_timeout(queue, Duration::from_millis(200))
                        .expect("queue wait");
                    queue = q;
                }
                let take = queue.len().min(state.cfg.batch_max.max(1));
                queue.drain(..take).collect()
            };
            // Only keys still Queued belong to us: a fleet `complete`
            // that raced the drain has already settled its key.
            let (keys, jobs): (Vec<String>, Vec<FarmJob>) = {
                let mut registry = state.jobs.lock().expect("jobs lock");
                keys.into_iter()
                    .filter_map(|k| {
                        let rec = registry.get_mut(&k)?;
                        if rec.state != JobState::Queued {
                            return None;
                        }
                        rec.state = JobState::Running;
                        let job = rec.job.clone();
                        Some((k, job))
                    })
                    .unzip()
            };
            if keys.is_empty() {
                continue;
            }
            let exec = ExecConfig {
                watchdog: state.cfg.job_timeout,
                ..ExecConfig::new(state.cfg.sim_threads)
            };
            let t0 = Instant::now();
            let outcomes = state.farm.try_run_batch(&jobs, &exec);
            state
                .metrics
                .observe(RequestPhase::Execute, t0.elapsed().as_secs_f64() * 1e3);
            let mut registry = state.jobs.lock().expect("jobs lock");
            for ((key, job), outcome) in keys.iter().zip(&jobs).zip(outcomes) {
                let rec = registry.get_mut(key).expect("running job is registered");
                match outcome {
                    Ok(_) => {
                        state.metrics.completed.fetch_add(1, Ordering::Relaxed);
                        rec.state = JobState::Done;
                        rec.executed_by = Some("local".to_owned());
                    }
                    Err(e) => {
                        state.metrics.failed.fetch_add(1, Ordering::Relaxed);
                        // Quarantine keeps the full replayable config;
                        // the server itself stays up.
                        if let Err(qe) = state.farm.quarantine_job(job, &e) {
                            eprintln!("warning: cannot quarantine {key}: {qe}");
                        }
                        rec.state = JobState::Failed(e.to_string());
                    }
                }
            }
        }
    })
}

/// Start the lease reaper: every `reaper_tick` it requeues (or, past
/// `max_claims`, quarantines) jobs whose lease has expired, and sweeps
/// the batch registry's TTL eviction. See `fleet::FleetState` for the
/// lease table itself.
pub fn spawn_reaper(state: Arc<ServeState>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let _alive = AliveGuard(&state.reaper_alive);
        while !state.stop.load(Ordering::SeqCst) {
            std::thread::sleep(state.cfg.reaper_tick);
            state.reap_expired_leases();
            state.sweep_batches();
        }
    })
}
