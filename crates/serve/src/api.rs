//! HTTP API: request routing and the JSON wire protocol.
//!
//! ## Endpoints
//!
//! | method | path | purpose |
//! |---|---|---|
//! | GET | `/healthz` | liveness probe (503 once scheduler/reaper die or the journal stops accepting appends) |
//! | GET | `/v1/status` | store + queue + job-registry + fleet summary |
//! | GET | `/v1/metrics` | all `serve.*`/`farm.*`/`fleet.*` counters as one object |
//! | GET | `/v1/metrics/stream?n=&interval_ms=` | NDJSON counter snapshots (streamed; capped subscribers) |
//! | POST | `/v1/batches` | submit `{"jobs": [...]}`, returns dispositions |
//! | GET | `/v1/batches/{id}` | per-job states of one batch |
//! | GET | `/v1/jobs/{key}` | one job's state |
//! | GET | `/v1/reports/{key}` | the stored `RunReport`, byte-stable |
//! | POST | `/v1/work/claim` | fleet: lease a queued job (`{"worker", "ttl_ms"?}`) |
//! | POST | `/v1/work/{key}/heartbeat` | fleet: extend the lease, report progress |
//! | POST | `/v1/work/{key}/complete` | fleet: upload the `RunReport` |
//! | POST | `/v1/work/{key}/fail` | fleet: typed fault → retry or quarantine |
//! | GET | `/v1/workers` | fleet worker registry + live leases |
//!
//! Report bodies are exactly `json::to_string(&report.to_value())` —
//! the same bytes a direct [`FarmJob::simulate`] serializes to — so
//! clients can byte-compare served results against local runs.
//!
//! ## Job objects
//!
//! A job is `{"bench": ..., "config": ...}`. `bench` accepts the
//! lowercase Table-2 name (`"fft"`) or the enum variant (`"Fft"`).
//! `config` is a full `SimConfig` value; when omitted, defaults apply.
//! The shorthand keys `n_cores`, `scale`, and `mechanism` override the
//! config in place for handwritten curl requests.

use crate::fleet::{claim_response_value, CompleteOutcome, FailOutcome, FleetRefusal};
use crate::http::{Request, Response};
use crate::state::{JobRecord, JobState, RequestPhase, ServeState};
use ptb_core::{RunReport, SimConfig};
use ptb_farm::{FarmJob, StoreLookup};
use ptb_workloads::Benchmark;
use serde::{json, Deserialize, Map, Serialize, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Max jobs accepted in one `POST /v1/batches`.
pub const MAX_BATCH_JOBS: usize = 1024;

/// Route one parsed request. This is the function handed to
/// [`crate::http::Server::spawn`]; it never panics a worker — handler
/// errors come back as JSON `{"error": ...}` bodies.
pub fn handle(state: &Arc<ServeState>, req: &Request, rejected: u64) -> Response {
    use std::sync::atomic::Ordering;
    state.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let (phase, resp) = route(state, req, rejected);
    state
        .metrics
        .observe(phase, t0.elapsed().as_secs_f64() * 1e3);
    if resp.status >= 400 {
        state.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
    }
    resp
}

fn route(state: &Arc<ServeState>, req: &Request, rejected: u64) -> (RequestPhase, Response) {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => (RequestPhase::Other, healthz(state)),
        ("GET", "/v1/status") => (RequestPhase::Other, status(state)),
        ("GET", "/v1/workers") => (RequestPhase::Other, workers(state)),
        ("POST", "/v1/work/claim") => (RequestPhase::Work, work_claim(state, req)),
        ("POST", _) if path.starts_with("/v1/work/") => {
            (RequestPhase::Work, work_dispatch(state, req, path))
        }
        ("GET", "/v1/metrics") => (RequestPhase::Other, metrics(state, rejected)),
        ("GET", "/v1/metrics/stream") => {
            (RequestPhase::Other, metrics_stream(state, req, rejected))
        }
        ("POST", "/v1/batches") => (RequestPhase::Submit, submit(state, req)),
        ("GET", _) if path.starts_with("/v1/batches/") => (
            RequestPhase::Poll,
            batch_status(state, &path["/v1/batches/".len()..]),
        ),
        ("GET", _) if path.starts_with("/v1/jobs/") => (
            RequestPhase::Poll,
            job_status(state, &path["/v1/jobs/".len()..]),
        ),
        ("GET", _) if path.starts_with("/v1/reports/") => (
            RequestPhase::Report,
            report(state, &path["/v1/reports/".len()..]),
        ),
        _ => (
            RequestPhase::Other,
            Response::error(404, &format!("no route for {} {}", req.method, path)),
        ),
    }
}

/// `GET /healthz`: 200 while the scheduler and lease reaper are alive
/// and the journal accepts appends; 503 with the reason otherwise.
fn healthz(state: &Arc<ServeState>) -> Response {
    match state.liveness() {
        Ok(()) => Response::json(200, "{\"ok\":true}".to_string()),
        Err(reason) => {
            let mut obj = Map::new();
            obj.insert("ok".into(), Value::Bool(false));
            obj.insert("reason".into(), Value::Str(reason));
            Response::json(503, json::to_string(&Value::Object(obj)))
        }
    }
}

/// `GET /v1/status`.
fn status(state: &Arc<ServeState>) -> Response {
    let disk = state.farm().store().disk_stats().unwrap_or_default();
    let (queued, leased, running, done, failed) = state.job_totals();
    let mut obj = Map::new();
    obj.insert("entries".into(), Value::U64(disk.entries));
    obj.insert("total_bytes".into(), Value::U64(disk.total_bytes));
    obj.insert("shards".into(), Value::U64(disk.shards));
    obj.insert(
        "store_format".into(),
        Value::Str(state.farm().store().format().to_string()),
    );
    obj.insert("queue_depth".into(), Value::U64(state.queue_depth() as u64));
    let mut jobs = Map::new();
    jobs.insert("queued".into(), Value::U64(queued));
    jobs.insert("leased".into(), Value::U64(leased));
    jobs.insert("running".into(), Value::U64(running));
    jobs.insert("done".into(), Value::U64(done));
    jobs.insert("failed".into(), Value::U64(failed));
    obj.insert("jobs".into(), Value::Object(jobs));
    obj.insert(
        "leases".into(),
        Value::U64(state.fleet.lease_count() as u64),
    );
    obj.insert(
        "workers".into(),
        Value::U64(state.fleet.workers_snapshot().len() as u64),
    );
    obj.insert("remote_active".into(), Value::Bool(state.remote_active()));
    // Divergent completions are a hard error: a deterministic
    // simulation uploaded under the same content key MUST byte-match.
    let divergent = state.fleet.divergent_snapshot();
    obj.insert(
        "divergent".into(),
        Value::Array(
            divergent
                .iter()
                .map(|(key, worker)| {
                    let mut d = Map::new();
                    d.insert("key".into(), Value::Str(key.clone()));
                    d.insert("worker".into(), Value::Str(worker.clone()));
                    Value::Object(d)
                })
                .collect(),
        ),
    );
    obj.insert("healthy".into(), Value::Bool(state.liveness().is_ok()));
    obj.insert("uptime_secs".into(), Value::F64(state.uptime_secs()));
    Response::json(200, json::to_string(&Value::Object(obj)))
}

/// `GET /v1/workers`: the fleet registry plus live leases, for
/// `farm_ctl workers`.
fn workers(state: &Arc<ServeState>) -> Response {
    let grace = state.config().worker_grace;
    let mut workers: Vec<(String, crate::fleet::WorkerRec)> = state.fleet.workers_snapshot();
    workers.sort_by(|a, b| a.0.cmp(&b.0));
    let mut obj = Map::new();
    obj.insert(
        "workers".into(),
        Value::Array(
            workers
                .into_iter()
                .map(|(name, w)| {
                    let mut m = Map::new();
                    m.insert("name".into(), Value::Str(name));
                    m.insert(
                        "last_seen_ms".into(),
                        Value::U64(w.last_seen.elapsed().as_millis() as u64),
                    );
                    m.insert("live".into(), Value::Bool(w.last_seen.elapsed() < grace));
                    m.insert("claimed".into(), Value::U64(w.claimed));
                    m.insert("completed".into(), Value::U64(w.completed));
                    m.insert("failed".into(), Value::U64(w.failed));
                    Value::Object(m)
                })
                .collect(),
        ),
    );
    let mut leases: Vec<(String, crate::fleet::LeaseRec)> = state.fleet.leases_snapshot();
    leases.sort_by(|a, b| a.0.cmp(&b.0));
    obj.insert(
        "leases".into(),
        Value::Array(
            leases
                .into_iter()
                .map(|(key, l)| {
                    let mut m = Map::new();
                    m.insert("key".into(), Value::Str(key));
                    m.insert("worker".into(), Value::Str(l.worker));
                    m.insert(
                        "expires_in_ms".into(),
                        Value::U64(
                            l.expires
                                .saturating_duration_since(Instant::now())
                                .as_millis() as u64,
                        ),
                    );
                    m.insert("heartbeats".into(), Value::U64(l.heartbeats));
                    if let Some(p) = l.progress {
                        m.insert("progress".into(), Value::Str(p));
                    }
                    Value::Object(m)
                })
                .collect(),
        ),
    );
    obj.insert("remote_active".into(), Value::Bool(state.remote_active()));
    Response::json(200, json::to_string(&Value::Object(obj)))
}

fn counters_value(state: &Arc<ServeState>, rejected: u64) -> Value {
    let registry = state.counters(rejected);
    let mut obj = Map::new();
    for (name, value) in registry.as_map() {
        obj.insert(name.clone(), Value::F64(*value));
    }
    Value::Object(obj)
}

/// `GET /v1/metrics`.
fn metrics(state: &Arc<ServeState>, rejected: u64) -> Response {
    Response::json(200, json::to_string(&counters_value(state, rejected)))
}

/// Decrements the live-stream gauge when dropped — including when the
/// connection dies before the producer ever runs.
struct StreamGuard(Arc<ServeState>);

impl Drop for StreamGuard {
    fn drop(&mut self) {
        use std::sync::atomic::Ordering;
        self.0.metrics.streams_active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// `GET /v1/metrics/stream?n=&interval_ms=`: `n` newline-delimited
/// counter snapshots taken `interval_ms` apart, written to the
/// connection as they are produced. A failed write means the client
/// disconnected and stops the producer immediately, so an abandoned
/// stream costs at most one interval. Concurrent subscribers are
/// capped (`max_streams`; excess answered 503) so stuck streams can
/// never pin the whole worker pool. Bounded (`n` ≤ 60, interval
/// ≤ 5000 ms) besides.
fn metrics_stream(state: &Arc<ServeState>, req: &Request, rejected: u64) -> Response {
    use std::sync::atomic::Ordering;
    let n = req.query_u64("n").unwrap_or(5).clamp(1, 60);
    let interval = req.query_u64("interval_ms").unwrap_or(200).min(5000);
    let cap = state.config().max_streams.max(1) as u64;
    if state.metrics.streams_active.fetch_add(1, Ordering::SeqCst) >= cap {
        state.metrics.streams_active.fetch_sub(1, Ordering::SeqCst);
        state
            .metrics
            .streams_rejected
            .fetch_add(1, Ordering::Relaxed);
        return Response::error(503, "metrics stream subscriber cap reached");
    }
    let guard = StreamGuard(state.clone());
    let state = state.clone();
    Response::stream(200, "application/x-ndjson", move |w| {
        let _guard = guard;
        for i in 0..n {
            let mut line = json::to_string(&counters_value(&state, rejected));
            line.push('\n');
            // A write error is a disconnected client: drop the
            // subscriber right here instead of sleeping through the
            // remaining snapshots.
            w.write_all(line.as_bytes())?;
            w.flush()?;
            if i + 1 < n {
                std::thread::sleep(std::time::Duration::from_millis(interval));
            }
        }
        Ok(())
    })
}

/// Parse one wire job object into a [`FarmJob`].
fn parse_job(v: &Value) -> Result<FarmJob, String> {
    let obj = v.as_object().ok_or("job must be an object")?;
    let bench_v = obj.get("bench").ok_or("job is missing \"bench\"")?;
    let bench = match bench_v.as_str() {
        Some(name) => Benchmark::from_name(&name.to_lowercase())
            .or_else(|| Benchmark::from_value(bench_v).ok())
            .ok_or_else(|| format!("unknown benchmark {name:?}"))?,
        None => Benchmark::from_value(bench_v).map_err(|e| format!("bad \"bench\": {e}"))?,
    };
    let mut config = match obj.get("config") {
        Some(c) => SimConfig::from_value(c).map_err(|e| format!("bad \"config\": {e}"))?,
        None => SimConfig::default(),
    };
    // Shorthand overrides for handwritten requests.
    if let Some(n) = obj.get("n_cores") {
        config.n_cores = n
            .as_u64()
            .ok_or("\"n_cores\" must be an unsigned integer")? as usize;
    }
    if let Some(s) = obj.get("scale") {
        config.scale =
            ptb_workloads::Scale::from_value(s).map_err(|e| format!("bad \"scale\": {e}"))?;
    }
    if let Some(m) = obj.get("mechanism") {
        config.mechanism = ptb_core::MechanismKind::from_value(m)
            .map_err(|e| format!("bad \"mechanism\": {e}"))?;
    }
    Ok(FarmJob::new(bench, config))
}

/// `POST /v1/batches`.
fn submit(state: &Arc<ServeState>, req: &Request) -> Response {
    let body = match json::parse(&req.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let jobs_v = match body.as_object().and_then(|o| o.get("jobs")) {
        Some(Value::Array(a)) => a,
        _ => return Response::error(400, "body must be {\"jobs\": [...]}"),
    };
    if jobs_v.is_empty() {
        return Response::error(400, "empty batch");
    }
    if jobs_v.len() > MAX_BATCH_JOBS {
        return Response::error(
            400,
            &format!("batch of {} exceeds limit {MAX_BATCH_JOBS}", jobs_v.len()),
        );
    }
    let mut jobs = Vec::with_capacity(jobs_v.len());
    for (i, jv) in jobs_v.iter().enumerate() {
        match parse_job(jv) {
            Ok(job) => jobs.push(job),
            Err(e) => return Response::error(400, &format!("jobs[{i}]: {e}")),
        }
    }
    let (batch_id, resolved) = state.submit(jobs);
    let mut obj = Map::new();
    obj.insert("batch".into(), Value::Str(batch_id));
    obj.insert(
        "jobs".into(),
        Value::Array(
            resolved
                .into_iter()
                .map(|(key, jstate, disposition)| {
                    let mut j = Map::new();
                    j.insert("key".into(), Value::Str(key));
                    j.insert("state".into(), Value::Str(jstate.name().to_string()));
                    j.insert(
                        "disposition".into(),
                        Value::Str(disposition.name().to_string()),
                    );
                    j
                })
                .map(Value::Object)
                .collect(),
        ),
    );
    Response::json(200, json::to_string(&Value::Object(obj)))
}

fn record_value(key: &str, rec: Option<&JobRecord>) -> Value {
    let mut j = Map::new();
    j.insert("key".into(), Value::Str(key.to_string()));
    match rec {
        Some(rec) => {
            j.insert("state".into(), Value::Str(rec.state.name().to_string()));
            j.insert("label".into(), Value::Str(rec.job.label()));
            if let JobState::Failed(err) = &rec.state {
                j.insert("error".into(), Value::Str(err.clone()));
            }
        }
        None => {
            j.insert("state".into(), Value::Str("unknown".to_string()));
        }
    }
    Value::Object(j)
}

/// `GET /v1/batches/{id}`.
fn batch_status(state: &Arc<ServeState>, id: &str) -> Response {
    let Some(entries) = state.batch(id) else {
        return Response::error(404, &format!("unknown batch {id:?}"));
    };
    let done = entries
        .iter()
        .filter(|(_, r)| {
            matches!(
                r.as_ref().map(|r| &r.state),
                Some(JobState::Done) | Some(JobState::Failed(_))
            )
        })
        .count();
    let mut obj = Map::new();
    obj.insert("batch".into(), Value::Str(id.to_string()));
    obj.insert("total".into(), Value::U64(entries.len() as u64));
    obj.insert("settled".into(), Value::U64(done as u64));
    obj.insert("done".into(), Value::Bool(done == entries.len()));
    obj.insert(
        "jobs".into(),
        Value::Array(
            entries
                .iter()
                .map(|(k, r)| record_value(k, r.as_ref()))
                .collect(),
        ),
    );
    Response::json(200, json::to_string(&Value::Object(obj)))
}

/// `GET /v1/jobs/{key}`.
fn job_status(state: &Arc<ServeState>, key: &str) -> Response {
    match state.job(key) {
        Some(rec) => Response::json(200, json::to_string(&record_value(key, Some(&rec)))),
        None => {
            // Not in this server's registry — it may still sit in the
            // store from an earlier process.
            match state.farm().store().read_entry(key) {
                Ok(Some(_)) => {
                    let mut j = Map::new();
                    j.insert("key".into(), Value::Str(key.to_string()));
                    j.insert("state".into(), Value::Str("done".to_string()));
                    Response::json(200, json::to_string(&Value::Object(j)))
                }
                _ => Response::error(404, &format!("unknown job {key:?}")),
            }
        }
    }
}

/// `GET /v1/reports/{key}`: the stored report, serialized compactly —
/// byte-identical to `json::to_string(&job.simulate().to_value())`.
fn report(state: &Arc<ServeState>, key: &str) -> Response {
    // Prefer the registry: it validates against the submitted config
    // and distinguishes queued/running/failed from plain absence.
    if let Some(rec) = state.job(key) {
        match &rec.state {
            JobState::Done => match state.farm().store().get(key, &rec.job) {
                StoreLookup::Hit(report) => {
                    return Response::json(200, json::to_string(&report.to_value()));
                }
                StoreLookup::Miss => {
                    return Response::error(404, &format!("report for {key:?} has been removed"));
                }
                StoreLookup::Corrupt(e) => {
                    // Retryable: a re-submit will re-run the job.
                    return Response::error(503, &format!("stored entry is corrupt: {e}"));
                }
            },
            JobState::Queued | JobState::Leased(_) | JobState::Running => {
                return Response::error(409, &format!("job {key:?} is still {}", rec.state.name()));
            }
            JobState::Failed(err) => {
                return Response::error(502, &format!("job failed: {err}"));
            }
        }
    }
    // Never submitted here: serve straight from the store.
    match state.farm().store().read_entry(key) {
        Ok(Some((_, report))) => Response::json(200, json::to_string(&report.to_value())),
        Ok(None) => Response::error(404, &format!("no report for {key:?}")),
        Err(e) => Response::error(503, &format!("stored entry is corrupt: {e}")),
    }
}

/// The `"worker"` field every `/v1/work/*` body must carry.
fn worker_name(body: &Value) -> Result<&str, Response> {
    body.as_object()
        .and_then(|o| o.get("worker"))
        .and_then(Value::as_str)
        .filter(|w| !w.is_empty())
        .ok_or_else(|| Response::error(400, "body must carry a non-empty \"worker\""))
}

fn ok_outcome(outcome: &str) -> Response {
    let mut m = Map::new();
    m.insert("ok".into(), Value::Bool(true));
    m.insert("outcome".into(), Value::Str(outcome.to_owned()));
    Response::json(200, json::to_string(&Value::Object(m)))
}

/// `POST /v1/work/claim`: `{"worker", "ttl_ms"?}` → a leased job
/// (`{"key", "job", "ttl_ms"}`) or `{"job": null}` when the queue has
/// nothing claimable.
fn work_claim(state: &Arc<ServeState>, req: &Request) -> Response {
    let body = match json::parse(&req.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let worker = match worker_name(&body) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let ttl = body
        .as_object()
        .and_then(|o| o.get("ttl_ms"))
        .and_then(Value::as_u64)
        .map(Duration::from_millis);
    match state.claim(worker, ttl) {
        Some((key, job, granted)) => Response::json(
            200,
            json::to_string(&claim_response_value(&key, &job, granted)),
        ),
        None => Response::json(200, "{\"job\":null}".to_string()),
    }
}

/// Dispatch `POST /v1/work/{key}/{heartbeat|complete|fail}`.
fn work_dispatch(state: &Arc<ServeState>, req: &Request, path: &str) -> Response {
    let rest = &path["/v1/work/".len()..];
    let Some((key, action)) = rest.rsplit_once('/') else {
        return Response::error(404, &format!("no route for POST {path}"));
    };
    if key.is_empty() {
        return Response::error(400, "empty job key");
    }
    match action {
        "heartbeat" => work_heartbeat(state, req, key),
        "complete" => work_complete(state, req, key),
        "fail" => work_fail(state, req, key),
        _ => Response::error(404, &format!("no route for POST {path}")),
    }
}

/// `POST /v1/work/{key}/heartbeat`: `{"worker", "progress"?}` →
/// `{"ok":true,"ttl_ms"}` or 409 once the lease has moved on.
fn work_heartbeat(state: &Arc<ServeState>, req: &Request, key: &str) -> Response {
    let body = match json::parse(&req.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let worker = match worker_name(&body) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let progress = body
        .as_object()
        .and_then(|o| o.get("progress"))
        .and_then(Value::as_str)
        .map(str::to_owned);
    match state.heartbeat(worker, key, progress) {
        Ok(ttl) => {
            let mut m = Map::new();
            m.insert("ok".into(), Value::Bool(true));
            m.insert("ttl_ms".into(), Value::U64(ttl.as_millis() as u64));
            Response::json(200, json::to_string(&Value::Object(m)))
        }
        Err(FleetRefusal::LeaseLost) => Response::error(409, "lease lost"),
        Err(FleetRefusal::Bad(msg)) => Response::error(400, &msg),
    }
}

/// `POST /v1/work/{key}/complete`: `{"worker", "report": {...}}`.
fn work_complete(state: &Arc<ServeState>, req: &Request, key: &str) -> Response {
    let body = match json::parse(&req.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let worker = match worker_name(&body) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let report = match body.as_object().and_then(|o| o.get("report")) {
        Some(rv) => match RunReport::from_value(rv) {
            Ok(r) => r,
            Err(e) => return Response::error(400, &format!("bad \"report\": {e}")),
        },
        None => return Response::error(400, "body must carry \"report\""),
    };
    match state.complete(worker, key, report) {
        CompleteOutcome::Stored => ok_outcome("stored"),
        CompleteOutcome::Duplicate => ok_outcome("duplicate"),
        CompleteOutcome::RacedLocal => ok_outcome("raced-local"),
        CompleteOutcome::Divergent => Response::error(
            409,
            &format!(
                "divergent completion for {key}: uploaded bytes differ from the stored report \
                 (determinism violation; see /v1/status)"
            ),
        ),
        CompleteOutcome::Retry(msg) => Response::error(503, &msg),
        CompleteOutcome::Invalid(msg) => Response::error(400, &msg),
        CompleteOutcome::StoreError(msg) => Response::error(500, &msg),
    }
}

/// `POST /v1/work/{key}/fail`: `{"worker", "kind", "message"?}` with
/// `kind` one of `transient|fatal|timeout`.
fn work_fail(state: &Arc<ServeState>, req: &Request, key: &str) -> Response {
    let body = match json::parse(&req.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let worker = match worker_name(&body) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let obj = body.as_object().expect("worker_name checked object");
    let kind = match obj.get("kind").and_then(Value::as_str) {
        Some(k) => k,
        None => return Response::error(400, "body must carry \"kind\""),
    };
    let message = obj
        .get("message")
        .and_then(Value::as_str)
        .unwrap_or("(no message)");
    match state.fail(worker, key, kind, message) {
        Ok(FailOutcome::Requeued { attempts }) => {
            let mut m = Map::new();
            m.insert("ok".into(), Value::Bool(true));
            m.insert("outcome".into(), Value::Str("requeued".to_owned()));
            m.insert("attempts".into(), Value::U64(attempts as u64));
            Response::json(200, json::to_string(&Value::Object(m)))
        }
        Ok(FailOutcome::Quarantined) => ok_outcome("quarantined"),
        Err(FleetRefusal::LeaseLost) => Response::error(409, "lease lost"),
        Err(FleetRefusal::Bad(msg)) => Response::error(400, &msg),
    }
}
