//! HTTP API: request routing and the JSON wire protocol.
//!
//! ## Endpoints
//!
//! | method | path | purpose |
//! |---|---|---|
//! | GET | `/healthz` | liveness probe |
//! | GET | `/v1/status` | store + queue + job-registry summary |
//! | GET | `/v1/metrics` | all `serve.*`/`farm.*` counters as one object |
//! | GET | `/v1/metrics/stream?n=&interval_ms=` | NDJSON counter snapshots |
//! | POST | `/v1/batches` | submit `{"jobs": [...]}`, returns dispositions |
//! | GET | `/v1/batches/{id}` | per-job states of one batch |
//! | GET | `/v1/jobs/{key}` | one job's state |
//! | GET | `/v1/reports/{key}` | the stored `RunReport`, byte-stable |
//!
//! Report bodies are exactly `json::to_string(&report.to_value())` —
//! the same bytes a direct [`FarmJob::simulate`] serializes to — so
//! clients can byte-compare served results against local runs.
//!
//! ## Job objects
//!
//! A job is `{"bench": ..., "config": ...}`. `bench` accepts the
//! lowercase Table-2 name (`"fft"`) or the enum variant (`"Fft"`).
//! `config` is a full `SimConfig` value; when omitted, defaults apply.
//! The shorthand keys `n_cores`, `scale`, and `mechanism` override the
//! config in place for handwritten curl requests.

use crate::http::{Request, Response};
use crate::state::{JobRecord, JobState, RequestPhase, ServeState};
use ptb_core::SimConfig;
use ptb_farm::{FarmJob, StoreLookup};
use ptb_workloads::Benchmark;
use serde::{json, Deserialize, Map, Serialize, Value};
use std::sync::Arc;
use std::time::Instant;

/// Max jobs accepted in one `POST /v1/batches`.
pub const MAX_BATCH_JOBS: usize = 1024;

/// Route one parsed request. This is the function handed to
/// [`crate::http::Server::spawn`]; it never panics a worker — handler
/// errors come back as JSON `{"error": ...}` bodies.
pub fn handle(state: &Arc<ServeState>, req: &Request, rejected: u64) -> Response {
    use std::sync::atomic::Ordering;
    state.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let (phase, resp) = route(state, req, rejected);
    state
        .metrics
        .observe(phase, t0.elapsed().as_secs_f64() * 1e3);
    if resp.status >= 400 {
        state.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
    }
    resp
}

fn route(state: &Arc<ServeState>, req: &Request, rejected: u64) -> (RequestPhase, Response) {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => (
            RequestPhase::Other,
            Response::json(200, "{\"ok\":true}".to_string()),
        ),
        ("GET", "/v1/status") => (RequestPhase::Other, status(state)),
        ("GET", "/v1/metrics") => (RequestPhase::Other, metrics(state, rejected)),
        ("GET", "/v1/metrics/stream") => {
            (RequestPhase::Other, metrics_stream(state, req, rejected))
        }
        ("POST", "/v1/batches") => (RequestPhase::Submit, submit(state, req)),
        ("GET", _) if path.starts_with("/v1/batches/") => (
            RequestPhase::Poll,
            batch_status(state, &path["/v1/batches/".len()..]),
        ),
        ("GET", _) if path.starts_with("/v1/jobs/") => (
            RequestPhase::Poll,
            job_status(state, &path["/v1/jobs/".len()..]),
        ),
        ("GET", _) if path.starts_with("/v1/reports/") => (
            RequestPhase::Report,
            report(state, &path["/v1/reports/".len()..]),
        ),
        _ => (
            RequestPhase::Other,
            Response::error(404, &format!("no route for {} {}", req.method, path)),
        ),
    }
}

/// `GET /v1/status`.
fn status(state: &Arc<ServeState>) -> Response {
    let disk = state.farm().store().disk_stats().unwrap_or_default();
    let (queued, running, done, failed) = state.job_totals();
    let mut obj = Map::new();
    obj.insert("entries".into(), Value::U64(disk.entries));
    obj.insert("total_bytes".into(), Value::U64(disk.total_bytes));
    obj.insert("shards".into(), Value::U64(disk.shards));
    obj.insert(
        "store_format".into(),
        Value::Str(state.farm().store().format().to_string()),
    );
    obj.insert("queue_depth".into(), Value::U64(state.queue_depth() as u64));
    let mut jobs = Map::new();
    jobs.insert("queued".into(), Value::U64(queued));
    jobs.insert("running".into(), Value::U64(running));
    jobs.insert("done".into(), Value::U64(done));
    jobs.insert("failed".into(), Value::U64(failed));
    obj.insert("jobs".into(), Value::Object(jobs));
    obj.insert("uptime_secs".into(), Value::F64(state.uptime_secs()));
    Response::json(200, json::to_string(&Value::Object(obj)))
}

fn counters_value(state: &Arc<ServeState>, rejected: u64) -> Value {
    let registry = state.counters(rejected);
    let mut obj = Map::new();
    for (name, value) in registry.as_map() {
        obj.insert(name.clone(), Value::F64(*value));
    }
    Value::Object(obj)
}

/// `GET /v1/metrics`.
fn metrics(state: &Arc<ServeState>, rejected: u64) -> Response {
    Response::json(200, json::to_string(&counters_value(state, rejected)))
}

/// `GET /v1/metrics/stream?n=&interval_ms=`: `n` newline-delimited
/// counter snapshots taken `interval_ms` apart. Bounded (`n` ≤ 60,
/// interval ≤ 5000 ms) so a stream can never pin a worker for long.
fn metrics_stream(state: &Arc<ServeState>, req: &Request, rejected: u64) -> Response {
    let n = req.query_u64("n").unwrap_or(5).clamp(1, 60);
    let interval = req.query_u64("interval_ms").unwrap_or(200).min(5000);
    let mut body = String::new();
    for i in 0..n {
        body.push_str(&json::to_string(&counters_value(state, rejected)));
        body.push('\n');
        if i + 1 < n {
            std::thread::sleep(std::time::Duration::from_millis(interval));
        }
    }
    Response {
        status: 200,
        content_type: "application/x-ndjson",
        body: body.into_bytes(),
    }
}

/// Parse one wire job object into a [`FarmJob`].
fn parse_job(v: &Value) -> Result<FarmJob, String> {
    let obj = v.as_object().ok_or("job must be an object")?;
    let bench_v = obj.get("bench").ok_or("job is missing \"bench\"")?;
    let bench = match bench_v.as_str() {
        Some(name) => Benchmark::from_name(&name.to_lowercase())
            .or_else(|| Benchmark::from_value(bench_v).ok())
            .ok_or_else(|| format!("unknown benchmark {name:?}"))?,
        None => Benchmark::from_value(bench_v).map_err(|e| format!("bad \"bench\": {e}"))?,
    };
    let mut config = match obj.get("config") {
        Some(c) => SimConfig::from_value(c).map_err(|e| format!("bad \"config\": {e}"))?,
        None => SimConfig::default(),
    };
    // Shorthand overrides for handwritten requests.
    if let Some(n) = obj.get("n_cores") {
        config.n_cores = n
            .as_u64()
            .ok_or("\"n_cores\" must be an unsigned integer")? as usize;
    }
    if let Some(s) = obj.get("scale") {
        config.scale =
            ptb_workloads::Scale::from_value(s).map_err(|e| format!("bad \"scale\": {e}"))?;
    }
    if let Some(m) = obj.get("mechanism") {
        config.mechanism = ptb_core::MechanismKind::from_value(m)
            .map_err(|e| format!("bad \"mechanism\": {e}"))?;
    }
    Ok(FarmJob::new(bench, config))
}

/// `POST /v1/batches`.
fn submit(state: &Arc<ServeState>, req: &Request) -> Response {
    let body = match json::parse(&req.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let jobs_v = match body.as_object().and_then(|o| o.get("jobs")) {
        Some(Value::Array(a)) => a,
        _ => return Response::error(400, "body must be {\"jobs\": [...]}"),
    };
    if jobs_v.is_empty() {
        return Response::error(400, "empty batch");
    }
    if jobs_v.len() > MAX_BATCH_JOBS {
        return Response::error(
            400,
            &format!("batch of {} exceeds limit {MAX_BATCH_JOBS}", jobs_v.len()),
        );
    }
    let mut jobs = Vec::with_capacity(jobs_v.len());
    for (i, jv) in jobs_v.iter().enumerate() {
        match parse_job(jv) {
            Ok(job) => jobs.push(job),
            Err(e) => return Response::error(400, &format!("jobs[{i}]: {e}")),
        }
    }
    let (batch_id, resolved) = state.submit(jobs);
    let mut obj = Map::new();
    obj.insert("batch".into(), Value::Str(batch_id));
    obj.insert(
        "jobs".into(),
        Value::Array(
            resolved
                .into_iter()
                .map(|(key, jstate, disposition)| {
                    let mut j = Map::new();
                    j.insert("key".into(), Value::Str(key));
                    j.insert("state".into(), Value::Str(jstate.name().to_string()));
                    j.insert(
                        "disposition".into(),
                        Value::Str(disposition.name().to_string()),
                    );
                    j
                })
                .map(Value::Object)
                .collect(),
        ),
    );
    Response::json(200, json::to_string(&Value::Object(obj)))
}

fn record_value(key: &str, rec: Option<&JobRecord>) -> Value {
    let mut j = Map::new();
    j.insert("key".into(), Value::Str(key.to_string()));
    match rec {
        Some(rec) => {
            j.insert("state".into(), Value::Str(rec.state.name().to_string()));
            j.insert("label".into(), Value::Str(rec.job.label()));
            if let JobState::Failed(err) = &rec.state {
                j.insert("error".into(), Value::Str(err.clone()));
            }
        }
        None => {
            j.insert("state".into(), Value::Str("unknown".to_string()));
        }
    }
    Value::Object(j)
}

/// `GET /v1/batches/{id}`.
fn batch_status(state: &Arc<ServeState>, id: &str) -> Response {
    let Some(entries) = state.batch(id) else {
        return Response::error(404, &format!("unknown batch {id:?}"));
    };
    let done = entries
        .iter()
        .filter(|(_, r)| {
            matches!(
                r.as_ref().map(|r| &r.state),
                Some(JobState::Done) | Some(JobState::Failed(_))
            )
        })
        .count();
    let mut obj = Map::new();
    obj.insert("batch".into(), Value::Str(id.to_string()));
    obj.insert("total".into(), Value::U64(entries.len() as u64));
    obj.insert("settled".into(), Value::U64(done as u64));
    obj.insert("done".into(), Value::Bool(done == entries.len()));
    obj.insert(
        "jobs".into(),
        Value::Array(
            entries
                .iter()
                .map(|(k, r)| record_value(k, r.as_ref()))
                .collect(),
        ),
    );
    Response::json(200, json::to_string(&Value::Object(obj)))
}

/// `GET /v1/jobs/{key}`.
fn job_status(state: &Arc<ServeState>, key: &str) -> Response {
    match state.job(key) {
        Some(rec) => Response::json(200, json::to_string(&record_value(key, Some(&rec)))),
        None => {
            // Not in this server's registry — it may still sit in the
            // store from an earlier process.
            match state.farm().store().read_entry(key) {
                Ok(Some(_)) => {
                    let mut j = Map::new();
                    j.insert("key".into(), Value::Str(key.to_string()));
                    j.insert("state".into(), Value::Str("done".to_string()));
                    Response::json(200, json::to_string(&Value::Object(j)))
                }
                _ => Response::error(404, &format!("unknown job {key:?}")),
            }
        }
    }
}

/// `GET /v1/reports/{key}`: the stored report, serialized compactly —
/// byte-identical to `json::to_string(&job.simulate().to_value())`.
fn report(state: &Arc<ServeState>, key: &str) -> Response {
    // Prefer the registry: it validates against the submitted config
    // and distinguishes queued/running/failed from plain absence.
    if let Some(rec) = state.job(key) {
        match &rec.state {
            JobState::Done => match state.farm().store().get(key, &rec.job) {
                StoreLookup::Hit(report) => {
                    return Response::json(200, json::to_string(&report.to_value()));
                }
                StoreLookup::Miss => {
                    return Response::error(404, &format!("report for {key:?} has been removed"));
                }
                StoreLookup::Corrupt(e) => {
                    // Retryable: a re-submit will re-run the job.
                    return Response::error(503, &format!("stored entry is corrupt: {e}"));
                }
            },
            JobState::Queued | JobState::Running => {
                return Response::error(409, &format!("job {key:?} is still {}", rec.state.name()));
            }
            JobState::Failed(err) => {
                return Response::error(502, &format!("job failed: {err}"));
            }
        }
    }
    // Never submitted here: serve straight from the store.
    match state.farm().store().read_entry(key) {
        Ok(Some((_, report))) => Response::json(200, json::to_string(&report.to_value())),
        Ok(None) => Response::error(404, &format!("no report for {key:?}")),
        Err(e) => Response::error(503, &format!("stored entry is corrupt: {e}")),
    }
}
