//! Serve a `ptb-farm` store over HTTP.
//!
//! ```text
//! ptb_serve [--addr HOST:PORT] [--farm-dir PATH] [--workers N]
//!           [--queue N] [--sim-threads N] [--job-timeout SECS]
//!           [--store-format json|bin]
//!           [--lease-ttl-ms N] [--reaper-tick-ms N] [--max-claims N]
//!           [--batch-ttl SECS] [--worker-grace-ms N] [--no-local]
//! ```
//!
//! `--farm-dir` defaults to `PTB_FARM_DIR`, then `target/farm`. Fault
//! injection honours `PTB_CHAOS`/`PTB_CHAOS_SEED` exactly like the
//! experiment runners. The process prints one `listening` line once
//! the socket is bound, then serves until killed; `/healthz` is the
//! readiness probe.

use ptb_farm::{ChaosConfig, ChaosIo, EntryFormat, Farm, FarmIo, RealIo};
use ptb_serve::{ServeConfig, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: ptb_serve [--addr HOST:PORT] [--farm-dir PATH] [--workers N] \
             [--queue N] [--sim-threads N] [--job-timeout SECS] [--store-format json|bin] \
             [--lease-ttl-ms N] [--reaper-tick-ms N] [--max-claims N] [--batch-ttl SECS] \
             [--worker-grace-ms N] [--no-local]"
        );
        return;
    }
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let farm_dir = flag(&args, "--farm-dir")
        .or_else(|| std::env::var("PTB_FARM_DIR").ok())
        .unwrap_or_else(|| "target/farm".to_string());

    let mut server_cfg = ServerConfig::default();
    if let Some(n) = flag(&args, "--workers").and_then(|v| v.parse().ok()) {
        server_cfg.workers = n;
    }
    if let Some(n) = flag(&args, "--queue").and_then(|v| v.parse().ok()) {
        server_cfg.queue_depth = n;
    }
    let mut serve_cfg = ServeConfig::default();
    if let Some(n) = flag(&args, "--sim-threads").and_then(|v| v.parse().ok()) {
        serve_cfg.sim_threads = n;
    }
    if let Some(secs) = flag(&args, "--job-timeout").and_then(|v| v.parse::<u64>().ok()) {
        serve_cfg.job_timeout = (secs > 0).then(|| Duration::from_secs(secs));
    }
    if let Some(ms) = flag(&args, "--lease-ttl-ms").and_then(|v| v.parse::<u64>().ok()) {
        serve_cfg.lease_default_ttl = Duration::from_millis(ms);
        serve_cfg.lease_max_ttl = serve_cfg.lease_max_ttl.max(serve_cfg.lease_default_ttl);
    }
    if let Some(ms) = flag(&args, "--reaper-tick-ms").and_then(|v| v.parse::<u64>().ok()) {
        serve_cfg.reaper_tick = Duration::from_millis(ms.max(1));
    }
    if let Some(n) = flag(&args, "--max-claims").and_then(|v| v.parse().ok()) {
        serve_cfg.max_claims = n;
    }
    if let Some(secs) = flag(&args, "--batch-ttl").and_then(|v| v.parse::<u64>().ok()) {
        serve_cfg.batch_ttl = Duration::from_secs(secs);
    }
    if let Some(ms) = flag(&args, "--worker-grace-ms").and_then(|v| v.parse::<u64>().ok()) {
        serve_cfg.worker_grace = Duration::from_millis(ms);
    }
    if args.iter().any(|a| a == "--no-local") {
        serve_cfg.local_execution = false;
    }

    let format = flag(&args, "--store-format")
        .or_else(|| std::env::var("PTB_STORE_FORMAT").ok())
        .and_then(|v| EntryFormat::parse(&v))
        .unwrap_or_default();
    let chaos_rate = std::env::var("PTB_CHAOS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0);
    let io: Arc<dyn FarmIo> = if chaos_rate > 0.0 {
        let seed = std::env::var("PTB_CHAOS_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        eprintln!("[serve] CHAOS MODE: fault rate {chaos_rate}, seed {seed}");
        Arc::new(ChaosIo::new(ChaosConfig::uniform(seed, chaos_rate)))
    } else {
        Arc::new(RealIo)
    };
    let farm = match Farm::open_with_io_format(&farm_dir, io, format) {
        Ok(f) => Arc::new(f),
        Err(e) => {
            eprintln!("error: cannot open farm store {farm_dir}: {e}");
            std::process::exit(2);
        }
    };

    let handle = match ptb_serve::start(farm, &addr, serve_cfg, server_cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(2);
        }
    };
    println!("ptb-serve listening on http://{}", handle.addr());
    println!("  farm store: {farm_dir} ({format})");
    // Serve until the process is killed (CI stops it with SIGTERM).
    loop {
        std::thread::park();
    }
}
