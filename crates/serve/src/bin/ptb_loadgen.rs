//! Load-test `ptb-serve`: populate a large store, hammer it with
//! concurrent batch submissions, and prove nothing is lost or run
//! twice.
//!
//! ```text
//! ptb_loadgen [--farm-dir PATH] [--populate N] [--clients C]
//!             [--requests R] [--batch B] [--addr HOST:PORT]
//!             [--out BENCH_serve.json]
//! ```
//!
//! Without `--addr` the generator starts an in-process server over the
//! populated store. Each of `C` client threads issues `R` rounds of:
//! one `POST /v1/batches` carrying `B` jobs picked deterministically
//! from the populated key space, then one `GET /v1/reports/{key}` per
//! job. Afterwards it asserts, from the server's own counters:
//!
//! * every fetch answered `200` — zero lost jobs;
//! * `serve.completed == 0` — every submission deduplicated against
//!   the store, zero duplicated work;
//! * store entry count unchanged.
//!
//! Latency percentiles land in `--out` (committed as
//! `BENCH_serve.json`).

use ptb_core::SimConfig;
use ptb_farm::{EntryFormat, Farm, FarmJob, RealIo};
use ptb_serve::{http_call, ServeConfig, ServerConfig};
use ptb_workloads::{Benchmark, Scale};
use serde::{json, Map, Serialize, Value};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The `i`-th populated job: one real template report is stored under
/// many distinct keys by varying `max_cycles` (a hashed config field),
/// so a 100k-entry store costs one simulation, not 100k.
fn nth_job(i: u64) -> FarmJob {
    let mut config = SimConfig {
        n_cores: 2,
        scale: Scale::Test,
        ..SimConfig::default()
    };
    config.max_cycles = 1_000_000 + i;
    FarmJob::new(Benchmark::Fft, config)
}

/// SplitMix64: deterministic client-side key picks.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn p(xs: &[f64], q: f64) -> f64 {
    ptb_metrics::percentile(xs, q)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let populate: u64 = flag(&args, "--populate")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let clients: usize = flag(&args, "--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let requests: usize = flag(&args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let batch: usize = flag(&args, "--batch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let farm_dir = flag(&args, "--farm-dir").unwrap_or_else(|| "target/loadgen_farm".to_string());

    // Phase 1: populate. One real simulation, N store entries.
    let farm = Farm::open_with_io_format(&farm_dir, Arc::new(RealIo), EntryFormat::Binary)
        .expect("open farm store");
    let have = farm.store().len() as u64;
    if have < populate {
        eprintln!(
            "[loadgen] populating {} entries ({have} present)…",
            populate
        );
        let template = nth_job(0).simulate();
        let t0 = Instant::now();
        for i in have..populate {
            let job = nth_job(i);
            farm.store()
                .put(&job.key(), &job, &template)
                .expect("populate put");
            if (i + 1) % 20_000 == 0 {
                eprintln!("[loadgen]   {} / {populate}", i + 1);
            }
        }
        eprintln!("[loadgen] populated in {:.1}s", t0.elapsed().as_secs_f64());
    }
    let entries_before = farm.store().len() as u64;

    // Phase 2: the server (external via --addr, else in-process).
    let mut handle = None;
    let addr: SocketAddr = match flag(&args, "--addr") {
        Some(a) => a.parse().expect("parse --addr"),
        None => {
            let h = ptb_serve::start(
                Arc::new(farm),
                "127.0.0.1:0",
                ServeConfig::default(),
                ServerConfig {
                    workers: 16,
                    queue_depth: 256,
                    ..ServerConfig::default()
                },
            )
            .expect("start in-process server");
            let a = h.addr();
            handle = Some(h);
            a
        }
    };

    // Phase 3: the storm.
    eprintln!("[loadgen] {clients} clients x {requests} requests x {batch} jobs against {addr} …");
    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut submit_ms = Vec::new();
                let mut fetch_ms = Vec::new();
                let mut lost = 0u64;
                for r in 0..requests {
                    let picks: Vec<u64> = (0..batch)
                        .map(|b| splitmix((c * requests + r) as u64 * 64 + b as u64) % populate)
                        .collect();
                    let jobs: Vec<(String, Value)> = picks
                        .iter()
                        .map(|&i| {
                            let job = nth_job(i);
                            (job.key(), job.to_value())
                        })
                        .collect();
                    let mut body = Map::new();
                    body.insert(
                        "jobs".into(),
                        Value::Array(jobs.iter().map(|(_, v)| v.clone()).collect()),
                    );
                    let body = json::to_string(&Value::Object(body));
                    let t = Instant::now();
                    let (status, _) = http_call(addr, "POST", "/v1/batches", Some(&body))
                        .expect("submit round-trip");
                    submit_ms.push(t.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(status, 200, "submit rejected");
                    for (key, _) in &jobs {
                        let t = Instant::now();
                        let (status, body) =
                            http_call(addr, "GET", &format!("/v1/reports/{key}"), None)
                                .expect("report round-trip");
                        fetch_ms.push(t.elapsed().as_secs_f64() * 1e3);
                        if status != 200 || body.is_empty() {
                            lost += 1;
                        }
                    }
                }
                (submit_ms, fetch_ms, lost)
            })
        })
        .collect();
    let mut submit_ms = Vec::new();
    let mut fetch_ms = Vec::new();
    let mut lost = 0u64;
    for t in threads {
        let (s, f, l) = t.join().expect("client thread");
        submit_ms.extend(s);
        fetch_ms.extend(f);
        lost += l;
    }
    let elapsed = t0.elapsed().as_secs_f64();

    // Phase 4: assertions from the server's own books.
    let (_, metrics_body) = http_call(addr, "GET", "/v1/metrics", None).expect("metrics");
    let metrics = json::parse(&metrics_body).expect("metrics JSON");
    let counter = |name: &str| -> f64 {
        metrics
            .as_object()
            .and_then(|o| o.get(name))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let (_, status_body) = http_call(addr, "GET", "/v1/status", None).expect("status");
    let status_v = json::parse(&status_body).expect("status JSON");
    let entries_after = status_v
        .as_object()
        .and_then(|o| o.get("entries"))
        .and_then(Value::as_u64)
        .unwrap_or(0);

    let total_jobs = (clients * requests * batch) as f64;
    assert_eq!(lost, 0, "lost jobs: {lost} report fetches failed");
    assert_eq!(
        counter("serve.completed"),
        0.0,
        "duplicated work: the executor ran jobs that were already stored"
    );
    assert_eq!(
        counter("serve.submitted"),
        total_jobs,
        "server and client disagree on submission count"
    );
    assert_eq!(
        entries_after, entries_before,
        "store entry count changed under a read-only storm"
    );

    // Phase 5: the benchmark artefact.
    let mut doc = Map::new();
    doc.insert("populated".into(), Value::U64(entries_before));
    doc.insert("clients".into(), Value::U64(clients as u64));
    doc.insert("requests_per_client".into(), Value::U64(requests as u64));
    doc.insert("jobs_per_batch".into(), Value::U64(batch as u64));
    doc.insert("submitted_jobs".into(), Value::U64(total_jobs as u64));
    doc.insert("lost_jobs".into(), Value::U64(lost));
    doc.insert(
        "duplicated_jobs".into(),
        Value::U64(counter("serve.completed") as u64),
    );
    doc.insert(
        "http_rejected".into(),
        Value::U64(counter("serve.http.rejected") as u64),
    );
    doc.insert("elapsed_secs".into(), Value::F64(elapsed));
    doc.insert(
        "requests_per_sec".into(),
        Value::F64((submit_ms.len() + fetch_ms.len()) as f64 / elapsed),
    );
    let mut s = Map::new();
    s.insert("p50_ms".into(), Value::F64(p(&submit_ms, 50.0)));
    s.insert("p95_ms".into(), Value::F64(p(&submit_ms, 95.0)));
    s.insert("p99_ms".into(), Value::F64(p(&submit_ms, 99.0)));
    doc.insert("submit_latency".into(), Value::Object(s));
    let mut f = Map::new();
    f.insert("p50_ms".into(), Value::F64(p(&fetch_ms, 50.0)));
    f.insert("p95_ms".into(), Value::F64(p(&fetch_ms, 95.0)));
    f.insert("p99_ms".into(), Value::F64(p(&fetch_ms, 99.0)));
    doc.insert("cached_lookup_latency".into(), Value::Object(f));
    let text = json::to_string_pretty(&Value::Object(doc));
    std::fs::write(&out, format!("{text}\n")).expect("write benchmark artefact");
    println!(
        "loadgen OK: {} submits + {} fetches in {elapsed:.1}s, 0 lost, 0 duplicated; p99 cached lookup {:.2} ms -> {out}",
        submit_ms.len(),
        fetch_ms.len(),
        p(&fetch_ms, 99.0)
    );

    if let Some(h) = handle.take() {
        h.shutdown();
    }
}
