//! Pull-based fleet worker for `ptb-serve`.
//!
//! ```text
//! ptb_worker --addr HOST:PORT [--name NAME] [--ttl-ms N] [--poll-ms N]
//!            [--max-jobs N] [--idle-exit SECS] [--job-timeout SECS]
//!            [--chaos RATE] [--chaos-seed N] [--hold-ms N]
//! ```
//!
//! The worker claims leased jobs from `POST /v1/work/claim`, heartbeats
//! every `ttl/3` while simulating, and uploads the `RunReport` to
//! `/v1/work/{key}/complete` (or a typed fault to `/fail`). It holds no
//! state the server cannot reconstruct: killing a worker at any point
//! only delays its leased job until the server's reaper requeues it.
//!
//! `--chaos RATE` wraps every HTTP call in the seeded [`ChaosNet`]
//! transport (dropped/duplicated requests, truncated responses,
//! injected latency, mid-upload disconnects) — the same determinism
//! contract as the farm's `ChaosIo`. `--hold-ms` sleeps between claim
//! and simulate; tests use it to SIGKILL a worker that provably holds
//! a lease.

use ptb_farm::{FarmJob, JobFault};
use ptb_serve::{ChaosNet, NetChaosConfig, RealNet, Transport};
use serde::{json, Deserialize, Map, Serialize, Value};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn obj_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    v.as_object().and_then(|o| o.get(key)).and_then(|v| {
        if let Value::Str(s) = v {
            Some(s.as_str())
        } else {
            None
        }
    })
}

fn obj_u64(v: &Value, key: &str) -> Option<u64> {
    v.as_object()
        .and_then(|o| o.get(key))
        .and_then(Value::as_u64)
}

struct Claimed {
    key: String,
    job: FarmJob,
    ttl: Duration,
}

/// One claim round-trip. `Ok(None)` means the queue is empty.
fn claim(
    net: &dyn Transport,
    addr: SocketAddr,
    name: &str,
    ttl_ms: Option<u64>,
) -> Result<Option<Claimed>, String> {
    let mut body = Map::new();
    body.insert("worker".into(), Value::Str(name.to_owned()));
    if let Some(ms) = ttl_ms {
        body.insert("ttl_ms".into(), Value::U64(ms));
    }
    let body = json::to_string(&Value::Object(body));
    let (status, text) = net
        .call(addr, "POST", "/v1/work/claim", Some(&body))
        .map_err(|e| format!("claim: {e}"))?;
    if status != 200 {
        return Err(format!("claim: HTTP {status}: {text}"));
    }
    let v = json::parse(&text).map_err(|e| format!("claim: bad JSON: {e}"))?;
    let job_v = match v.as_object().and_then(|o| o.get("job")) {
        Some(Value::Null) | None => return Ok(None),
        Some(j) => j,
    };
    let key = obj_str(&v, "key").ok_or("claim: missing key")?.to_owned();
    let job = FarmJob::from_value(job_v).map_err(|e| format!("claim: bad job: {e}"))?;
    let ttl = Duration::from_millis(obj_u64(&v, "ttl_ms").unwrap_or(10_000));
    Ok(Some(Claimed { key, job, ttl }))
}

/// Upload the report; retries on transport errors and 503 (another
/// upload of the same key in flight). The lease reaper bounds how long
/// a failed upload can delay the job, so the retry budget is small.
fn complete(net: &dyn Transport, addr: SocketAddr, name: &str, key: &str, report: &Value) -> bool {
    let mut body = Map::new();
    body.insert("worker".into(), Value::Str(name.to_owned()));
    body.insert("report".into(), report.clone());
    let body = json::to_string(&Value::Object(body));
    let path = format!("/v1/work/{key}/complete");
    for attempt in 0..5u32 {
        match net.call(addr, "POST", &path, Some(&body)) {
            Ok((200, _)) => return true,
            Ok((503, _)) | Err(_) => {
                std::thread::sleep(Duration::from_millis(50 << attempt));
            }
            Ok((status, text)) => {
                eprintln!("[worker {name}] complete {key}: HTTP {status}: {text}");
                return false;
            }
        }
    }
    eprintln!("[worker {name}] complete {key}: gave up after retries (lease will requeue)");
    false
}

fn fail(net: &dyn Transport, addr: SocketAddr, name: &str, key: &str, kind: &str, message: &str) {
    let mut body = Map::new();
    body.insert("worker".into(), Value::Str(name.to_owned()));
    body.insert("kind".into(), Value::Str(kind.to_owned()));
    body.insert("message".into(), Value::Str(message.to_owned()));
    let body = json::to_string(&Value::Object(body));
    let path = format!("/v1/work/{key}/fail");
    for attempt in 0..3u32 {
        match net.call(addr, "POST", &path, Some(&body)) {
            Ok((200, _)) | Ok((409, _)) => return,
            _ => std::thread::sleep(Duration::from_millis(50 << attempt)),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: ptb_worker --addr HOST:PORT [--name NAME] [--ttl-ms N] [--poll-ms N] \
             [--max-jobs N] [--idle-exit SECS] [--job-timeout SECS] \
             [--chaos RATE] [--chaos-seed N] [--hold-ms N]"
        );
        return;
    }
    let addr: SocketAddr = match flag(&args, "--addr").and_then(|a| a.parse().ok()) {
        Some(a) => a,
        None => {
            eprintln!("error: --addr HOST:PORT is required");
            std::process::exit(2);
        }
    };
    let name = flag(&args, "--name").unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let ttl_ms = flag(&args, "--ttl-ms").and_then(|v| v.parse::<u64>().ok());
    let poll = Duration::from_millis(
        flag(&args, "--poll-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(200),
    );
    let max_jobs = flag(&args, "--max-jobs").and_then(|v| v.parse::<u64>().ok());
    let idle_exit = flag(&args, "--idle-exit")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs);
    let job_timeout = flag(&args, "--job-timeout")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs);
    let hold = flag(&args, "--hold-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);

    let chaos_rate = flag(&args, "--chaos")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0);
    let chaos: Option<Arc<ChaosNet>> = (chaos_rate > 0.0).then(|| {
        let seed = flag(&args, "--chaos-seed")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        eprintln!("[worker {name}] NET CHAOS: fault rate {chaos_rate}, seed {seed}");
        Arc::new(ChaosNet::new(NetChaosConfig::uniform(seed, chaos_rate)))
    });
    let net: Arc<dyn Transport> = match &chaos {
        Some(c) => c.clone(),
        None => Arc::new(RealNet),
    };

    eprintln!("[worker {name}] pulling from http://{addr}");
    let mut done = 0u64;
    let mut idle_since = Instant::now();
    loop {
        if max_jobs.is_some_and(|m| done >= m) {
            eprintln!("[worker {name}] --max-jobs reached after {done} jobs");
            break;
        }
        let claimed = match claim(net.as_ref(), addr, &name, ttl_ms) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("[worker {name}] {e}");
                std::thread::sleep(poll);
                continue;
            }
        };
        let Some(Claimed { key, job, ttl }) = claimed else {
            if idle_exit.is_some_and(|d| idle_since.elapsed() >= d) {
                eprintln!("[worker {name}] idle for {:?}, exiting", idle_exit.unwrap());
                break;
            }
            std::thread::sleep(poll);
            continue;
        };
        idle_since = Instant::now();
        eprintln!("[worker {name}] claimed {key} ({})", job.label());
        if let Some(h) = hold {
            // Test hook: provably holding a lease while killable.
            std::thread::sleep(h);
        }

        // Heartbeat at ttl/3 until the job settles; a 409 means the
        // lease is gone (expired or reassigned) — keep working anyway,
        // the server accepts correct results from expired leases.
        let hb_stop = Arc::new(AtomicBool::new(false));
        let hb = {
            let stop = hb_stop.clone();
            let net = net.clone();
            let name = name.clone();
            let key = key.clone();
            let interval = ttl / 3;
            std::thread::spawn(move || {
                let body = json::to_string(&Value::Object({
                    let mut m = Map::new();
                    m.insert("worker".into(), Value::Str(name.clone()));
                    m
                }));
                loop {
                    let deadline = Instant::now() + interval;
                    while Instant::now() < deadline {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    let path = format!("/v1/work/{key}/heartbeat");
                    match net.call(addr, "POST", &path, Some(&body)) {
                        Ok((200, _)) => {}
                        Ok((409, _)) => {
                            eprintln!("[worker {name}] lease on {key} lost");
                            return;
                        }
                        _ => {} // transient; the next beat may land
                    }
                }
            })
        };

        let deadline = job_timeout.map(|d| Instant::now() + d);
        let outcome = job.try_simulate(deadline);
        hb_stop.store(true, Ordering::Relaxed);
        hb.join().ok();

        match outcome {
            Ok(report) => {
                if complete(net.as_ref(), addr, &name, &key, &report.to_value()) {
                    done += 1;
                    eprintln!("[worker {name}] completed {key} ({done} total)");
                }
            }
            Err(fault) => {
                let (kind, msg) = match &fault {
                    JobFault::Transient(m) => ("transient", m.as_str()),
                    JobFault::Fatal(m) => ("fatal", m.as_str()),
                    JobFault::Timeout(m) => ("timeout", m.as_str()),
                };
                eprintln!("[worker {name}] {key} failed ({kind}): {msg}");
                fail(net.as_ref(), addr, &name, &key, kind, msg);
            }
        }
    }
    if let Some(c) = &chaos {
        for (k, v) in c.counters() {
            eprintln!("[worker {name}] {k} = {v}");
        }
    }
}
