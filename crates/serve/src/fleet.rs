//! Fleet execution: the lease table behind the `/v1/work/*` endpoints.
//!
//! Remote `ptb_worker` processes *pull* work — the server never dials
//! out. A claim moves a queued job to `Leased(worker)` under a
//! monotonic-clock TTL; heartbeats extend it; `complete` uploads the
//! report (verified against the content-addressed key, then committed
//! through the same store path as local execution); `fail` maps the
//! worker's typed fault onto the farm's retry/quarantine taxonomy. The
//! reaper requeues expired leases so a SIGKILLed worker costs latency,
//! never a result, and `max_claims` bounds how often a poison job can
//! kill claimants before it is quarantined.
//!
//! ## Idempotency and divergence
//!
//! Workers retry over a faulty network, so every endpoint tolerates
//! duplicate delivery. The interesting case is a duplicate `complete`:
//! the first upload stores the report; a second upload for the same
//! key is byte-compared against the stored one — identical bytes are
//! acknowledged as a duplicate (the lost-ACK retry shape), while
//! *divergent* bytes mean a determinism violation somewhere in the
//! fleet and are refused, counted, and surfaced in `/v1/status` as a
//! hard error. A simulation is deterministic; two honest workers can
//! never disagree.
//!
//! ## Races, and why they are safe
//!
//! * **Complete vs. local drain**: the committing thread flips the job
//!   to `Leased` and pulls its key out of the submission queue *inside
//!   the jobs lock, before the store write*; the scheduler drains only
//!   keys still `Queued`, so a job cannot simultaneously run locally
//!   and commit remotely.
//! * **Concurrent duplicate completes**: a per-key `completing` guard
//!   turns the loser into a 503 retry, which then lands in the
//!   byte-compare path above.
//! * **Zombie worker after reassignment**: a worker whose lease
//!   expired (and whose job was reclaimed) may still finish and
//!   upload. Whoever commits first wins; the other lands in the
//!   duplicate path. Results are content-addressed, so "first" and
//!   "second" are byte-identical by construction.

use crate::state::{JobState, ServeState};
use ptb_core::RunReport;
use ptb_farm::{FarmJob, JobError, StoreLookup};
use serde::{json, Map, Serialize, Value};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One live lease.
#[derive(Debug, Clone)]
pub struct LeaseRec {
    /// Worker holding the lease.
    pub worker: String,
    /// TTL granted (heartbeats re-arm this much).
    pub ttl: Duration,
    /// Monotonic expiry deadline.
    pub expires: Instant,
    /// Heartbeats received.
    pub heartbeats: u64,
    /// Free-form progress string from the last heartbeat.
    pub progress: Option<String>,
}

/// Per-worker bookkeeping, keyed by the worker's self-reported name.
#[derive(Debug, Clone)]
pub struct WorkerRec {
    /// Last contact on any fleet endpoint (monotonic).
    pub last_seen: Instant,
    /// Jobs claimed.
    pub claimed: u64,
    /// Jobs completed (stored or acknowledged duplicate).
    pub completed: u64,
    /// Jobs failed.
    pub failed: u64,
}

/// `serve.lease.*` / `fleet.*` counters.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// Leases granted.
    pub claimed: AtomicU64,
    /// Heartbeats accepted.
    pub heartbeats: AtomicU64,
    /// Leases expired by the reaper.
    pub expired: AtomicU64,
    /// Expired-lease jobs returned to the queue.
    pub requeued: AtomicU64,
    /// Divergent duplicate completions (hard errors).
    pub divergent: AtomicU64,
    /// Reports stored via remote completion.
    pub complete_stored: AtomicU64,
    /// Byte-identical duplicate completions acknowledged.
    pub complete_duplicate: AtomicU64,
    /// Completions that arrived while the local executor owned the job.
    pub complete_raced: AtomicU64,
    /// Transient remote failures (requeued).
    pub fail_transient: AtomicU64,
    /// Fatal remote failures (quarantined).
    pub fail_fatal: AtomicU64,
    /// Remote watchdog timeouts (quarantined).
    pub fail_timeout: AtomicU64,
    /// Jobs quarantined from the remote path (poison or retries
    /// exhausted).
    pub quarantined: AtomicU64,
}

/// Lease table, worker registry, and divergence ledger.
#[derive(Default)]
pub struct FleetState {
    pub(crate) leases: Mutex<HashMap<String, LeaseRec>>,
    pub(crate) workers: Mutex<HashMap<String, WorkerRec>>,
    /// `(key, worker)` pairs whose uploads diverged from stored bytes.
    pub(crate) divergent: Mutex<Vec<(String, String)>>,
    /// Keys with a completion commit in flight (concurrency guard).
    pub(crate) completing: Mutex<HashSet<String>>,
    /// The `fleet.*` metrics.
    pub metrics: FleetMetrics,
}

impl FleetState {
    /// Record contact from `worker`, creating its record on first
    /// sight, and apply `f` to it.
    fn note_worker(&self, worker: &str, f: impl FnOnce(&mut WorkerRec)) {
        let mut workers = self.workers.lock().expect("workers lock");
        let rec = workers.entry(worker.to_owned()).or_insert(WorkerRec {
            last_seen: Instant::now(),
            claimed: 0,
            completed: 0,
            failed: 0,
        });
        rec.last_seen = Instant::now();
        f(rec);
    }

    /// Leases currently live.
    pub fn lease_count(&self) -> usize {
        self.leases.lock().expect("leases lock").len()
    }

    /// Snapshot of the lease table.
    pub fn leases_snapshot(&self) -> Vec<(String, LeaseRec)> {
        let leases = self.leases.lock().expect("leases lock");
        leases.iter().map(|(k, l)| (k.clone(), l.clone())).collect()
    }

    /// Snapshot of the worker registry.
    pub fn workers_snapshot(&self) -> Vec<(String, WorkerRec)> {
        let workers = self.workers.lock().expect("workers lock");
        workers
            .iter()
            .map(|(n, w)| (n.clone(), w.clone()))
            .collect()
    }

    /// Keys whose duplicate completions diverged, with the offending
    /// worker.
    pub fn divergent_snapshot(&self) -> Vec<(String, String)> {
        self.divergent.lock().expect("divergent lock").clone()
    }

    /// Export the fleet counters into `c`.
    pub fn fill_counters(&self, c: &mut ptb_obs::CounterRegistry) {
        let m = &self.metrics;
        c.set(
            "serve.lease.claimed",
            m.claimed.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "serve.lease.heartbeats",
            m.heartbeats.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "serve.lease.expired",
            m.expired.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "serve.lease.requeued",
            m.requeued.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "serve.lease.divergent",
            m.divergent.load(Ordering::Relaxed) as f64,
        );
        c.set("serve.lease.active", self.lease_count() as f64);
        c.set(
            "fleet.complete.stored",
            m.complete_stored.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "fleet.complete.duplicate",
            m.complete_duplicate.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "fleet.complete.raced",
            m.complete_raced.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "fleet.fail.transient",
            m.fail_transient.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "fleet.fail.fatal",
            m.fail_fatal.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "fleet.fail.timeout",
            m.fail_timeout.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "fleet.quarantined",
            m.quarantined.load(Ordering::Relaxed) as f64,
        );
        c.set(
            "fleet.workers",
            self.workers.lock().expect("workers lock").len() as f64,
        );
    }
}

/// How a `complete` upload resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompleteOutcome {
    /// First completion: report verified and stored.
    Stored,
    /// Byte-identical to the already-stored report (lost-ACK retry).
    Duplicate,
    /// Diverges from the already-stored report — a determinism
    /// violation, refused and surfaced in `/v1/status`.
    Divergent,
    /// The local executor owns the job right now; the upload is
    /// acknowledged but discarded (the local result will land).
    RacedLocal,
    /// Transient server-side trouble; the worker should retry.
    Retry(String),
    /// The upload is malformed or does not answer for this key.
    Invalid(String),
    /// The report could not be persisted (non-transient store fault).
    StoreError(String),
}

/// How a `fail` report resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailOutcome {
    /// Transient fault under the retry budget: requeued.
    Requeued {
        /// Remote attempts consumed so far.
        attempts: u32,
    },
    /// Retries exhausted or the fault was fatal: quarantined to
    /// `failed.jsonl`.
    Quarantined,
}

/// Why a fleet request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetRefusal {
    /// The caller does not hold the lease (expired, reassigned, or
    /// never granted). Maps to 409.
    LeaseLost,
    /// The request itself is malformed. Maps to 400.
    Bad(String),
}

impl ServeState {
    /// True when at least one fleet worker has been heard from within
    /// `worker_grace` — the signal for the local scheduler to hold
    /// back.
    pub fn remote_active(&self) -> bool {
        let grace = self.cfg.worker_grace;
        let workers = self.fleet.workers.lock().expect("workers lock");
        workers.values().any(|w| w.last_seen.elapsed() < grace)
    }

    /// Whether the local scheduler may take work right now.
    pub(crate) fn local_may_run(&self) -> bool {
        self.cfg.local_execution && !self.remote_active()
    }

    /// Lease the oldest queued job to `worker`. `None` when the queue
    /// has nothing claimable. The granted TTL is the requested one
    /// clamped to `lease_max_ttl` (default `lease_default_ttl`).
    pub fn claim(
        &self,
        worker: &str,
        requested_ttl: Option<Duration>,
    ) -> Option<(String, FarmJob, Duration)> {
        let ttl = requested_ttl
            .unwrap_or(self.cfg.lease_default_ttl)
            .min(self.cfg.lease_max_ttl);
        self.fleet.note_worker(worker, |_| {});
        loop {
            let key = self.queue.lock().expect("queue lock").pop_front()?;
            let job = {
                let mut jobs = self.jobs.lock().expect("jobs lock");
                match jobs.get_mut(&key) {
                    Some(rec) if rec.state == JobState::Queued => {
                        rec.state = JobState::Leased(worker.to_owned());
                        rec.claims += 1;
                        Some(rec.job.clone())
                    }
                    // Settled or reclaimed while queued: skip the stale
                    // queue entry and keep looking.
                    _ => None,
                }
            };
            let Some(job) = job else { continue };
            self.fleet.leases.lock().expect("leases lock").insert(
                key.clone(),
                LeaseRec {
                    worker: worker.to_owned(),
                    ttl,
                    expires: Instant::now() + ttl,
                    heartbeats: 0,
                    progress: None,
                },
            );
            self.fleet.metrics.claimed.fetch_add(1, Ordering::Relaxed);
            self.fleet.note_worker(worker, |w| w.claimed += 1);
            // Journal the hand-off (duplicate submit lines are ignored
            // by replay) so a server crash still knows what was owed.
            self.farm.record_pending(std::slice::from_ref(&job)).ok();
            return Some((key, job, ttl));
        }
    }

    /// Extend `worker`'s lease on `key` by its TTL. Returns the TTL on
    /// success; `LeaseLost` when the lease expired or moved on.
    pub fn heartbeat(
        &self,
        worker: &str,
        key: &str,
        progress: Option<String>,
    ) -> Result<Duration, FleetRefusal> {
        self.fleet.note_worker(worker, |_| {});
        let mut leases = self.fleet.leases.lock().expect("leases lock");
        match leases.get_mut(key) {
            Some(l) if l.worker == worker => {
                l.expires = Instant::now() + l.ttl;
                l.heartbeats += 1;
                if progress.is_some() {
                    l.progress = progress;
                }
                self.fleet
                    .metrics
                    .heartbeats
                    .fetch_add(1, Ordering::Relaxed);
                Ok(l.ttl)
            }
            _ => Err(FleetRefusal::LeaseLost),
        }
    }

    /// Accept a completed report for `key` from `worker`.
    ///
    /// Accepted *regardless of lease state* — a worker whose lease
    /// expired mid-upload still carries a correct, content-addressed
    /// result, and refusing it would only waste work. Idempotency and
    /// divergence are resolved by byte comparison (see module docs).
    pub fn complete(&self, worker: &str, key: &str, report: RunReport) -> CompleteOutcome {
        self.fleet.note_worker(worker, |_| {});
        {
            let mut completing = self.fleet.completing.lock().expect("completing lock");
            if !completing.insert(key.to_owned()) {
                return CompleteOutcome::Retry(
                    "another completion for this key is in flight".into(),
                );
            }
        }
        let out = self.complete_inner(worker, key, report);
        self.fleet
            .completing
            .lock()
            .expect("completing lock")
            .remove(key);
        match &out {
            CompleteOutcome::Stored => {
                self.fleet
                    .metrics
                    .complete_stored
                    .fetch_add(1, Ordering::Relaxed);
                self.fleet.note_worker(worker, |w| w.completed += 1);
            }
            CompleteOutcome::Duplicate => {
                self.fleet
                    .metrics
                    .complete_duplicate
                    .fetch_add(1, Ordering::Relaxed);
                self.fleet.note_worker(worker, |w| w.completed += 1);
            }
            CompleteOutcome::RacedLocal => {
                self.fleet
                    .metrics
                    .complete_raced
                    .fetch_add(1, Ordering::Relaxed);
            }
            CompleteOutcome::Divergent => {
                self.fleet.metrics.divergent.fetch_add(1, Ordering::Relaxed);
                self.fleet
                    .divergent
                    .lock()
                    .expect("divergent lock")
                    .push((key.to_owned(), worker.to_owned()));
            }
            _ => {}
        }
        out
    }

    fn complete_inner(&self, worker: &str, key: &str, report: RunReport) -> CompleteOutcome {
        let job = {
            let jobs = self.jobs.lock().expect("jobs lock");
            match jobs.get(key) {
                Some(rec) => rec.job.clone(),
                None => return CompleteOutcome::Invalid(format!("unknown job {key:?}")),
            }
        };
        // Cheap identity screen before the store's own embedded-job
        // verification: the upload must at least claim to be this job.
        if report.benchmark != job.bench.name()
            || report.n_cores != job.config.n_cores
            || report.mechanism != job.config.mechanism.label()
        {
            return CompleteOutcome::Invalid(format!(
                "report identifies as {}/{}/{}c but key {key} addresses {}",
                report.benchmark,
                report.mechanism,
                report.n_cores,
                job.label()
            ));
        }
        // Take ownership inside the jobs lock, before the store write:
        // flipping to Leased(us) and unlinking the queue entry closes
        // the race with the local scheduler's drain.
        {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            let rec = jobs.get_mut(key).expect("checked above");
            match rec.state.clone() {
                JobState::Done => {
                    drop(jobs);
                    return self.compare_against_store(key, &job, &report);
                }
                JobState::Running => return CompleteOutcome::RacedLocal,
                JobState::Queued | JobState::Leased(_) | JobState::Failed(_) => {
                    rec.state = JobState::Leased(worker.to_owned());
                    drop(jobs);
                    let mut queue = self.queue.lock().expect("queue lock");
                    queue.retain(|k| k != key);
                }
            }
        }
        match self.farm.commit_remote(key, &job, &report) {
            Ok(()) => {
                let mut jobs = self.jobs.lock().expect("jobs lock");
                if let Some(rec) = jobs.get_mut(key) {
                    rec.state = JobState::Done;
                    rec.executed_by = Some(worker.to_owned());
                }
                drop(jobs);
                self.fleet.leases.lock().expect("leases lock").remove(key);
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                CompleteOutcome::Stored
            }
            Err(e) if e.transient() => {
                // Put the job back; this worker (or any other) retries.
                let mut jobs = self.jobs.lock().expect("jobs lock");
                if let Some(rec) = jobs.get_mut(key) {
                    rec.state = JobState::Queued;
                }
                drop(jobs);
                self.queue
                    .lock()
                    .expect("queue lock")
                    .push_back(key.to_owned());
                self.wake.notify_all();
                CompleteOutcome::Retry(format!("store write failed transiently: {e}"))
            }
            Err(e) => {
                let msg = format!("report for {key} cannot be persisted: {e}");
                let job_err = JobError::Failed {
                    message: msg.clone(),
                    attempts: 1,
                };
                self.quarantine_remote(key, &job, &job_err);
                CompleteOutcome::StoreError(msg)
            }
        }
    }

    /// Byte-compare an uploaded report against the stored one.
    fn compare_against_store(
        &self,
        key: &str,
        job: &FarmJob,
        report: &RunReport,
    ) -> CompleteOutcome {
        match self.farm.store().get(key, job) {
            StoreLookup::Hit(stored) => {
                let stored_bytes = json::to_string(&stored.to_value());
                let uploaded_bytes = json::to_string(&report.to_value());
                if stored_bytes == uploaded_bytes {
                    CompleteOutcome::Duplicate
                } else {
                    CompleteOutcome::Divergent
                }
            }
            // Done in the registry but not readable from the store
            // (evicted or corrupt): treat the upload as authoritative
            // by requeueing the key for a clean re-commit.
            _ => CompleteOutcome::Retry("stored report unavailable for comparison".into()),
        }
    }

    /// Process a typed failure report from `worker` for `key`.
    pub fn fail(
        &self,
        worker: &str,
        key: &str,
        kind: &str,
        message: &str,
    ) -> Result<FailOutcome, FleetRefusal> {
        self.fleet.note_worker(worker, |_| {});
        // Validate the kind before touching the lease: a malformed
        // request must not consume it and strand the job.
        if !matches!(kind, "transient" | "fatal" | "timeout") {
            return Err(FleetRefusal::Bad(format!(
                "unknown fault kind {kind:?} (expected transient|fatal|timeout)"
            )));
        }
        // Only the lease holder may fail a job: a zombie's stale
        // verdict must not quarantine work that has moved on.
        {
            let mut leases = self.fleet.leases.lock().expect("leases lock");
            match leases.get(key) {
                Some(l) if l.worker == worker => {
                    leases.remove(key);
                }
                _ => return Err(FleetRefusal::LeaseLost),
            }
        }
        self.fleet.note_worker(worker, |w| w.failed += 1);
        let job = {
            let jobs = self.jobs.lock().expect("jobs lock");
            match jobs.get(key) {
                Some(rec) => rec.job.clone(),
                None => return Err(FleetRefusal::Bad(format!("unknown job {key:?}"))),
            }
        };
        let label = job.label();
        match kind {
            "transient" => {
                self.fleet
                    .metrics
                    .fail_transient
                    .fetch_add(1, Ordering::Relaxed);
                let (attempts, requeue) = {
                    let mut jobs = self.jobs.lock().expect("jobs lock");
                    let rec = jobs.get_mut(key).expect("checked above");
                    rec.remote_attempts += 1;
                    let attempts = rec.remote_attempts;
                    let requeue = attempts < self.cfg.remote_retry_max;
                    // Only requeue if the key is still ours: a zombie
                    // completion may have taken over meanwhile.
                    if requeue && rec.state == JobState::Leased(worker.to_owned()) {
                        rec.state = JobState::Queued;
                    }
                    (attempts, requeue)
                };
                if requeue {
                    self.queue
                        .lock()
                        .expect("queue lock")
                        .push_back(key.to_owned());
                    self.wake.notify_all();
                    Ok(FailOutcome::Requeued { attempts })
                } else {
                    let err = JobError::Failed {
                        message: format!("{label}: {message} (remote retries exhausted)"),
                        attempts,
                    };
                    self.quarantine_remote(key, &job, &err);
                    Ok(FailOutcome::Quarantined)
                }
            }
            "fatal" => {
                self.fleet
                    .metrics
                    .fail_fatal
                    .fetch_add(1, Ordering::Relaxed);
                let err = JobError::Failed {
                    message: format!("{label}: {message}"),
                    attempts: 1,
                };
                self.quarantine_remote(key, &job, &err);
                Ok(FailOutcome::Quarantined)
            }
            "timeout" => {
                self.fleet
                    .metrics
                    .fail_timeout
                    .fetch_add(1, Ordering::Relaxed);
                let err = JobError::TimedOut {
                    message: format!("{label}: {message}"),
                };
                self.quarantine_remote(key, &job, &err);
                Ok(FailOutcome::Quarantined)
            }
            _ => unreachable!("kind validated above"),
        }
    }

    fn quarantine_remote(&self, key: &str, job: &FarmJob, err: &JobError) {
        self.fleet
            .metrics
            .quarantined
            .fetch_add(1, Ordering::Relaxed);
        self.metrics.failed.fetch_add(1, Ordering::Relaxed);
        if let Err(qe) = self.farm.quarantine_job(job, err) {
            eprintln!("warning: cannot quarantine {key}: {qe}");
        }
        let mut jobs = self.jobs.lock().expect("jobs lock");
        if let Some(rec) = jobs.get_mut(key) {
            // Never clobber a result that landed meanwhile.
            if rec.state != JobState::Done {
                rec.state = JobState::Failed(err.to_string());
            }
        }
    }

    /// One reaper pass over the lease table: expired leases are
    /// removed, their jobs requeued — or quarantined once a key has
    /// burned `max_claims` claims (a job that keeps killing or
    /// stalling its claimants is poison, not unlucky).
    pub fn reap_expired_leases(&self) {
        let now = Instant::now();
        let expired: Vec<(String, String)> = {
            let mut leases = self.fleet.leases.lock().expect("leases lock");
            let gone: Vec<(String, String)> = leases
                .iter()
                .filter(|(_, l)| l.expires <= now)
                .map(|(k, l)| (k.clone(), l.worker.clone()))
                .collect();
            for (k, _) in &gone {
                leases.remove(k);
            }
            gone
        };
        for (key, worker) in expired {
            self.fleet.metrics.expired.fetch_add(1, Ordering::Relaxed);
            eprintln!("[fleet] lease on {key} (worker {worker}) expired");
            let action = {
                let mut jobs = self.jobs.lock().expect("jobs lock");
                match jobs.get_mut(&key) {
                    // Only act while the key is still leased to the
                    // expired holder; anything else means the job
                    // already moved on (completed, failed, re-leased).
                    Some(rec) if rec.state == JobState::Leased(worker.clone()) => {
                        if rec.claims >= self.cfg.max_claims {
                            Some((rec.job.clone(), rec.claims))
                        } else {
                            rec.state = JobState::Queued;
                            None
                        }
                    }
                    _ => continue,
                }
            };
            match action {
                Some((job, claims)) => {
                    let err = JobError::Failed {
                        message: format!(
                            "{}: lease expired {claims} times; claimants died or stalled",
                            job.label()
                        ),
                        attempts: claims,
                    };
                    self.quarantine_remote(&key, &job, &err);
                }
                None => {
                    self.fleet.metrics.requeued.fetch_add(1, Ordering::Relaxed);
                    self.queue.lock().expect("queue lock").push_back(key);
                    self.wake.notify_all();
                }
            }
        }
    }

    /// Prune worker records not heard from for `idle`; returns how
    /// many were dropped (used by `farm_ctl workers --prune` via the
    /// status endpoint — the registry itself is bounded by fleet size,
    /// so this is cosmetic, not a leak fix).
    pub fn prune_workers(&self, idle: Duration) -> usize {
        let mut workers = self.fleet.workers.lock().expect("workers lock");
        let before = workers.len();
        workers.retain(|_, w| w.last_seen.elapsed() < idle);
        before - workers.len()
    }
}

/// Claim-response wire form: `{"key", "job", "ttl_ms"}`. Kept here so
/// the API layer, the worker binary, and the tests agree on one shape.
pub fn claim_response_value(key: &str, job: &FarmJob, ttl: Duration) -> Value {
    let mut m = Map::new();
    m.insert("key".into(), Value::Str(key.to_owned()));
    m.insert("job".into(), job.to_value());
    m.insert("ttl_ms".into(), Value::U64(ttl.as_millis() as u64));
    Value::Object(m)
}
