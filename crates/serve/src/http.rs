//! Hand-rolled HTTP/1.1 plumbing: request parsing, response writing,
//! and a bounded-worker-pool TCP server.
//!
//! The offline vendor set has no tokio/hyper, and the serving problem
//! does not need them: every request is a short JSON exchange, so
//! blocking I/O on a fixed pool of worker threads with a bounded accept
//! queue is both simpler and easier to reason about under load — when
//! the queue is full the accept loop answers `503` immediately instead
//! of building an unbounded backlog (the counters record every
//! rejection, so loadgen can assert nothing was silently dropped).
//!
//! Protocol scope, deliberately narrow:
//!
//! * one request per connection (`Connection: close` on every reply);
//! * request heads are capped at [`MAX_HEAD`] bytes and bodies at
//!   [`MAX_BODY`] bytes — a malformed or hostile peer costs one bounded
//!   read, never memory;
//! * only `Content-Length` bodies (no chunked uploads) — every client
//!   this repo ships speaks exactly that.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on the request line + headers, in bytes.
pub const MAX_HEAD: usize = 16 * 1024;

/// Cap on a request body, in bytes (a batch of a few hundred full
/// `SimConfig`s is well under 1 MiB).
pub const MAX_BODY: usize = 8 << 20;

/// A parsed request: method, split path/query, UTF-8 body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (e.g. `/v1/batches`).
    pub path: String,
    /// Decoded `key=value` query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

impl Request {
    /// First query value under `name`, parsed as `u64`.
    pub fn query_u64(&self, name: &str) -> Option<u64> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.parse().ok())
    }
}

/// A response payload: either buffered bytes (the common case, sent
/// with a `Content-Length`) or a streaming writer invoked directly on
/// the connection (no `Content-Length`; the peer reads until the server
/// closes). Streaming bodies exist for NDJSON endpoints like
/// `/v1/metrics/stream`, where a write error means the client is gone
/// and the producer must stop instead of buffering into the void.
pub enum Body {
    /// Fully materialised body bytes.
    Bytes(Vec<u8>),
    /// Writer called with the live connection after the head is sent.
    Stream(StreamProducer),
}

/// The boxed writer behind [`Body::Stream`].
pub type StreamProducer = Box<dyn FnOnce(&mut dyn Write) -> io::Result<()> + Send>;

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Body::Bytes(b) => write!(f, "Bytes({} bytes)", b.len()),
            Body::Stream(_) => f.write_str("Stream(..)"),
        }
    }
}

/// A response about to be written: status, content type, body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Body,
}

impl Response {
    /// A JSON response from pre-serialised text.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: Body::Bytes(body.into_bytes()),
        }
    }

    /// A streaming response: `write` is handed the connection after the
    /// head goes out. No `Content-Length` is sent — the client reads to
    /// EOF — so a write error (peer disconnected) simply aborts the
    /// producer.
    pub fn stream(
        status: u16,
        content_type: &'static str,
        write: impl FnOnce(&mut dyn Write) -> io::Result<()> + Send + 'static,
    ) -> Response {
        Response {
            status,
            content_type,
            body: Body::Stream(Box::new(write)),
        }
    }

    /// A JSON error object `{"error": msg}`.
    pub fn error(status: u16, msg: &str) -> Response {
        let v = serde::Value::Object(
            [("error".to_owned(), serde::Value::Str(msg.to_owned()))]
                .into_iter()
                .collect(),
        );
        Response::json(status, serde::json::to_string(&v))
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialise onto `stream` (one-shot connection: always closes).
    ///
    /// Buffered bodies go out with a `Content-Length`; streaming bodies
    /// omit it (the close delimits the body) and hand the connection to
    /// the producer, whose first failed write ends the stream.
    pub fn write_to(self, stream: &mut TcpStream) -> io::Result<()> {
        let (status, reason) = (self.status, self.reason());
        match self.body {
            Body::Bytes(bytes) => {
                let head = format!(
                    "HTTP/1.1 {status} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    self.content_type,
                    bytes.len()
                );
                stream.write_all(head.as_bytes())?;
                stream.write_all(&bytes)?;
                stream.flush()
            }
            Body::Stream(producer) => {
                let head = format!(
                    "HTTP/1.1 {status} {reason}\r\nContent-Type: {}\r\nConnection: close\r\n\r\n",
                    self.content_type,
                );
                stream.write_all(head.as_bytes())?;
                producer(stream)?;
                stream.flush()
            }
        }
    }

    /// The buffered body bytes, if any (streaming bodies return `None`).
    pub fn body_bytes(&self) -> Option<&[u8]> {
        match &self.body {
            Body::Bytes(b) => Some(b),
            Body::Stream(_) => None,
        }
    }
}

/// Parse one request from `stream`, enforcing the head/body caps.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    if line.len() > MAX_HEAD {
        return Err("request line too long".into());
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let target = parts.next().ok_or("request line missing target")?;
    let version = parts.next().ok_or("request line missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), parse_query(q)),
        None => (target.to_owned(), Vec::new()),
    };

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 {
            return Err("connection closed inside headers".into());
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD {
            return Err("headers too large".into());
        }
        let trimmed = header.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "unparsable content-length".to_owned())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds cap"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Split `a=1&b=2` (no percent-decoding: every key/value this API uses
/// is plain ASCII).
fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (pair.to_owned(), String::new()),
        })
        .collect()
}

/// Request handler shared by every worker thread.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Pool sizing and per-connection limits.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections queued ahead of the workers; when full,
    /// further connections are answered `503` immediately.
    pub queue_depth: usize,
    /// Per-connection read timeout (slow or stalled peers release their
    /// worker after this).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_depth: 128,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// A running server: accept thread + bounded worker pool.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    rejected: Arc<AtomicU64>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral test port) and start
    /// serving `handler` on `cfg.workers` threads.
    pub fn spawn(addr: &str, cfg: ServerConfig, handler: Handler) -> io::Result<Server> {
        Server::spawn_with(addr, cfg, handler, Arc::new(AtomicU64::new(0)))
    }

    /// Like [`Server::spawn`], but queue-full rejections increment the
    /// caller's counter too, so handlers can export it as a metric.
    pub fn spawn_with(
        addr: &str,
        cfg: ServerConfig,
        handler: Handler,
        rejected: Arc<AtomicU64>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::new();
        for _ in 0..cfg.workers.max(1) {
            let rx = rx.clone();
            let handler = handler.clone();
            let timeout = cfg.read_timeout;
            workers.push(std::thread::spawn(move || loop {
                // Take the next connection, releasing the receiver lock
                // before doing any I/O so the pool drains in parallel.
                let next = { rx.lock().expect("worker queue lock").recv() };
                match next {
                    Ok(stream) => handle_connection(stream, &handler, timeout),
                    Err(_) => break, // accept loop gone: shut down
                }
            }));
        }
        let accept = {
            let shutdown = shutdown.clone();
            let rejected = rejected.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(mut stream)) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            Response::error(503, "request queue full")
                                .write_to(&mut stream)
                                .ok();
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => break,
                    }
                }
                // Dropping `tx` closes the channel; workers drain the
                // queued connections and then exit.
            })
        };
        Ok(Server {
            addr,
            shutdown,
            accept: Some(accept),
            workers,
            rejected,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections answered `503` because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain the queue, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop's blocking `incoming()` with one last
        // connection; it observes the flag and exits.
        TcpStream::connect(self.addr).ok();
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        for h in self.workers.drain(..) {
            h.join().ok();
        }
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Handler, timeout: Duration) {
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    let response = match read_request(&mut stream) {
        Ok(req) => handler(&req),
        Err(e) => Response::error(400, &format!("bad request: {e}")),
    };
    // A peer that vanished mid-reply is its own problem.
    response.write_to(&mut stream).ok();
}

/// Minimal one-shot HTTP client for the bundled tools and tests: sends
/// one request, reads to EOF (the server always closes), returns
/// `(status, body)`.
pub fn http_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: ptb-serve\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unparsable status line"))?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_round_trips_and_rejects_bad_requests() {
        let handler: Handler = Arc::new(|req: &Request| {
            Response::json(
                200,
                format!(
                    "{{\"method\":\"{}\",\"path\":\"{}\",\"n\":{}}}",
                    req.method,
                    req.path,
                    req.query_u64("n").unwrap_or(0)
                ),
            )
        });
        let server = Server::spawn("127.0.0.1:0", ServerConfig::default(), handler).unwrap();
        let addr = server.addr();
        let (status, body) = http_call(addr, "GET", "/x/y?n=7", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"method\":\"GET\",\"path\":\"/x/y\",\"n\":7}");

        // Garbage on the wire → 400, and the server keeps serving.
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut resp = String::new();
        raw.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let (status, _) = http_call(addr, "GET", "/still/up", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn post_bodies_round_trip() {
        let handler: Handler =
            Arc::new(|req: &Request| Response::json(200, format!("\"{}\"", req.body.len())));
        let server = Server::spawn("127.0.0.1:0", ServerConfig::default(), handler).unwrap();
        let payload = "x".repeat(10_000);
        let (status, body) = http_call(server.addr(), "POST", "/in", Some(&payload)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "\"10000\"");
        server.shutdown();
    }
}
