//! Seeded, replayable network fault injection for fleet workers.
//!
//! The farm's `ChaosIo` proves the store/journal degradation paths by
//! making every filesystem fault a pure function of (seed, op, ordinal).
//! [`ChaosNet`] extends the same discipline to the wire: it wraps the
//! worker's one-shot HTTP client ([`Transport`]) and injects
//!
//! * dropped requests (the connection "fails" before anything is sent);
//! * duplicated requests (the same call hits the server twice — the
//!   retry-after-lost-ACK shape that exercises server idempotency);
//! * truncated responses (the body is cut mid-byte, so the caller sees
//!   a parse error and must treat the outcome as unknown);
//! * injected latency (a seeded pause before the call, widening race
//!   windows around lease expiry);
//! * mid-upload disconnects (the request head and *half* the body go
//!   out on a raw socket, then the connection closes — the server sees
//!   a torn POST, the client an error).
//!
//! Every decision is derived from FNV-1a(seed, op-tag) mixed with a
//! per-tag ordinal through SplitMix64 — the same construction as
//! `ptb_farm::io::ChaosIo` — so a failing fleet run replays exactly
//! from its seed, independent of thread scheduling on either side.

use crate::http::http_call;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A one-shot HTTP client seam: send one request, return
/// `(status, body)`. [`RealNet`] is the production implementation;
/// [`ChaosNet`] wraps any other transport with injected faults.
pub trait Transport: Send + Sync {
    /// Perform `method path` against `addr` with an optional JSON body.
    fn call(
        &self,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)>;
}

/// The well-behaved transport: delegates to [`http_call`].
pub struct RealNet;

impl Transport for RealNet {
    fn call(
        &self,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        http_call(addr, method, path, body)
    }
}

/// Per-fault-class injection rates, all in `[0, 1]`, plus the seed.
#[derive(Debug, Clone, Copy)]
pub struct NetChaosConfig {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability the request is dropped before it is sent.
    pub drop: f64,
    /// Probability the request is sent twice.
    pub duplicate: f64,
    /// Probability the response body is truncated.
    pub truncate: f64,
    /// Probability of an injected pause before the call.
    pub latency: f64,
    /// Probability the connection dies mid-upload.
    pub disconnect: f64,
}

impl NetChaosConfig {
    /// Every fault class at the same `rate` under `seed`.
    pub fn uniform(seed: u64, rate: f64) -> NetChaosConfig {
        NetChaosConfig {
            seed,
            drop: rate,
            duplicate: rate,
            truncate: rate,
            latency: rate,
            disconnect: rate,
        }
    }
}

/// Injected-fault counters, exported as `fleet.chaos.*`.
#[derive(Debug, Default)]
pub struct NetChaosStats {
    /// Requests dropped before sending.
    pub dropped: AtomicU64,
    /// Requests sent twice.
    pub duplicated: AtomicU64,
    /// Responses truncated.
    pub truncated: AtomicU64,
    /// Injected pauses.
    pub delayed: AtomicU64,
    /// Mid-upload disconnects.
    pub disconnected: AtomicU64,
}

/// A [`Transport`] that injects seeded faults around the real one-shot
/// client. Decisions are a pure function of (seed, op-tag, ordinal),
/// where the op tag names the endpoint class (`work.claim`,
/// `work.complete`, …) and the ordinal counts calls under that tag —
/// so fault placement is independent of wall-clock timing and of other
/// workers.
pub struct ChaosNet {
    cfg: NetChaosConfig,
    ordinals: Mutex<HashMap<u64, u64>>,
    stats: NetChaosStats,
}

impl ChaosNet {
    /// A chaos transport with the given fault rates.
    pub fn new(cfg: NetChaosConfig) -> ChaosNet {
        ChaosNet {
            cfg,
            ordinals: Mutex::new(HashMap::new()),
            stats: NetChaosStats::default(),
        }
    }

    /// Injected-fault counters.
    pub fn stats(&self) -> &NetChaosStats {
        &self.stats
    }

    /// Counter snapshot under the `fleet.chaos.*` namespace.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            (
                "fleet.chaos.dropped",
                self.stats.dropped.load(Ordering::Relaxed),
            ),
            (
                "fleet.chaos.duplicated",
                self.stats.duplicated.load(Ordering::Relaxed),
            ),
            (
                "fleet.chaos.truncated",
                self.stats.truncated.load(Ordering::Relaxed),
            ),
            (
                "fleet.chaos.delayed",
                self.stats.delayed.load(Ordering::Relaxed),
            ),
            (
                "fleet.chaos.disconnected",
                self.stats.disconnected.load(Ordering::Relaxed),
            ),
        ]
    }

    /// Uniform chance in `[0, 1)` for the next `(tag, fault)` decision:
    /// SplitMix64 over seed ⊕ FNV-1a(tag) ⊕ FNV-1a(fault) ⊕ ordinal.
    fn roll(&self, tag: &str, fault: &str) -> f64 {
        let tag_hash = fnv1a(tag.as_bytes()) ^ fnv1a(fault.as_bytes());
        let ordinal = {
            let mut ords = self.ordinals.lock();
            let n = ords.entry(tag_hash).or_insert(0);
            *n += 1;
            *n
        };
        let mixed = splitmix64(
            self.cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ tag_hash
                ^ ordinal.wrapping_mul(0xbf58_476d_1ce4_e5b9),
        );
        (mixed >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The endpoint class a path belongs to, used as the op tag so
    /// fault placement tracks protocol operations, not raw URLs.
    fn op_tag(path: &str) -> &'static str {
        if path == "/v1/work/claim" {
            "work.claim"
        } else if path.starts_with("/v1/work/") {
            if path.ends_with("/heartbeat") {
                "work.heartbeat"
            } else if path.ends_with("/complete") {
                "work.complete"
            } else if path.ends_with("/fail") {
                "work.fail"
            } else {
                "work.other"
            }
        } else {
            "other"
        }
    }

    /// Send the request head plus half the body on a raw socket, then
    /// close — the torn-POST shape of a worker dying mid-upload.
    fn disconnect_mid_upload(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<(u16, String)> {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            stream.set_write_timeout(Some(Duration::from_secs(5))).ok();
            let head = format!(
                "{method} {path} HTTP/1.1\r\nHost: ptb-serve\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                body.len()
            );
            stream.write_all(head.as_bytes()).ok();
            stream.write_all(&body.as_bytes()[..body.len() / 2]).ok();
            // Dropping the stream closes it with the body incomplete.
        }
        Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "chaos: disconnected mid-upload",
        ))
    }
}

impl Transport for ChaosNet {
    fn call(
        &self,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let tag = Self::op_tag(path);
        if self.roll(tag, "latency") < self.cfg.latency {
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
            // Bounded, seed-determined pause (1–64 ms).
            let ms = 1 + (splitmix64(self.cfg.seed ^ fnv1a(tag.as_bytes())) % 64);
            std::thread::sleep(Duration::from_millis(ms));
        }
        if self.roll(tag, "drop") < self.cfg.drop {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: request dropped",
            ));
        }
        if self.roll(tag, "disconnect") < self.cfg.disconnect {
            if let Some(body) = body {
                if !body.is_empty() {
                    self.stats.disconnected.fetch_add(1, Ordering::Relaxed);
                    return Self::disconnect_mid_upload(addr, method, path, body);
                }
            }
        }
        if self.roll(tag, "duplicate") < self.cfg.duplicate {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            // The first send's reply is lost; the caller only sees the
            // retransmission's — exactly the lost-ACK retry shape.
            http_call(addr, method, path, body).ok();
        }
        let (status, payload) = http_call(addr, method, path, body)?;
        if self.roll(tag, "truncate") < self.cfg.truncate && payload.len() > 1 {
            self.stats.truncated.fetch_add(1, Ordering::Relaxed);
            let cut = payload.len() / 2;
            // Cut on a char boundary (all payloads here are ASCII JSON,
            // but stay defensive).
            let cut = (0..=cut).rev().find(|&i| payload.is_char_boundary(i));
            return Ok((status, payload[..cut.unwrap_or(0)].to_owned()));
        }
        Ok((status, payload))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_a_pure_function_of_seed_and_ordinal() {
        let a = ChaosNet::new(NetChaosConfig::uniform(7, 0.5));
        let b = ChaosNet::new(NetChaosConfig::uniform(7, 0.5));
        let seq_a: Vec<f64> = (0..64).map(|_| a.roll("work.claim", "drop")).collect();
        let seq_b: Vec<f64> = (0..64).map(|_| b.roll("work.claim", "drop")).collect();
        assert_eq!(seq_a, seq_b, "same seed must replay identically");
        let c = ChaosNet::new(NetChaosConfig::uniform(8, 0.5));
        let seq_c: Vec<f64> = (0..64).map(|_| c.roll("work.claim", "drop")).collect();
        assert_ne!(seq_a, seq_c, "different seed must diverge");
    }

    #[test]
    fn fault_classes_roll_independent_streams() {
        let n = ChaosNet::new(NetChaosConfig::uniform(3, 0.5));
        let drops: Vec<f64> = (0..32).map(|_| n.roll("work.claim", "drop")).collect();
        let trunc: Vec<f64> = (0..32).map(|_| n.roll("work.claim", "truncate")).collect();
        assert_ne!(drops, trunc);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let n = ChaosNet::new(NetChaosConfig::uniform(1, 0.0));
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        // With every rate 0 the only effect can come from the real
        // call, which fails to connect — no fault counters move.
        let _ = n.call(addr, "POST", "/v1/work/claim", Some("{}"));
        assert_eq!(n.stats().dropped.load(Ordering::Relaxed), 0);
        assert_eq!(n.stats().duplicated.load(Ordering::Relaxed), 0);
        assert_eq!(n.stats().truncated.load(Ordering::Relaxed), 0);
        assert_eq!(n.stats().disconnected.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn op_tags_classify_fleet_paths() {
        assert_eq!(ChaosNet::op_tag("/v1/work/claim"), "work.claim");
        assert_eq!(ChaosNet::op_tag("/v1/work/abc/heartbeat"), "work.heartbeat");
        assert_eq!(ChaosNet::op_tag("/v1/work/abc/complete"), "work.complete");
        assert_eq!(ChaosNet::op_tag("/v1/work/abc/fail"), "work.fail");
        assert_eq!(ChaosNet::op_tag("/v1/status"), "other");
    }
}
