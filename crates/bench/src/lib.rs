//! # ptb-bench — benchmark support
//!
//! Shared helpers for the Criterion benches:
//!
//! * `benches/components.rs` — microbenchmarks of every substrate (mesh,
//!   caches, predictor, core tick, memory system, workload generation);
//! * `benches/figures.rs` — one bench per paper table/figure, timing a
//!   reduced (Test-scale) regeneration of each artefact; the full-scale
//!   artefacts themselves are produced by `ptb-experiments` binaries;
//! * `benches/ablation.rs` — design-choice sweeps called out in DESIGN.md
//!   (balancer latency, wire width, policy, relaxation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ptb_core::{MechanismKind, RunReport, SimConfig, Simulation};
use ptb_workloads::{Benchmark, Scale};

/// A small, fast simulation used inside benches (Test scale, bounded).
pub fn quick_sim(n_cores: usize, bench: Benchmark, mech: MechanismKind) -> RunReport {
    let cfg = SimConfig {
        n_cores,
        scale: Scale::Test,
        mechanism: mech,
        max_cycles: 30_000_000,
        ..SimConfig::default()
    };
    Simulation::new(cfg).run(bench).expect("bench sim failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sim_runs() {
        let r = quick_sim(2, Benchmark::X264, MechanismKind::None);
        assert!(r.cycles > 0);
    }
}
