//! Microbenchmarks of every substrate the simulator is built from.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ptb_isa::stream::{FnEnv, VecStream};
use ptb_isa::{Addr, BlockGen, BlockGenConfig, CoreId, DynInst, ExecCtx, OpKind};
use ptb_mem::{AccessKind, CacheArray, CacheConfig, MemConfig, MemReq, MemorySystem};
use ptb_noc::{Mesh, MeshConfig, NodeId};
use ptb_power::{core_cycle_tokens, CoreActivity, DvfsMode, PowerParams, Ptht};
use ptb_uarch::{Core, CoreConfig, Gshare};
use std::hint::black_box;
use std::time::Duration;

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("mesh_send_advance_16c", |b| {
        b.iter_batched(
            || Mesh::<u32>::new(MeshConfig::for_cores(16)),
            |mut mesh| {
                for i in 0..64u32 {
                    mesh.send(
                        NodeId((i % 16) as usize),
                        NodeId(((i * 7) % 16) as usize),
                        72,
                        i,
                    );
                }
                for _ in 0..128 {
                    mesh.advance();
                    black_box(mesh.take_arrivals());
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("l2_probe_insert", |b| {
        let mut cache: CacheArray<u8> = CacheArray::new(CacheConfig::l2());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x40).wrapping_mul(2654435761) % (1 << 22);
            if cache.probe(Addr(i)).is_none() {
                black_box(cache.insert(Addr(i), 1));
            }
        })
    });
    g.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpred");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("gshare_predict_train", |b| {
        let mut gs = Gshare::new();
        let mut pc = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(4) & 0xffff;
            black_box(gs.predict_and_train(pc, pc & 8 == 0));
        })
    });
    g.finish();
}

fn bench_ptht(c: &mut Criterion) {
    let mut g = c.benchmark_group("power");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("ptht_estimate_update", |b| {
        let mut t = Ptht::default();
        let mut pc = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            black_box(t.estimate(pc));
            t.update(pc, 55.0);
        })
    });
    g.bench_function("core_cycle_tokens", |b| {
        let p = PowerParams::default();
        let a = CoreActivity {
            ticked: true,
            fetched: 4,
            dispatched: 4,
            issued: 3,
            issued_base_tokens: 180.0,
            rob_occupancy: 70,
            rob_active: 20,
            ..Default::default()
        };
        b.iter(|| black_box(core_cycle_tokens(&p, &a, DvfsMode::NOMINAL)))
    });
    g.finish();
}

fn bench_blockgen(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("blockgen_next_inst", |b| {
        let mut gen = BlockGen::with_threads(BlockGenConfig::default(), 0, 16, 0x1000, 7);
        b.iter(|| black_box(gen.next_inst(ExecCtx::BUSY)))
    });
    g.finish();
}

fn bench_core_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("uarch");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    g.bench_function("core_tick_alu_loop", |b| {
        b.iter_batched(
            || {
                let insts: Vec<DynInst> = (0..20_000)
                    .map(|i| DynInst::compute(0x1000 + (i % 64) * 4, OpKind::IntAlu))
                    .collect();
                (
                    Core::new(
                        CoreId(0),
                        CoreConfig::default(),
                        PowerParams::default().class_base,
                    ),
                    VecStream::new(insts),
                )
            },
            |(mut core, mut stream)| {
                let mut env = FnEnv {
                    read: |_| 0u64,
                    cycle: 0,
                };
                for _ in 0..6000 {
                    black_box(core.tick(&mut stream, &mut env));
                    if core.is_done() {
                        break;
                    }
                }
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_memory_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    g.bench_function("moesi_16tiles_mixed_traffic", |b| {
        b.iter_batched(
            || MemorySystem::new(MemConfig::default(), 16),
            |mut ms| {
                let mut id = 0u64;
                for round in 0..40u64 {
                    for core in 0..16usize {
                        let addr = 0x1000_0000 + ((round * 16 + core as u64) % 256) * 64;
                        let kind = if (round + core as u64).is_multiple_of(3) {
                            AccessKind::Store
                        } else {
                            AccessKind::Load
                        };
                        ms.request(MemReq {
                            id,
                            core: CoreId(core),
                            kind,
                            addr: Addr(addr),
                        });
                        id += 1;
                    }
                    for _ in 0..20 {
                        ms.tick();
                        black_box(ms.drain_responses());
                    }
                }
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mesh,
    bench_cache,
    bench_bpred,
    bench_ptht,
    bench_blockgen,
    bench_core_tick,
    bench_memory_system
);
criterion_main!(benches);
