//! One Criterion bench per paper table/figure: each times a reduced
//! (Test-scale, 4-core) regeneration of that artefact's measurement —
//! i.e. the exact code path the `ptb-experiments` binary drives at full
//! scale. Running `cargo bench -p ptb-bench --bench figures` therefore
//! exercises the entire evaluation pipeline end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use ptb_bench::quick_sim;
use ptb_core::{MechanismKind, PtbPolicy};
use ptb_workloads::Benchmark;
use std::hint::black_box;
use std::time::Duration;

fn group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    g
}

/// Figure 2: a naive-split mechanism run (energy + AoPB source data).
fn fig02(c: &mut Criterion) {
    let mut g = group(c, "fig02_naive_budget");
    for mech in [
        MechanismKind::Dvfs,
        MechanismKind::Dfs,
        MechanismKind::TwoLevel,
    ] {
        g.bench_function(mech.label(), |b| {
            b.iter(|| black_box(quick_sim(4, Benchmark::Barnes, mech)))
        });
    }
    g.finish();
}

/// Figure 3: execution-time breakdown extraction.
fn fig03(c: &mut Criterion) {
    let mut g = group(c, "fig03_breakdown");
    g.bench_function("breakdown_4c", |b| {
        b.iter(|| {
            let r = quick_sim(4, Benchmark::Waternsq, MechanismKind::None);
            black_box(r.breakdown_frac())
        })
    });
    g.finish();
}

/// Figure 4: spin-power measurement.
fn fig04(c: &mut Criterion) {
    let mut g = group(c, "fig04_spin_power");
    g.bench_function("spin_power_4c", |b| {
        b.iter(|| {
            let r = quick_sim(4, Benchmark::Fluidanimate, MechanismKind::None);
            black_box(r.spin_power_frac())
        })
    });
    g.finish();
}

/// Figures 5/6: traced runs (per-cycle power capture).
fn fig05_06(c: &mut Criterion) {
    let mut g = group(c, "fig05_06_traces");
    g.bench_function("traced_run_2c", |b| {
        use ptb_core::{SimConfig, Simulation};
        use ptb_workloads::Scale;
        b.iter(|| {
            let cfg = SimConfig {
                n_cores: 2,
                scale: Scale::Test,
                capture_trace: true,
                ..SimConfig::default()
            };
            black_box(Simulation::new(cfg).run(Benchmark::X264).expect("run"))
        })
    });
    g.finish();
}

/// Figure 7: the balancer's token-flow math (pure mechanism, no sim).
fn fig07(c: &mut Criterion) {
    use ptb_core::budget::BudgetSpec;
    use ptb_core::mechanisms::{ChipObs, CoreAction, CoreObs, Mechanism, PtbMechanism};
    use ptb_core::PtbConfig;
    use ptb_isa::ExecCtx;
    use ptb_power::PowerParams;
    use ptb_uarch::CoreConfig;
    let mut g = group(c, "fig07_token_flow");
    g.bench_function("balancer_control_16c", |b| {
        let budget = BudgetSpec::new(&PowerParams::default(), &CoreConfig::default(), 16, 0.5);
        let mut m = PtbMechanism::new(16, PtbPolicy::ToAll, 0.0, PtbConfig::default());
        let cores: Vec<CoreObs> = (0..16)
            .map(|i| CoreObs {
                tokens: if i % 2 == 0 {
                    budget.local * 0.4
                } else {
                    budget.local * 1.6
                },
                ctx: ExecCtx::BUSY,
                done: false,
            })
            .collect();
        let mut actions = vec![CoreAction::default(); 16];
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            let obs = ChipObs {
                cycle,
                chip_tokens: budget.global * 1.05,
                uncore_tokens: 0.0,
                cores: &cores,
            };
            m.control(&obs, &budget, &mut actions);
            black_box(&actions);
        })
    });
    g.finish();
}

/// Figures 9-12: the PTB policy runs.
fn fig09_12(c: &mut Criterion) {
    let mut g = group(c, "fig09_12_ptb_policies");
    for policy in [PtbPolicy::ToAll, PtbPolicy::ToOne, PtbPolicy::Dynamic] {
        let mech = MechanismKind::PtbTwoLevel { policy, relax: 0.0 };
        g.bench_function(policy.label(), |b| {
            b.iter(|| black_box(quick_sim(4, Benchmark::Waternsq, mech)))
        });
    }
    g.finish();
}

/// Figure 13: performance comparison (baseline + PTB pair).
fn fig13(c: &mut Criterion) {
    let mut g = group(c, "fig13_performance");
    g.bench_function("slowdown_pair", |b| {
        b.iter(|| {
            let base = quick_sim(4, Benchmark::X264, MechanismKind::None);
            let ptb = quick_sim(
                4,
                Benchmark::X264,
                MechanismKind::PtbTwoLevel {
                    policy: PtbPolicy::Dynamic,
                    relax: 0.0,
                },
            );
            black_box(ptb_core::report::slowdown_pct(&base, &ptb))
        })
    });
    g.finish();
}

/// Figure 14: relaxed-accuracy runs.
fn fig14(c: &mut Criterion) {
    let mut g = group(c, "fig14_relaxed");
    for relax in [0.0, 0.2] {
        let mech = MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToAll,
            relax,
        };
        g.bench_function(format!("relax_{:.0}pct", relax * 100.0), |b| {
            b.iter(|| black_box(quick_sim(4, Benchmark::Barnes, mech)))
        });
    }
    g.finish();
}

/// §IV.D: TDP packing arithmetic.
fn tdp(c: &mut Criterion) {
    let mut g = group(c, "tdp_packing");
    g.bench_function("cores_within_tdp", |b| {
        b.iter(|| {
            for err in [0.0, 0.1, 0.4, 0.65] {
                black_box(ptb_metrics::cores_within_tdp(100.0, 3.125, err));
            }
        })
    });
    g.finish();
}

criterion_group!(figures, fig02, fig03, fig04, fig05_06, fig07, fig09_12, fig13, fig14, tdp);
criterion_main!(figures);
