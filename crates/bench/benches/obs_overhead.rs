//! Cost of the observability layer: the same simulation run through
//! `run` (NullObserver — every hook compiles out), through an inert
//! `ENABLED` observer (hook sites live, every hook an empty default,
//! phase timing declined), through a full `ObsStack`, and through the
//! stack plus phase timing. The first two should be indistinguishable
//! (the "zero cost when off" claim: hook sites plus the
//! `wants_phase_timing` = false branches are required to stay within
//! noise, < 1–2 %, of the plain loop); the stack pays for its real
//! per-event work, and the profiled run for its `Instant::now` calls.

use criterion::{criterion_group, criterion_main, Criterion};
use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
use ptb_obs::{ObsStack, SimObserver};
use ptb_workloads::{Benchmark, Scale};
use std::hint::black_box;
use std::time::Duration;

/// `ENABLED = true` observer that does nothing: every hook keeps its
/// empty default and `wants_phase_timing` stays `false`. Measures the
/// cost of the hook sites themselves — including the disabled phase
/// timers in `Simulation::step` — with no observer work attached.
struct InertObserver;

impl SimObserver for InertObserver {}

fn sim() -> Simulation {
    Simulation::new(SimConfig {
        n_cores: 4,
        scale: Scale::Test,
        mechanism: MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToAll,
            relax: 0.0,
        },
        ..SimConfig::default()
    })
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10).measurement_time(Duration::from_secs(20));

    g.bench_function("null_observer", |b| {
        let s = sim();
        b.iter(|| black_box(s.run(Benchmark::Fft).expect("run")));
    });

    g.bench_function("inert_observer", |b| {
        let s = sim();
        b.iter(|| {
            let mut obs = InertObserver;
            black_box(s.run_observed(Benchmark::Fft, &mut obs).expect("run"))
        });
    });

    g.bench_function("full_stack", |b| {
        let s = sim();
        b.iter(|| {
            let mut stack = ObsStack::new()
                .with_recorder(1 << 16)
                .with_counters()
                .with_audit(64);
            black_box(s.run_observed(Benchmark::Fft, &mut stack).expect("run"))
        });
    });

    g.bench_function("full_stack_profiled", |b| {
        let s = sim();
        b.iter(|| {
            let mut stack = ObsStack::new()
                .with_recorder(1 << 16)
                .with_counters()
                .with_audit(64)
                .with_profiler();
            black_box(s.run_observed(Benchmark::Fft, &mut stack).expect("run"))
        });
    });

    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
