//! Cost of the `ptb-farm` cache layer: computing a content-address key,
//! storing a report, and serving a warm hit. The point of the farm is
//! that a warm `get` is orders of magnitude cheaper than the simulation
//! it replaces, so the absolute numbers here (microseconds) are what a
//! cached figure point costs instead of a full run.

use criterion::{criterion_group, criterion_main, Criterion};
use ptb_core::{MechanismKind, PtbPolicy, SimConfig};
use ptb_farm::{FarmJob, ResultStore, StoreLookup};
use ptb_workloads::{Benchmark, Scale};
use std::hint::black_box;

fn job() -> FarmJob {
    FarmJob::new(
        Benchmark::Fft,
        SimConfig {
            n_cores: 4,
            scale: Scale::Test,
            mechanism: MechanismKind::PtbTwoLevel {
                policy: PtbPolicy::ToAll,
                relax: 0.0,
            },
            ..SimConfig::default()
        },
    )
}

fn bench_farm_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("farm_store");

    g.bench_function("key", |b| {
        let j = job();
        b.iter(|| black_box(j.key()));
    });

    let dir = std::env::temp_dir().join(format!("ptb-bench-farm-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = ResultStore::open(&dir).expect("open store");
    let j = job();
    let key = j.key();
    let report = j.simulate();

    g.bench_function("put", |b| {
        b.iter(|| store.put(black_box(&key), &j, &report).expect("put"));
    });

    g.bench_function("get_hit", |b| {
        store.put(&key, &j, &report).expect("put");
        b.iter(|| match store.get(black_box(&key), &j) {
            StoreLookup::Hit(r) => black_box(r),
            other => panic!("expected hit, got {other:?}"),
        });
    });

    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_farm_store);
criterion_main!(benches);
