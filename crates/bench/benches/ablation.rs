//! Ablation benches for the design choices called out in DESIGN.md: how
//! much do the balancer round-trip latency, the 4-bit wire quantisation,
//! the distribution policy and the relaxation threshold matter?
//!
//! Each bench also prints the resulting accuracy once per process (so
//! `cargo bench` output doubles as the ablation data table).

use criterion::{criterion_group, criterion_main, Criterion};
use ptb_core::report::normalized_aopb_pct;
use ptb_core::{MechanismKind, PtbConfig, PtbPolicy, SimConfig, Simulation};
use ptb_workloads::{Benchmark, Scale};
use std::hint::black_box;
use std::sync::Once;
use std::time::Duration;

fn run_with(ptb: PtbConfig, mech: MechanismKind) -> ptb_core::RunReport {
    let cfg = SimConfig {
        n_cores: 4,
        scale: Scale::Test,
        mechanism: mech,
        ptb,
        ..SimConfig::default()
    };
    Simulation::new(cfg).run(Benchmark::Waternsq).expect("run")
}

static PRINT: Once = Once::new();

fn print_ablation_table() {
    PRINT.call_once(|| {
        let base = run_with(PtbConfig::default(), MechanismKind::None);
        println!("\n== ablation: PTB accuracy vs hardware parameters (waternsq, 4c) ==");
        for lat in [3u64, 10, 30] {
            let cfg = PtbConfig {
                latency_override: Some(lat),
                ..PtbConfig::default()
            };
            let r = run_with(
                cfg,
                MechanismKind::PtbTwoLevel {
                    policy: PtbPolicy::ToAll,
                    relax: 0.0,
                },
            );
            println!(
                "  latency {lat:>2} cycles -> AoPB {:.1}%",
                normalized_aopb_pct(&base, &r)
            );
        }
        for bits in [2u32, 4, 8] {
            let cfg = PtbConfig {
                wire_bits: bits,
                ..PtbConfig::default()
            };
            let r = run_with(
                cfg,
                MechanismKind::PtbTwoLevel {
                    policy: PtbPolicy::ToAll,
                    relax: 0.0,
                },
            );
            println!(
                "  {bits}-bit wires     -> AoPB {:.1}%",
                normalized_aopb_pct(&base, &r)
            );
        }
        for policy in [PtbPolicy::ToAll, PtbPolicy::ToOne, PtbPolicy::Dynamic] {
            let r = run_with(
                PtbConfig::default(),
                MechanismKind::PtbTwoLevel { policy, relax: 0.0 },
            );
            println!(
                "  policy {:<8} -> AoPB {:.1}%",
                policy.label(),
                normalized_aopb_pct(&base, &r)
            );
        }
        println!();
    });
}

fn ablation_latency(c: &mut Criterion) {
    print_ablation_table();
    let mut g = c.benchmark_group("ablation_latency");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for lat in [3u64, 10, 30] {
        g.bench_function(format!("rt_{lat}cyc"), |b| {
            let cfg = PtbConfig {
                latency_override: Some(lat),
                ..PtbConfig::default()
            };
            b.iter(|| {
                black_box(run_with(
                    cfg,
                    MechanismKind::PtbTwoLevel {
                        policy: PtbPolicy::ToAll,
                        relax: 0.0,
                    },
                ))
            })
        });
    }
    g.finish();
}

fn ablation_wire_bits(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_wire_bits");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for bits in [2u32, 8] {
        g.bench_function(format!("{bits}bit"), |b| {
            let cfg = PtbConfig {
                wire_bits: bits,
                ..PtbConfig::default()
            };
            b.iter(|| {
                black_box(run_with(
                    cfg,
                    MechanismKind::PtbTwoLevel {
                        policy: PtbPolicy::ToAll,
                        relax: 0.0,
                    },
                ))
            })
        });
    }
    g.finish();
}

fn ablation_relax(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_relax");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for relax in [0.0, 0.3] {
        g.bench_function(format!("relax_{:.0}", relax * 100.0), |b| {
            b.iter(|| {
                black_box(run_with(
                    PtbConfig::default(),
                    MechanismKind::PtbTwoLevel {
                        policy: PtbPolicy::ToAll,
                        relax,
                    },
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablation,
    ablation_latency,
    ablation_wire_bits,
    ablation_relax
);
criterion_main!(ablation);
