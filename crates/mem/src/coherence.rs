//! MOESI coherence states and message vocabulary.
//!
//! The protocol is a blocking directory MOESI, modelled after the
//! GEMS/Ruby `MOESI_CMP_directory` family the paper used, with the usual
//! simulator simplifications:
//!
//! * The directory is distributed: line `L`'s *home slice* lives on tile
//!   `L mod n_tiles` and serialises all transactions on `L` (one at a time;
//!   later requests queue at the home).
//! * Requesters send an `Unblock` when their transaction completes, which
//!   releases the home slice for the next queued request — this removes the
//!   classic forward/writeback races by construction.
//! * Evicted dirty lines wait in a writeback buffer until the home
//!   acknowledges, so a cache can always answer a forward that was already
//!   in flight when it evicted.
//! * Message *data* is not carried: coherence provides timing and
//!   write-serialisation order; the only functionally-live values (lock and
//!   barrier words) are applied by the simulator in coherence-completion
//!   order.

use ptb_isa::Addr;
use ptb_noc::NodeId;
use serde::{Deserialize, Serialize};

/// MOESI cache-line states as seen by a private L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Moesi {
    /// Invalid (not present). Default so empty ways read as I.
    #[default]
    I,
    /// Shared: clean, possibly many copies.
    S,
    /// Exclusive: clean, only copy.
    E,
    /// Owned: dirty, this cache supplies data, other S copies may exist.
    O,
    /// Modified: dirty, only copy.
    M,
}

impl Moesi {
    /// Can a load be satisfied from this state?
    #[inline]
    pub fn readable(self) -> bool {
        !matches!(self, Moesi::I)
    }

    /// Can a store/RMW be satisfied from this state without a coherence
    /// transaction? (E upgrades to M silently.)
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, Moesi::M | Moesi::E)
    }

    /// Does eviction of this state require a data writeback?
    #[inline]
    pub fn dirty(self) -> bool {
        matches!(self, Moesi::M | Moesi::O)
    }

    /// Is this cache the designated supplier for forwards?
    #[inline]
    pub fn owner_like(self) -> bool {
        matches!(self, Moesi::M | Moesi::O | Moesi::E)
    }
}

/// Coherence message kinds carried over the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CohMsg {
    // ---- requester -> home ----
    /// Read request.
    GetS,
    /// Write/ownership request (also used for S→M upgrades).
    GetX,
    /// Eviction of a dirty (M/O) line; carries data to memory.
    PutDirty,
    /// Eviction of an E line.
    PutClean,
    /// Eviction of an S line.
    PutShared,
    /// Transaction complete; home may service the next queued request.
    Unblock,

    // ---- home -> owner/sharers ----
    /// Forward a read to the current supplier; supplier sends `Data`
    /// to the requester and downgrades to O/S.
    FwdGetS {
        /// Requesting tile.
        requester: NodeId,
    },
    /// Forward a write to the current supplier; supplier sends `Data`
    /// to the requester and invalidates.
    FwdGetX {
        /// Requesting tile.
        requester: NodeId,
    },
    /// Invalidate a shared copy; the copy holder acks the requester.
    Inv {
        /// Requesting tile to be acked.
        requester: NodeId,
    },

    // ---- home -> requester ----
    /// Data supplied directly by the home (from memory). `excl` grants
    /// E/M; `acks` is the number of `InvAck`s to collect first.
    DataMem {
        /// Grant exclusive (E for reads, M for writes)?
        excl: bool,
        /// Invalidation acks the requester must collect.
        acks: u32,
    },
    /// No data needed (upgrade); wait for `acks` invalidation acks.
    UpgradeAck {
        /// Invalidation acks the requester must collect.
        acks: u32,
    },
    /// Data will arrive cache-to-cache; expect `acks` invalidation acks.
    /// Sent by the home in parallel with a forward, because the supplier
    /// does not know the sharer count.
    AckCount {
        /// Invalidation acks the requester must collect.
        acks: u32,
    },
    /// Writeback acknowledged; drop the writeback buffer entry.
    WbAck,

    // ---- cache -> requester ----
    /// Data supplied cache-to-cache. `excl` grants M (response to GetX).
    DataC2C {
        /// Grant modified ownership?
        excl: bool,
    },
    /// Invalidation performed.
    InvAck,
}

impl CohMsg {
    /// Wire size in bytes: control messages are 8 B, data-bearing messages
    /// are 8 B header + 64 B line.
    pub fn bytes(&self) -> u32 {
        match self {
            CohMsg::PutDirty | CohMsg::DataMem { .. } | CohMsg::DataC2C { .. } => 72,
            _ => 8,
        }
    }
}

/// A routed coherence message: every message concerns one line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sender tile.
    pub src: NodeId,
    /// Line address (line-aligned).
    pub line: Addr,
    /// Payload.
    pub msg: CohMsg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(!Moesi::I.readable());
        for s in [Moesi::S, Moesi::E, Moesi::O, Moesi::M] {
            assert!(s.readable());
        }
        assert!(Moesi::M.writable());
        assert!(Moesi::E.writable());
        assert!(!Moesi::S.writable());
        assert!(!Moesi::O.writable());
        assert!(Moesi::M.dirty() && Moesi::O.dirty());
        assert!(!Moesi::E.dirty() && !Moesi::S.dirty());
        assert!(Moesi::E.owner_like());
        assert!(!Moesi::S.owner_like());
    }

    #[test]
    fn message_sizes() {
        assert_eq!(CohMsg::GetS.bytes(), 8);
        assert_eq!(CohMsg::PutDirty.bytes(), 72);
        assert_eq!(
            CohMsg::DataMem {
                excl: true,
                acks: 0
            }
            .bytes(),
            72
        );
        assert_eq!(CohMsg::DataC2C { excl: false }.bytes(), 72);
        assert_eq!(CohMsg::AckCount { acks: 3 }.bytes(), 8);
        assert_eq!(CohMsg::InvAck.bytes(), 8);
        assert_eq!(CohMsg::Unblock.bytes(), 8);
    }

    #[test]
    fn default_state_is_invalid() {
        assert_eq!(Moesi::default(), Moesi::I);
    }
}
