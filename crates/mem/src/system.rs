//! The full memory system: per-tile L1/L2, distributed MOESI directory,
//! memory controllers, all communicating over the 2-D mesh.
//!
//! See [`crate::coherence`] for the protocol summary. The system is
//! cycle-stepped: callers inject [`MemReq`]s, call [`MemorySystem::tick`]
//! once per cycle, and drain [`MemResp`]s.

use crate::cache::{CacheArray, CacheConfig};
use crate::coherence::{CohMsg, Envelope, Moesi};
use crate::stats::{MemActivity, MemStats};
use ptb_isa::{Addr, CoreId};
use ptb_noc::{Mesh, MeshConfig, NodeId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// What the core wants from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Read (needs a readable MOESI state).
    Load,
    /// Write (needs ownership).
    Store,
    /// Atomic read-modify-write (needs ownership; the simulator applies the
    /// functional operation when the response arrives).
    Rmw,
}

impl AccessKind {
    fn needs_ownership(self) -> bool {
        !matches!(self, AccessKind::Load)
    }
}

/// A core-originated memory request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemReq {
    /// Caller-chosen correlation id (unique per core).
    pub id: u64,
    /// Issuing core (= tile).
    pub core: CoreId,
    /// Access type.
    pub kind: AccessKind,
    /// Byte address.
    pub addr: Addr,
}

/// Completion of a [`MemReq`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemResp {
    /// The request's correlation id.
    pub id: u64,
    /// The requesting core.
    pub core: CoreId,
    /// The access type of the completed request.
    pub kind: AccessKind,
}

/// Memory-system configuration (paper Table 1 defaults via `Default`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles (Table 1: 300).
    pub mem_latency: u64,
    /// Miss-status holding registers per tile.
    pub mshrs_per_tile: usize,
    /// L1 lookups accepted per tile per cycle.
    pub l1_ports: usize,
    /// Core-side input queue capacity per tile.
    pub inq_capacity: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            mem_latency: 300,
            mshrs_per_tile: 16,
            l1_ports: 2,
            inq_capacity: 16,
        }
    }
}

/// Why an MSHR exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Want {
    Shared,
    Exclusive,
}

#[derive(Debug)]
struct Mshr {
    line: Addr,
    want: Want,
    /// Requests completed when this MSHR resolves.
    waiting: Vec<MemReq>,
    /// Requests that need a stronger state than `want`; re-injected after
    /// resolution.
    deferred: Vec<MemReq>,
    data_or_upgrade: bool,
    /// u32::MAX until the ack count is known.
    acks_expected: u32,
    acks_received: u32,
    /// Exclusivity granted by the response (E on reads, M on writes).
    granted_excl: bool,
}

#[derive(Debug, Clone, Copy)]
struct WbEntry {
    /// Retained so a racing FwdGetS/FwdGetX can still be served with the
    /// right data class (dirty lines must come from this buffer).
    #[allow(dead_code)]
    dirty: bool,
}

#[derive(Debug, Default, Clone)]
struct DirEntry {
    owner: Option<usize>,
    sharers: u64,
    busy: bool,
}

struct Tile {
    l1d: CacheArray<()>,
    l2: CacheArray<Moesi>,
    inq: VecDeque<MemReq>,
    mshrs: Vec<Mshr>,
    wb: HashMap<u64, WbEntry>, // keyed by line index
    dir: HashMap<u64, DirEntry>,
    dir_queue: HashMap<u64, VecDeque<Envelope>>,
}

#[derive(Debug)]
enum Ev {
    /// L2 lookup completes for a core request.
    L2Probe(usize, MemReq),
    /// L2 lookup completes for a forwarded coherence request.
    FwdLookup(usize, Envelope),
    /// Memory read at the home completes; send data to the requester.
    MemDone {
        home: usize,
        line: Addr,
        requester: usize,
        excl: bool,
    },
    /// Deliver a response to the core.
    Respond(MemResp),
}

struct Scheduled {
    at: u64,
    seq: u64,
    ev: Ev,
}
impl PartialEq for Scheduled {
    fn eq(&self, o: &Self) -> bool {
        (self.at, self.seq) == (o.at, o.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(o.at, o.seq))
    }
}

/// The complete CMP memory system.
pub struct MemorySystem {
    cfg: MemConfig,
    mesh: Mesh<Envelope>,
    tiles: Vec<Tile>,
    events: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: u64,
    responses: Vec<MemResp>,
    stats: MemStats,
    activity: MemActivity,
    /// flit-hop counter snapshot for per-tick activity deltas.
    last_flit_hops: u64,
}

impl MemorySystem {
    /// Build a memory system for `n_tiles` cores with the given config and
    /// a mesh sized by [`MeshConfig::for_cores`].
    pub fn new(cfg: MemConfig, n_tiles: usize) -> Self {
        assert!((1..=64).contains(&n_tiles), "1..=64 tiles supported");
        let mesh = Mesh::new(MeshConfig::for_cores(n_tiles));
        let tiles = (0..n_tiles)
            .map(|_| Tile {
                l1d: CacheArray::new(cfg.l1),
                l2: CacheArray::new(cfg.l2),
                inq: VecDeque::new(),
                mshrs: Vec::with_capacity(cfg.mshrs_per_tile),
                wb: HashMap::new(),
                dir: HashMap::new(),
                dir_queue: HashMap::new(),
            })
            .collect();
        MemorySystem {
            cfg,
            mesh,
            tiles,
            events: BinaryHeap::new(),
            seq: 0,
            now: 0,
            responses: Vec::new(),
            stats: MemStats::new(n_tiles),
            activity: MemActivity::default(),
            last_flit_hops: 0,
        }
    }

    /// Number of tiles.
    pub fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Home tile of a line (static address interleaving).
    #[inline]
    pub fn home_of(&self, line: Addr) -> usize {
        (line.line_index() % self.tiles.len() as u64) as usize
    }

    /// Inject a core request. Returns `false` (and drops the request) when
    /// the tile's input queue is full — the caller must retry.
    pub fn request(&mut self, req: MemReq) -> bool {
        let t = req.core.index();
        if self.tiles[t].inq.len() >= self.cfg.inq_capacity {
            return false;
        }
        self.tiles[t].inq.push_back(req);
        true
    }

    /// Take all responses produced up to and including the current cycle.
    pub fn drain_responses(&mut self) -> Vec<MemResp> {
        std::mem::take(&mut self.responses)
    }

    /// Per-tick activity counters (for energy accounting); resets deltas.
    pub fn take_activity(&mut self) -> MemActivity {
        let flits = self.mesh.stats().flit_hops;
        self.activity.noc_flit_hops = flits - self.last_flit_hops;
        self.last_flit_hops = flits;
        std::mem::take(&mut self.activity)
    }

    /// True when no transaction, queued request or message is in flight.
    pub fn is_idle(&self) -> bool {
        self.mesh.is_idle()
            && self.events.is_empty()
            && self.responses.is_empty()
            && self.tiles.iter().all(|t| {
                t.inq.is_empty()
                    && t.mshrs.is_empty()
                    && t.wb.is_empty()
                    && t.dir_queue.values().all(|q| q.is_empty())
                    && t.dir.values().all(|d| !d.busy)
            })
    }

    fn schedule(&mut self, delay: u64, ev: Ev) {
        self.seq += 1;
        self.events.push(Reverse(Scheduled {
            at: self.now + delay,
            seq: self.seq,
            ev,
        }));
    }

    fn send(&mut self, src: usize, dst: usize, line: Addr, msg: CohMsg) {
        self.stats.coh_messages += 1;
        self.mesh.send(
            NodeId(src),
            NodeId(dst),
            msg.bytes(),
            Envelope {
                src: NodeId(src),
                line,
                msg,
            },
        );
    }

    fn respond(&mut self, req: MemReq) {
        self.schedule(
            1,
            Ev::Respond(MemResp {
                id: req.id,
                core: req.core,
                kind: req.kind,
            }),
        );
    }

    /// Advance one cycle. Equivalent to [`MemorySystem::advance_noc`]
    /// followed by [`MemorySystem::advance_events`]; split so callers
    /// that profile host time can attribute the interconnect separately.
    pub fn tick(&mut self) {
        self.advance_noc();
        self.advance_events();
    }

    /// First half of a cycle: bump the clock, advance the mesh, and
    /// deliver arrived messages into the coherence controllers.
    pub fn advance_noc(&mut self) {
        self.now += 1;
        self.mesh.advance();
        let arrivals = self.mesh.take_arrivals();
        for (dst, env) in arrivals {
            self.handle_msg(dst.0, env);
        }
    }

    /// Second half of a cycle: fire due latency events and run the
    /// core-side L1 pipelines. Must follow [`MemorySystem::advance_noc`]
    /// in the same cycle.
    pub fn advance_events(&mut self) {
        // Due events.
        while let Some(Reverse(head)) = self.events.peek() {
            if head.at > self.now {
                break;
            }
            let Reverse(s) = self.events.pop().expect("peeked");
            self.handle_event(s.ev);
        }
        // Core-side L1 pipelines.
        for t in 0..self.tiles.len() {
            for _ in 0..self.cfg.l1_ports {
                let Some(req) = self.tiles[t].inq.pop_front() else {
                    break;
                };
                self.l1_access(t, req);
            }
        }
    }

    // ---------------- requester side ----------------

    fn l1_access(&mut self, t: usize, req: MemReq) {
        self.activity.l1_accesses += 1;
        self.stats.per_core[t].l1_accesses += 1;
        let line = req.addr.line();
        // Defer any access to a line with an eviction in flight.
        if self.tiles[t].wb.contains_key(&line.line_index()) {
            self.tiles[t].inq.push_back(req);
            return;
        }
        let l1_hit = self.tiles[t].l1d.probe(line).is_some();
        if l1_hit {
            if !req.kind.needs_ownership() {
                self.stats.per_core[t].l1_hits += 1;
                self.respond(req);
                return;
            }
            // Stores/RMWs consult the L2 state (L1 is write-through).
            let st = self.tiles[t].l2.peek(line).unwrap_or(Moesi::I);
            if st.writable() {
                self.stats.per_core[t].l1_hits += 1;
                self.activity.l2_accesses += 1;
                if st == Moesi::E {
                    self.tiles[t].l2.update(line, Moesi::M);
                }
                self.respond(req);
                return;
            }
            // S/O (or inclusion violation): fall through to the L2 path to
            // upgrade.
        }
        self.stats.per_core[t].l1_misses += 1;
        self.schedule(self.cfg.l2.latency, Ev::L2Probe(t, req));
    }

    fn l2_probe(&mut self, t: usize, req: MemReq) {
        self.activity.l2_accesses += 1;
        self.stats.per_core[t].l2_accesses += 1;
        let line = req.addr.line();
        if self.tiles[t].wb.contains_key(&line.line_index()) {
            self.tiles[t].inq.push_back(req);
            return;
        }
        let st = self.tiles[t].l2.probe(line).unwrap_or(Moesi::I);
        let satisfied = if req.kind.needs_ownership() {
            st.writable()
        } else {
            st.readable()
        };
        if satisfied {
            self.stats.per_core[t].l2_hits += 1;
            if req.kind.needs_ownership() && st == Moesi::E {
                self.tiles[t].l2.update(line, Moesi::M);
            }
            self.fill_l1(t, line);
            self.respond(req);
            return;
        }
        self.stats.per_core[t].l2_misses += 1;
        let want = if req.kind.needs_ownership() {
            Want::Exclusive
        } else {
            Want::Shared
        };
        // Merge into an existing MSHR if possible.
        if let Some(m) = self.tiles[t].mshrs.iter_mut().find(|m| m.line == line) {
            match (m.want, want) {
                (Want::Exclusive, _) | (Want::Shared, Want::Shared) => m.waiting.push(req),
                (Want::Shared, Want::Exclusive) => m.deferred.push(req),
            }
            return;
        }
        if self.tiles[t].mshrs.len() >= self.cfg.mshrs_per_tile {
            // Structural stall: retry through the input queue.
            self.tiles[t].inq.push_back(req);
            return;
        }
        self.tiles[t].mshrs.push(Mshr {
            line,
            want,
            waiting: vec![req],
            deferred: Vec::new(),
            data_or_upgrade: false,
            acks_expected: u32::MAX,
            acks_received: 0,
            granted_excl: false,
        });
        let home = self.home_of(line);
        let msg = match want {
            Want::Shared => CohMsg::GetS,
            Want::Exclusive => CohMsg::GetX,
        };
        self.send(t, home, line, msg);
    }

    fn fill_l1(&mut self, t: usize, line: Addr) {
        // L1 evictions are silent: L1 is write-through and strictly
        // inclusive in L2.
        let _ = self.tiles[t].l1d.insert(line, ());
    }

    /// Install a line granted by the directory and complete the MSHR.
    fn mshr_try_complete(&mut self, t: usize, line: Addr) {
        let Some(pos) = self.tiles[t].mshrs.iter().position(|m| m.line == line) else {
            return;
        };
        {
            let m = &self.tiles[t].mshrs[pos];
            if !m.data_or_upgrade
                || m.acks_expected == u32::MAX
                || m.acks_received < m.acks_expected
            {
                return;
            }
        }
        let m = self.tiles[t].mshrs.swap_remove(pos);
        let new_state = match m.want {
            Want::Exclusive => Moesi::M,
            Want::Shared if m.granted_excl => Moesi::E,
            Want::Shared => Moesi::S,
        };
        let evicted = self.tiles[t].l2.insert(line, new_state);
        if let Some((victim, vstate)) = evicted {
            self.evict_l2(t, victim, vstate);
        }
        self.fill_l1(t, line);
        let home = self.home_of(line);
        self.send(t, home, line, CohMsg::Unblock);
        for req in m.waiting {
            self.respond(req);
        }
        for req in m.deferred {
            // Needs a stronger state; goes around again.
            self.tiles[t].inq.push_back(req);
        }
    }

    fn evict_l2(&mut self, t: usize, victim: Addr, state: Moesi) {
        if state == Moesi::I {
            return;
        }
        self.stats.per_core[t].l2_evictions += 1;
        if state.dirty() {
            self.stats.per_core[t].dirty_evictions += 1;
        }
        self.tiles[t].l1d.invalidate(victim);
        self.tiles[t].wb.insert(
            victim.line_index(),
            WbEntry {
                dirty: state.dirty(),
            },
        );
        let home = self.home_of(victim);
        let msg = match state {
            Moesi::M | Moesi::O => CohMsg::PutDirty,
            Moesi::E => CohMsg::PutClean,
            Moesi::S => CohMsg::PutShared,
            Moesi::I => unreachable!(),
        };
        self.send(t, home, victim, msg);
    }

    // ---------------- message handling ----------------

    fn handle_msg(&mut self, dst: usize, env: Envelope) {
        match env.msg {
            // Directory-side messages.
            CohMsg::GetS | CohMsg::GetX => self.dir_incoming(dst, env),
            CohMsg::PutDirty | CohMsg::PutClean | CohMsg::PutShared => self.dir_incoming(dst, env),
            CohMsg::Unblock => {
                let line = env.line.line_index();
                let e = self.tiles[dst].dir.entry(line).or_default();
                debug_assert!(e.busy, "Unblock for non-busy line");
                e.busy = false;
                self.dir_service_queue(dst, env.line);
            }
            // Cache-side forwarded requests: cost an L2 lookup.
            CohMsg::FwdGetS { .. } | CohMsg::FwdGetX { .. } => {
                self.schedule(self.cfg.l2.latency, Ev::FwdLookup(dst, env));
            }
            CohMsg::Inv { requester } => {
                // Tag-array invalidation; ack even when the line is absent
                // (our PutShared may be racing this Inv).
                self.tiles[dst].l2.invalidate(env.line);
                self.tiles[dst].l1d.invalidate(env.line);
                self.stats.per_core[dst].invalidations_received += 1;
                self.send(dst, requester.0, env.line, CohMsg::InvAck);
            }
            // Requester-side responses.
            CohMsg::DataMem { excl, acks } => {
                if let Some(m) = self.tiles[dst]
                    .mshrs
                    .iter_mut()
                    .find(|m| m.line == env.line)
                {
                    m.data_or_upgrade = true;
                    m.granted_excl = excl;
                    m.acks_expected = acks;
                }
                self.mshr_try_complete(dst, env.line);
            }
            CohMsg::DataC2C { excl } => {
                self.stats.per_core[dst].c2c_fills += 1;
                if let Some(m) = self.tiles[dst]
                    .mshrs
                    .iter_mut()
                    .find(|m| m.line == env.line)
                {
                    m.data_or_upgrade = true;
                    m.granted_excl = excl;
                }
                self.mshr_try_complete(dst, env.line);
            }
            CohMsg::UpgradeAck { acks } => {
                if let Some(m) = self.tiles[dst]
                    .mshrs
                    .iter_mut()
                    .find(|m| m.line == env.line)
                {
                    m.data_or_upgrade = true;
                    m.granted_excl = true;
                    m.acks_expected = acks;
                }
                self.mshr_try_complete(dst, env.line);
            }
            CohMsg::AckCount { acks } => {
                if let Some(m) = self.tiles[dst]
                    .mshrs
                    .iter_mut()
                    .find(|m| m.line == env.line)
                {
                    m.acks_expected = acks;
                }
                self.mshr_try_complete(dst, env.line);
            }
            CohMsg::InvAck => {
                if let Some(m) = self.tiles[dst]
                    .mshrs
                    .iter_mut()
                    .find(|m| m.line == env.line)
                {
                    m.acks_received += 1;
                }
                self.mshr_try_complete(dst, env.line);
            }
            CohMsg::WbAck => {
                self.tiles[dst].wb.remove(&env.line.line_index());
            }
        }
    }

    fn dir_incoming(&mut self, home: usize, env: Envelope) {
        let line = env.line.line_index();
        let busy = self.tiles[home].dir.entry(line).or_default().busy;
        if busy {
            self.tiles[home]
                .dir_queue
                .entry(line)
                .or_default()
                .push_back(env);
        } else {
            self.dir_process(home, env);
        }
    }

    fn dir_service_queue(&mut self, home: usize, line: Addr) {
        let idx = line.line_index();
        while let Some(env) = self.tiles[home]
            .dir_queue
            .get_mut(&idx)
            .and_then(|q| q.pop_front())
        {
            self.dir_process(home, env);
            // Stop if the processed request made the line busy again.
            if self.tiles[home].dir.entry(idx).or_default().busy {
                break;
            }
        }
    }

    fn dir_process(&mut self, home: usize, env: Envelope) {
        let line_idx = env.line.line_index();
        let src = env.src.0;
        let entry = self.tiles[home].dir.entry(line_idx).or_default().clone();
        match env.msg {
            CohMsg::GetS => {
                let e = self.tiles[home]
                    .dir
                    .get_mut(&line_idx)
                    .expect("entry exists");
                e.busy = true;
                if let Some(owner) = entry.owner {
                    debug_assert_ne!(owner, src, "owner re-requesting: wb defer violated");
                    e.sharers |= 1 << src;
                    self.send(
                        home,
                        owner,
                        env.line,
                        CohMsg::FwdGetS {
                            requester: NodeId(src),
                        },
                    );
                    self.send(home, src, env.line, CohMsg::AckCount { acks: 0 });
                } else if entry.sharers & !(1 << src) != 0 {
                    // Cache-to-cache from the lowest other sharer.
                    let supplier = (entry.sharers & !(1 << src)).trailing_zeros() as usize;
                    e.sharers |= 1 << src;
                    self.send(
                        home,
                        supplier,
                        env.line,
                        CohMsg::FwdGetS {
                            requester: NodeId(src),
                        },
                    );
                    self.send(home, src, env.line, CohMsg::AckCount { acks: 0 });
                } else if entry.sharers != 0 {
                    // Requester is the only registered sharer (a racing Inv
                    // removed its copy); serve from memory, keep S.
                    e.sharers |= 1 << src;
                    self.mem_read(home, env.line, src, false);
                } else {
                    // Uncached: memory read, grant E.
                    e.owner = Some(src);
                    self.mem_read(home, env.line, src, true);
                }
            }
            CohMsg::GetX => {
                let sharers_wo_src = entry.sharers & !(1 << src);
                let n_sharer_invs = sharers_wo_src.count_ones();
                let e = self.tiles[home]
                    .dir
                    .get_mut(&line_idx)
                    .expect("entry exists");
                e.busy = true;
                e.owner = Some(src);
                e.sharers = 0;
                match entry.owner {
                    Some(owner) if owner != src => {
                        // Dirty owner supplies; all sharers invalidate.
                        self.send(
                            home,
                            owner,
                            env.line,
                            CohMsg::FwdGetX {
                                requester: NodeId(src),
                            },
                        );
                        self.invalidate_sharers(home, env.line, sharers_wo_src, src);
                        self.send(
                            home,
                            src,
                            env.line,
                            CohMsg::AckCount {
                                acks: n_sharer_invs,
                            },
                        );
                    }
                    Some(_) => {
                        // owner == src: upgrade from O.
                        self.invalidate_sharers(home, env.line, sharers_wo_src, src);
                        self.send(
                            home,
                            src,
                            env.line,
                            CohMsg::UpgradeAck {
                                acks: n_sharer_invs,
                            },
                        );
                    }
                    None if entry.sharers & (1 << src) != 0 => {
                        // Upgrade from S.
                        self.invalidate_sharers(home, env.line, sharers_wo_src, src);
                        self.send(
                            home,
                            src,
                            env.line,
                            CohMsg::UpgradeAck {
                                acks: n_sharer_invs,
                            },
                        );
                    }
                    None if sharers_wo_src != 0 => {
                        // Clean sharers; lowest supplies, the rest
                        // invalidate.
                        let supplier = sharers_wo_src.trailing_zeros() as usize;
                        let rest = sharers_wo_src & !(1 << supplier);
                        self.invalidate_sharers(home, env.line, rest, src);
                        self.send(
                            home,
                            supplier,
                            env.line,
                            CohMsg::FwdGetX {
                                requester: NodeId(src),
                            },
                        );
                        self.send(
                            home,
                            src,
                            env.line,
                            CohMsg::AckCount {
                                acks: rest.count_ones(),
                            },
                        );
                    }
                    None => {
                        // Uncached.
                        self.mem_read(home, env.line, src, true);
                    }
                }
            }
            CohMsg::PutDirty | CohMsg::PutClean => {
                let e = self.tiles[home]
                    .dir
                    .get_mut(&line_idx)
                    .expect("entry exists");
                if e.owner == Some(src) {
                    e.owner = None;
                    if env.msg == CohMsg::PutDirty {
                        self.stats.mem_writes += 1;
                        self.activity.mem_accesses += 1;
                    }
                }
                self.send(home, src, env.line, CohMsg::WbAck);
            }
            CohMsg::PutShared => {
                let e = self.tiles[home]
                    .dir
                    .get_mut(&line_idx)
                    .expect("entry exists");
                e.sharers &= !(1 << src);
                self.send(home, src, env.line, CohMsg::WbAck);
            }
            other => unreachable!("directory received {other:?}"),
        }
    }

    fn invalidate_sharers(&mut self, home: usize, line: Addr, mut sharers: u64, requester: usize) {
        while sharers != 0 {
            let s = sharers.trailing_zeros() as usize;
            sharers &= !(1 << s);
            self.send(
                home,
                s,
                line,
                CohMsg::Inv {
                    requester: NodeId(requester),
                },
            );
        }
    }

    fn mem_read(&mut self, home: usize, line: Addr, requester: usize, excl: bool) {
        self.stats.mem_reads += 1;
        self.activity.mem_accesses += 1;
        self.schedule(
            self.cfg.mem_latency,
            Ev::MemDone {
                home,
                line,
                requester,
                excl,
            },
        );
    }

    fn handle_event(&mut self, ev: Ev) {
        match ev {
            Ev::L2Probe(t, req) => self.l2_probe(t, req),
            Ev::FwdLookup(t, env) => self.fwd_lookup(t, env),
            Ev::MemDone {
                home,
                line,
                requester,
                excl,
            } => {
                self.send(home, requester, line, CohMsg::DataMem { excl, acks: 0 });
            }
            Ev::Respond(resp) => self.responses.push(resp),
        }
    }

    fn fwd_lookup(&mut self, t: usize, env: Envelope) {
        self.activity.l2_accesses += 1;
        match env.msg {
            CohMsg::FwdGetS { requester } => {
                let present = self.tiles[t].l2.peek(env.line).is_some();
                if present {
                    // Supplier keeps the line as Owned (supplies future
                    // reads; treats clean-owned uniformly).
                    let prev = self.tiles[t].l2.peek(env.line).unwrap_or(Moesi::I);
                    let next = if prev.dirty() || prev == Moesi::E {
                        Moesi::O
                    } else {
                        prev
                    };
                    self.tiles[t].l2.update(env.line, next);
                } else {
                    debug_assert!(
                        self.tiles[t].wb.contains_key(&env.line.line_index()),
                        "FwdGetS to a tile without the line or a wb entry"
                    );
                }
                self.stats.per_core[t].fwds_served += 1;
                self.send(t, requester.0, env.line, CohMsg::DataC2C { excl: false });
            }
            CohMsg::FwdGetX { requester } => {
                self.tiles[t].l2.invalidate(env.line);
                self.tiles[t].l1d.invalidate(env.line);
                self.stats.per_core[t].fwds_served += 1;
                // The requester learns its expected ack count from the
                // home's parallel AckCount message.
                self.send(t, requester.0, env.line, CohMsg::DataC2C { excl: true });
            }
            other => unreachable!("fwd_lookup got {other:?}"),
        }
    }
}
