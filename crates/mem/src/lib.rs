//! # ptb-mem — cache hierarchy and MOESI directory coherence
//!
//! Rebuilds the memory side of the paper's simulated CMP (GEMS/Ruby in the
//! original): per-core private L1D (64 KB, 2-way, 1 cycle) and unified L2
//! (1 MB, 4-way, 12 cycles), kept coherent by a blocking distributed MOESI
//! directory, with all coherence traffic carried by the `ptb-noc` 2-D mesh
//! and a 300-cycle main memory.
//!
//! Spin-synchronisation behaviour — the power signature the PTB mechanism
//! exploits — emerges from this model: a test-and-test-and-set spinner hits
//! in its L1 (cheap, low power) until the lock holder's releasing store
//! invalidates the line, which is exactly the coherence choreography of the
//! real machine.
//!
//! Entry point: [`MemorySystem`].
//!
//! ```
//! use ptb_isa::{Addr, CoreId};
//! use ptb_mem::{AccessKind, MemConfig, MemReq, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemConfig::default(), 4);
//! mem.request(MemReq { id: 1, core: CoreId(0), kind: AccessKind::Load, addr: Addr(0x1000_0000) });
//! let mut done = Vec::new();
//! while done.is_empty() {
//!     mem.tick();
//!     done = mem.drain_responses();
//! }
//! assert_eq!(done[0].id, 1);
//! // A cold miss pays the 300-cycle memory latency.
//! assert!(mem.now() > 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coherence;
pub mod stats;
pub mod system;

pub use cache::{CacheArray, CacheConfig};
pub use coherence::{CohMsg, Envelope, Moesi};
pub use stats::{CoreMemStats, MemActivity, MemStats};
pub use system::{AccessKind, MemConfig, MemReq, MemResp, MemorySystem};
