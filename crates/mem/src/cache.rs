//! Generic set-associative cache tag array with true-LRU replacement.
//!
//! The array stores per-line metadata only (tags + a caller-supplied state
//! type); data values are not modelled — timing and coherence are, and the
//! only functionally-meaningful values in the simulation (synchronisation
//! words) live in `ptb-sync`'s fabric.

use ptb_isa::Addr;
use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Paper Table 1: L1 I/D cache — 64 KB, 2-way, 1-cycle latency.
    pub fn l1() -> Self {
        CacheConfig {
            size_bytes: 64 << 10,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        }
    }

    /// Paper Table 1: private unified L2 — 1 MB/core, 4-way, 12-cycle
    /// latency.
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 1 << 20,
            ways: 4,
            line_bytes: 64,
            latency: 12,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines as usize / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

#[derive(Debug, Clone)]
struct Way<S> {
    tag: u64,
    valid: bool,
    state: S,
    /// Monotonic last-use stamp for true LRU.
    used: u64,
}

/// A set-associative tag array holding a state value per resident line.
#[derive(Debug, Clone)]
pub struct CacheArray<S> {
    cfg: CacheConfig,
    sets: Vec<Vec<Way<S>>>,
    set_mask: u64,
    clock: u64,
    /// Lookup + update counters (for energy accounting).
    pub accesses: u64,
}

impl<S: Copy + Default> CacheArray<S> {
    /// Create an empty array.
    pub fn new(cfg: CacheConfig) -> Self {
        let n = cfg.sets();
        CacheArray {
            cfg,
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        state: S::default(),
                        used: 0
                    };
                    cfg.ways
                ];
                n
            ],
            set_mask: n as u64 - 1,
            clock: 0,
            accesses: 0,
        }
    }

    /// The geometry this array was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn index(&self, addr: Addr) -> (usize, u64) {
        let line = addr.0 / self.cfg.line_bytes;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.trailing_ones(),
        )
    }

    /// Look up `addr`; on hit, bump LRU and return a copy of the state.
    pub fn probe(&mut self, addr: Addr) -> Option<S> {
        self.accesses += 1;
        self.clock += 1;
        let (set, tag) = self.index(addr);
        let clock = self.clock;
        self.sets[set]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| {
                w.used = clock;
                w.state
            })
    }

    /// Look up `addr` without disturbing LRU or counting an access
    /// (snooping / assertions).
    pub fn peek(&self, addr: Addr) -> Option<S> {
        let (set, tag) = self.index(addr);
        self.sets[set]
            .iter()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| w.state)
    }

    /// Overwrite the state of a resident line. Returns false if absent.
    pub fn update(&mut self, addr: Addr, state: S) -> bool {
        let (set, tag) = self.index(addr);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            w.state = state;
            true
        } else {
            false
        }
    }

    /// Insert `addr` with `state`, evicting the LRU way if the set is full.
    /// Returns the evicted line's (address, state) if one was displaced.
    pub fn insert(&mut self, addr: Addr, state: S) -> Option<(Addr, S)> {
        self.accesses += 1;
        self.clock += 1;
        let clock = self.clock;
        let line_bits = self.set_mask.trailing_ones();
        let line_bytes = self.cfg.line_bytes;
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.state = state;
            w.used = clock;
            return None;
        }
        let victim = if let Some(i) = set.iter().position(|w| !w.valid) {
            i
        } else {
            set.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.used)
                .map(|(i, _)| i)
                .expect("nonempty set")
        };
        let evicted = if set[victim].valid {
            let old_line = (set[victim].tag << line_bits) | set_idx as u64;
            Some((Addr(old_line * line_bytes), set[victim].state))
        } else {
            None
        };
        set[victim] = Way {
            tag,
            valid: true,
            state,
            used: clock,
        };
        evicted
    }

    /// Remove `addr` if resident; returns its state.
    pub fn invalidate(&mut self, addr: Addr) -> Option<S> {
        let (set, tag) = self.index(addr);
        self.sets[set]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| {
                w.valid = false;
                w.state
            })
    }

    /// Number of resident lines (test/diagnostic helper; O(capacity)).
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.valid).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray<u8> {
        // 4 sets x 2 ways x 64B lines = 512 B.
        CacheArray::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    fn line(i: u64) -> Addr {
        Addr(i * 64)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe(line(0)), None);
        assert_eq!(c.insert(line(0), 7), None);
        assert_eq!(c.probe(line(0)), Some(7));
        // Same line, different offset still hits.
        assert_eq!(c.probe(Addr(40)), Some(7));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines 0, 4, 8, ... (4 sets).
        c.insert(line(0), 1);
        c.insert(line(4), 2);
        c.probe(line(0)); // make line 4 the LRU
        let evicted = c.insert(line(8), 3);
        assert_eq!(evicted, Some((line(4), 2)));
        assert!(c.probe(line(0)).is_some());
        assert!(c.probe(line(8)).is_some());
        assert!(c.probe(line(4)).is_none());
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut c = tiny();
        c.insert(line(0), 1);
        assert_eq!(c.insert(line(0), 9), None);
        assert_eq!(c.probe(line(0)), Some(9));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn update_and_invalidate() {
        let mut c = tiny();
        assert!(!c.update(line(3), 5));
        c.insert(line(3), 1);
        assert!(c.update(line(3), 5));
        assert_eq!(c.peek(line(3)), Some(5));
        assert_eq!(c.invalidate(line(3)), Some(5));
        assert_eq!(c.peek(line(3)), None);
        assert_eq!(c.invalidate(line(3)), None);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for i in 0..4 {
            c.insert(line(i), i as u8);
        }
        for i in 0..4 {
            assert_eq!(c.probe(line(i)), Some(i as u8));
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn eviction_reports_correct_address() {
        let mut c = tiny();
        c.insert(line(1), 1); // set 1
        c.insert(line(5), 2); // set 1
        let ev = c.insert(line(9), 3); // set 1, evicts LRU = line 1
        assert_eq!(ev, Some((line(1), 1)));
    }

    #[test]
    fn paper_geometries_are_constructible() {
        let l1: CacheArray<u8> = CacheArray::new(CacheConfig::l1());
        assert_eq!(l1.config().sets(), 512);
        let l2: CacheArray<u8> = CacheArray::new(CacheConfig::l2());
        assert_eq!(l2.config().sets(), 4096);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        /// The cache agrees with a reference model: after any sequence of
        /// inserts/invalidations, a hit returns the last state written and
        /// occupancy never exceeds capacity.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec((0u64..64, 0u8..=2, 0u8..255), 1..300)) {
            let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 1 };
            let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
            let mut c: CacheArray<u8> = CacheArray::new(cfg);
            let mut model: HashMap<u64, u8> = HashMap::new();
            for (l, op, st) in ops {
                let addr = Addr(l * 64);
                match op {
                    0 => {
                        if let Some((ev, _)) = c.insert(addr, st) {
                            model.remove(&ev.line_index());
                        }
                        model.insert(l, st);
                    }
                    1 => {
                        let got = c.probe(addr);
                        if let Some(s) = got {
                            prop_assert_eq!(model.get(&l), Some(&s));
                        } else {
                            prop_assert!(!model.contains_key(&l));
                        }
                    }
                    _ => {
                        c.invalidate(addr);
                        model.remove(&l);
                    }
                }
                prop_assert!(c.occupancy() <= capacity);
                prop_assert_eq!(c.occupancy(), model.len());
            }
        }
    }
}
