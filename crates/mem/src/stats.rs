//! Memory-system statistics and per-tick activity counters.

use serde::{Deserialize, Serialize};

/// Per-core cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreMemStats {
    /// L1D lookups.
    pub l1_accesses: u64,
    /// L1D hits.
    pub l1_hits: u64,
    /// L1D misses (forwarded to L2).
    pub l1_misses: u64,
    /// L2 lookups for core requests.
    pub l2_accesses: u64,
    /// L2 hits that satisfied the request.
    pub l2_hits: u64,
    /// L2 misses (coherence transaction launched).
    pub l2_misses: u64,
    /// Lines filled cache-to-cache (vs. from memory).
    pub c2c_fills: u64,
    /// Invalidations received from the directory.
    pub invalidations_received: u64,
    /// Forwards (FwdGetS/FwdGetX) this tile served.
    pub fwds_served: u64,
    /// L2 victim evictions.
    pub l2_evictions: u64,
    /// L2 victim evictions that required a dirty writeback.
    pub dirty_evictions: u64,
}

impl CoreMemStats {
    /// L1 hit rate in [0, 1]; 0 when no accesses.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.l1_accesses as f64
        }
    }
}

/// Whole-system memory statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Per-core breakdown.
    pub per_core: Vec<CoreMemStats>,
    /// Main-memory reads.
    pub mem_reads: u64,
    /// Main-memory writes (dirty writebacks).
    pub mem_writes: u64,
    /// Total coherence messages sent.
    pub coh_messages: u64,
}

impl MemStats {
    /// Zeroed stats for `n` cores.
    pub fn new(n: usize) -> Self {
        MemStats {
            per_core: vec![CoreMemStats::default(); n],
            ..Default::default()
        }
    }

    /// Sum of the per-core stats across all tiles (cheap aggregate for
    /// observers that track whole-chip deltas between cycles).
    pub fn totals(&self) -> CoreMemStats {
        let mut t = CoreMemStats::default();
        for s in &self.per_core {
            t.l1_accesses += s.l1_accesses;
            t.l1_hits += s.l1_hits;
            t.l1_misses += s.l1_misses;
            t.l2_accesses += s.l2_accesses;
            t.l2_hits += s.l2_hits;
            t.l2_misses += s.l2_misses;
            t.c2c_fills += s.c2c_fills;
            t.invalidations_received += s.invalidations_received;
            t.fwds_served += s.fwds_served;
            t.l2_evictions += s.l2_evictions;
            t.dirty_evictions += s.dirty_evictions;
        }
        t
    }
}

/// Energy-relevant event counts accumulated since the last
/// [`crate::MemorySystem::take_activity`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemActivity {
    /// L1 array accesses.
    pub l1_accesses: u64,
    /// L2 array accesses.
    pub l2_accesses: u64,
    /// Flit-hops transmitted on the mesh.
    pub noc_flit_hops: u64,
    /// Main-memory accesses started.
    pub mem_accesses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        let s = CoreMemStats::default();
        assert_eq!(s.l1_hit_rate(), 0.0);
        let s = CoreMemStats {
            l1_accesses: 10,
            l1_hits: 7,
            ..Default::default()
        };
        assert!((s.l1_hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn new_sizes_per_core() {
        assert_eq!(MemStats::new(16).per_core.len(), 16);
    }

    #[test]
    fn totals_sums_all_tiles() {
        let mut s = MemStats::new(3);
        s.per_core[0].l1_misses = 4;
        s.per_core[2].l1_misses = 1;
        s.per_core[1].invalidations_received = 7;
        let t = s.totals();
        assert_eq!(t.l1_misses, 5);
        assert_eq!(t.invalidations_received, 7);
        assert_eq!(t.l1_accesses, 0);
    }
}
