//! End-to-end MOESI protocol tests through the public `MemorySystem` API.

use ptb_isa::{Addr, CoreId};
use ptb_mem::{AccessKind, MemConfig, MemReq, MemResp, MemorySystem};

fn sys(n: usize) -> MemorySystem {
    MemorySystem::new(MemConfig::default(), n)
}

fn req(id: u64, core: usize, kind: AccessKind, addr: u64) -> MemReq {
    MemReq {
        id,
        core: CoreId(core),
        kind,
        addr: Addr(addr),
    }
}

/// Tick until `n` responses have arrived or `limit` cycles pass.
fn run_for_responses(ms: &mut MemorySystem, n: usize, limit: u64) -> Vec<(MemResp, u64)> {
    let mut got = Vec::new();
    for _ in 0..limit {
        ms.tick();
        for r in ms.drain_responses() {
            got.push((r, ms.now()));
        }
        if got.len() >= n {
            break;
        }
    }
    got
}

#[test]
fn cold_load_costs_memory_latency() {
    let mut ms = sys(4);
    assert!(ms.request(req(1, 0, AccessKind::Load, 0x1000_0040)));
    let got = run_for_responses(&mut ms, 1, 2000);
    assert_eq!(got.len(), 1);
    let (resp, at) = got[0];
    assert_eq!(resp.id, 1);
    assert_eq!(resp.core, CoreId(0));
    // Must include the 300-cycle memory plus cache lookups and mesh hops.
    assert!(at > 300, "cold miss too fast: {at}");
    assert!(at < 450, "cold miss too slow: {at}");
    assert_eq!(ms.stats().mem_reads, 1);
}

#[test]
fn warm_load_hits_l1_fast() {
    let mut ms = sys(4);
    ms.request(req(1, 0, AccessKind::Load, 0x1000_0040));
    run_for_responses(&mut ms, 1, 2000);
    let t0 = ms.now();
    ms.request(req(2, 0, AccessKind::Load, 0x1000_0048));
    let got = run_for_responses(&mut ms, 1, 50);
    assert_eq!(got.len(), 1);
    let lat = got[0].1 - t0;
    assert!(lat <= 4, "L1 hit latency {lat} too high");
    assert_eq!(ms.stats().per_core[0].l1_hits, 1);
}

#[test]
fn store_after_exclusive_fill_is_silent_upgrade() {
    let mut ms = sys(4);
    ms.request(req(1, 0, AccessKind::Load, 0x1000_0040));
    run_for_responses(&mut ms, 1, 2000);
    let msgs_before = ms.stats().coh_messages;
    let t0 = ms.now();
    ms.request(req(2, 0, AccessKind::Store, 0x1000_0040));
    let got = run_for_responses(&mut ms, 1, 50);
    assert_eq!(got.len(), 1);
    assert!(got[0].1 - t0 <= 4, "E->M upgrade should be local");
    assert_eq!(
        ms.stats().coh_messages,
        msgs_before,
        "silent upgrade sent messages"
    );
}

#[test]
fn second_reader_fills_cache_to_cache() {
    let mut ms = sys(4);
    ms.request(req(1, 0, AccessKind::Load, 0x1000_0040));
    run_for_responses(&mut ms, 1, 2000);
    let reads_before = ms.stats().mem_reads;
    ms.request(req(2, 1, AccessKind::Load, 0x1000_0040));
    let got = run_for_responses(&mut ms, 1, 2000);
    assert_eq!(got.len(), 1);
    assert_eq!(
        ms.stats().mem_reads,
        reads_before,
        "C2C fill should not touch memory"
    );
    assert_eq!(ms.stats().per_core[1].c2c_fills, 1);
    assert_eq!(ms.stats().per_core[0].fwds_served, 1);
}

#[test]
fn writer_invalidates_sharers() {
    let mut ms = sys(4);
    // Cores 0,1,2 read the line.
    for c in 0..3 {
        ms.request(req(c as u64 + 1, c, AccessKind::Load, 0x1000_0040));
        run_for_responses(&mut ms, 1, 2000);
    }
    // Core 3 writes it.
    ms.request(req(10, 3, AccessKind::Store, 0x1000_0040));
    let got = run_for_responses(&mut ms, 1, 2000);
    assert_eq!(got.len(), 1);
    let invs: u64 = (0..3)
        .map(|c| ms.stats().per_core[c].invalidations_received)
        .sum();
    assert!(
        invs >= 2,
        "expected at least 2 sharer invalidations, got {invs}"
    );
    // Core 0's next read must miss (its copy was invalidated or downgraded
    // away) and fetch cache-to-cache from core 3.
    let c2c_before = ms.stats().per_core[0].c2c_fills;
    ms.request(req(11, 0, AccessKind::Load, 0x1000_0040));
    run_for_responses(&mut ms, 1, 2000);
    assert_eq!(ms.stats().per_core[0].c2c_fills, c2c_before + 1);
}

#[test]
fn upgrade_from_shared_invalidates_other_sharer() {
    let mut ms = sys(2);
    ms.request(req(1, 0, AccessKind::Load, 0x1000_0040));
    run_for_responses(&mut ms, 1, 2000);
    ms.request(req(2, 1, AccessKind::Load, 0x1000_0040));
    run_for_responses(&mut ms, 1, 2000);
    // Core 0 now upgrades S -> M.
    ms.request(req(3, 0, AccessKind::Store, 0x1000_0040));
    let got = run_for_responses(&mut ms, 1, 2000);
    assert_eq!(got.len(), 1);
    assert_eq!(ms.stats().per_core[1].invalidations_received, 1);
    assert_eq!(ms.stats().mem_reads, 1, "upgrade must not re-read memory");
}

#[test]
fn rmw_serialises_between_cores() {
    let mut ms = sys(4);
    ms.request(req(1, 0, AccessKind::Rmw, 0x8000_0000));
    ms.request(req(2, 1, AccessKind::Rmw, 0x8000_0000));
    let got = run_for_responses(&mut ms, 2, 5000);
    assert_eq!(got.len(), 2, "both RMWs must complete");
    // They complete at different times (ownership transfer between them).
    assert_ne!(got[0].1, got[1].1);
}

#[test]
fn capacity_evictions_write_back_and_line_is_reusable() {
    let cfg = MemConfig::default();
    let mut ms = MemorySystem::new(cfg, 2);
    // L2: 4096 sets, 4 ways. Store 6 lines that map to the same L2 set:
    // stride = sets * 64 bytes = 256 KiB.
    let stride = 4096u64 * 64;
    for i in 0..6u64 {
        ms.request(req(i, 0, AccessKind::Store, 0x1000_0000 + i * stride));
        let got = run_for_responses(&mut ms, 1, 5000);
        assert_eq!(got.len(), 1, "store {i} did not complete");
    }
    let s = &ms.stats().per_core[0];
    assert!(
        s.l2_evictions >= 2,
        "expected evictions, got {}",
        s.l2_evictions
    );
    assert!(s.dirty_evictions >= 2);
    assert!(ms.stats().mem_writes >= 2);
    // The first (evicted) line can be fetched again.
    ms.request(req(100, 0, AccessKind::Load, 0x1000_0000));
    let got = run_for_responses(&mut ms, 1, 5000);
    assert_eq!(got.len(), 1);
}

#[test]
fn dirty_line_transfers_to_second_writer() {
    let mut ms = sys(4);
    ms.request(req(1, 0, AccessKind::Store, 0x1000_0040));
    run_for_responses(&mut ms, 1, 2000);
    let reads_before = ms.stats().mem_reads;
    ms.request(req(2, 1, AccessKind::Store, 0x1000_0040));
    let got = run_for_responses(&mut ms, 1, 2000);
    assert_eq!(got.len(), 1);
    assert_eq!(
        ms.stats().mem_reads,
        reads_before,
        "M->M transfer must be C2C"
    );
    assert_eq!(ms.stats().per_core[1].c2c_fills, 1);
}

#[test]
fn read_after_remote_write_gets_fresh_copy() {
    let mut ms = sys(2);
    // Classic spinlock release pattern: core 1 spins reading, core 0 writes.
    ms.request(req(1, 1, AccessKind::Load, 0x8000_0000));
    run_for_responses(&mut ms, 1, 2000);
    ms.request(req(2, 0, AccessKind::Store, 0x8000_0000));
    run_for_responses(&mut ms, 1, 2000);
    // Core 1 held the line in E (sole cached copy), so the write arrives as
    // a forward it must serve, losing its copy.
    assert_eq!(ms.stats().per_core[1].fwds_served, 1);
    ms.request(req(3, 1, AccessKind::Load, 0x8000_0000));
    let got = run_for_responses(&mut ms, 1, 2000);
    assert_eq!(got.len(), 1);
    assert_eq!(ms.stats().per_core[1].c2c_fills, 1);
}

#[test]
fn ttas_spin_is_local_until_release_invalidates() {
    // The test-and-test-and-set pattern the sync fabric models: a waiter
    // spins on plain loads of a line the holder owns. While the lock is
    // held, every spin iteration must be a pure L1 hit with zero new
    // coherence messages — this is the property that makes spinning
    // power-cheap enough for PTB's spin-gating to matter. The release
    // store then invalidates the waiter, whose next read refills
    // cache-to-cache from the releasing core.
    let mut ms = sys(2);
    // Core 0 acquires: RMW takes the lock line in M.
    ms.request(req(1, 0, AccessKind::Rmw, 0x8000_0000));
    run_for_responses(&mut ms, 1, 2000);
    // Core 1's first test pulls a shared copy (downgrading the holder).
    ms.request(req(2, 1, AccessKind::Load, 0x8000_0000));
    run_for_responses(&mut ms, 1, 2000);

    let coh_before = ms.stats().coh_messages;
    let hits_before = ms.stats().per_core[1].l1_hits;
    for i in 0..20u64 {
        ms.request(req(10 + i, 1, AccessKind::Load, 0x8000_0000));
        let got = run_for_responses(&mut ms, 1, 50);
        assert_eq!(got.len(), 1, "spin load {i} did not complete");
    }
    assert_eq!(
        ms.stats().coh_messages,
        coh_before,
        "spin loads generated coherence traffic"
    );
    assert_eq!(ms.stats().per_core[1].l1_hits, hits_before + 20);

    // Release: the holder's store must invalidate the spinning reader.
    let inv_before = ms.stats().per_core[1].invalidations_received;
    ms.request(req(100, 0, AccessKind::Store, 0x8000_0000));
    run_for_responses(&mut ms, 1, 2000);
    assert_eq!(
        ms.stats().per_core[1].invalidations_received,
        inv_before + 1,
        "release store did not invalidate the spinner"
    );

    // The waiter observes the release via a C2C fill, not memory.
    let c2c_before = ms.stats().per_core[1].c2c_fills;
    let reads_before = ms.stats().mem_reads;
    ms.request(req(101, 1, AccessKind::Load, 0x8000_0000));
    let got = run_for_responses(&mut ms, 1, 2000);
    assert_eq!(got.len(), 1);
    assert_eq!(ms.stats().per_core[1].c2c_fills, c2c_before + 1);
    assert_eq!(
        ms.stats().mem_reads,
        reads_before,
        "release visible without memory"
    );
}

#[test]
fn same_core_requests_merge_in_mshr() {
    let mut ms = sys(2);
    // Two loads to the same cold line back-to-back: one memory read.
    ms.request(req(1, 0, AccessKind::Load, 0x1000_0040));
    ms.request(req(2, 0, AccessKind::Load, 0x1000_0048));
    let got = run_for_responses(&mut ms, 2, 2000);
    assert_eq!(got.len(), 2);
    assert_eq!(
        ms.stats().mem_reads,
        1,
        "second load must merge into the MSHR"
    );
}

#[test]
fn load_then_store_same_line_defers_and_upgrades() {
    let mut ms = sys(2);
    ms.request(req(1, 0, AccessKind::Load, 0x1000_0040));
    ms.request(req(2, 0, AccessKind::Store, 0x1000_0040));
    let got = run_for_responses(&mut ms, 2, 5000);
    assert_eq!(
        got.len(),
        2,
        "both the load and the deferred store must complete"
    );
}

#[test]
fn determinism_same_inputs_same_timing() {
    let run = || {
        let mut ms = sys(4);
        let mut times = Vec::new();
        for i in 0..4 {
            ms.request(req(i as u64, i, AccessKind::Store, 0x1000_0040));
        }
        for _ in 0..5000 {
            ms.tick();
            for r in ms.drain_responses() {
                times.push((r.id, ms.now()));
            }
            if times.len() == 4 {
                break;
            }
        }
        times
    };
    assert_eq!(run(), run());
}

#[test]
fn system_goes_idle_after_draining() {
    let mut ms = sys(4);
    for i in 0..8u64 {
        ms.request(req(
            i,
            (i % 4) as usize,
            AccessKind::Store,
            0x1000_0000 + i * 64,
        ));
    }
    let got = run_for_responses(&mut ms, 8, 5000);
    assert_eq!(got.len(), 8);
    // Let WbAcks / Unblocks land.
    for _ in 0..500 {
        ms.tick();
        ms.drain_responses();
    }
    assert!(ms.is_idle(), "in-flight state left behind");
}

#[test]
fn input_queue_backpressure() {
    let mut ms = sys(2);
    let cap = ms.config().inq_capacity;
    let mut accepted = 0;
    for i in 0..cap + 8 {
        if ms.request(req(
            i as u64,
            0,
            AccessKind::Load,
            0x1000_0000 + i as u64 * 4096,
        )) {
            accepted += 1;
        }
    }
    assert_eq!(accepted, cap);
}

#[test]
fn contended_rmw_storm_completes() {
    // 8 cores hammer the same lock line with RMWs, interleaved with loads —
    // the blocking directory must serialise everything without deadlock.
    let mut ms = sys(8);
    let mut id = 0u64;
    let mut outstanding = 0usize;
    let mut completed = 0usize;
    let mut issued = 0usize;
    let total = 200;
    for _ in 0..200_000u64 {
        while issued < total && outstanding < 8 {
            let core = issued % 8;
            let kind = if issued.is_multiple_of(3) {
                AccessKind::Load
            } else {
                AccessKind::Rmw
            };
            if ms.request(req(id, core, kind, 0x8000_0000)) {
                id += 1;
                issued += 1;
                outstanding += 1;
            } else {
                break;
            }
        }
        ms.tick();
        let done = ms.drain_responses().len();
        completed += done;
        outstanding -= done;
        if completed == total {
            break;
        }
    }
    assert_eq!(completed, total, "deadlock or lost request in RMW storm");
}

mod prop_soup {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Any request soup completes exactly once, regardless of the mix
        /// of cores, kinds and (possibly colliding) lines.
        #[test]
        fn random_request_soup_completes_exactly_once(
            reqs in proptest::collection::vec(
                (0usize..4, 0u8..3, 0u64..12), 1..60),
        ) {
            let mut ms = sys(4);
            let mut outstanding = std::collections::HashSet::new();
            let mut pending: Vec<MemReq> = reqs
                .iter()
                .enumerate()
                .map(|(i, &(core, kind, line))| {
                    let kind = match kind {
                        0 => AccessKind::Load,
                        1 => AccessKind::Store,
                        _ => AccessKind::Rmw,
                    };
                    req(i as u64, core, kind, 0x1000_0000 + line * 64)
                })
                .collect();
            pending.reverse();
            let total = pending.len();
            let mut completed = 0usize;
            for _ in 0..400_000u64 {
                // Feed as backpressure allows.
                while let Some(r) = pending.last().copied() {
                    if ms.request(r) {
                        prop_assert!(outstanding.insert(r.id), "duplicate id");
                        pending.pop();
                    } else {
                        break;
                    }
                }
                ms.tick();
                for resp in ms.drain_responses() {
                    prop_assert!(
                        outstanding.remove(&resp.id),
                        "response for unknown/duplicate id {}",
                        resp.id
                    );
                    completed += 1;
                }
                if completed == total {
                    break;
                }
            }
            prop_assert_eq!(completed, total, "requests lost (deadlock?)");
        }
    }
}
