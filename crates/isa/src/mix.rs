//! Synthetic compute-block generation.
//!
//! Workload models describe computation as *blocks* with a statistical
//! profile: an instruction mix, a memory-access pattern and a
//! branch-predictability profile. [`BlockGen`] turns such a profile into a
//! deterministic (seeded) stream of [`DynInst`]s with **stable static PCs**:
//! the generator fabricates a static loop body once and then iterates it,
//! varying only data addresses and flaky-branch outcomes. Stable PCs matter
//! because both the gshare predictor and the Power-Token History Table
//! (PTHT) of the paper are PC-indexed.

use crate::addr::{layout, Addr, CACHE_LINE_BYTES};
use crate::inst::{BranchInfo, DynInst, ExecCtx, MemRef, OpKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Relative frequencies of compute-block instruction kinds.
///
/// Weights need not sum to 1; they are normalised internally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstMix {
    /// Integer ALU weight.
    pub int_alu: f32,
    /// Integer multiply weight.
    pub int_mul: f32,
    /// FP add weight.
    pub fp_alu: f32,
    /// FP multiply weight.
    pub fp_mul: f32,
    /// Load weight.
    pub load: f32,
    /// Store weight.
    pub store: f32,
    /// Conditional-branch weight (besides the loop back-edge).
    pub branch: f32,
}

impl InstMix {
    /// Integer-dominated mix (e.g. radix sort, x264 entropy coding).
    pub fn int_heavy() -> Self {
        InstMix {
            int_alu: 0.50,
            int_mul: 0.04,
            fp_alu: 0.02,
            fp_mul: 0.01,
            load: 0.22,
            store: 0.11,
            branch: 0.10,
        }
    }

    /// Floating-point-dominated mix (e.g. water, barnes, blackscholes).
    pub fn fp_heavy() -> Self {
        InstMix {
            int_alu: 0.22,
            int_mul: 0.02,
            fp_alu: 0.26,
            fp_mul: 0.18,
            load: 0.20,
            store: 0.07,
            branch: 0.05,
        }
    }

    /// Memory-dominated mix (e.g. ocean, fft transpose phases).
    pub fn mem_heavy() -> Self {
        InstMix {
            int_alu: 0.28,
            int_mul: 0.01,
            fp_alu: 0.10,
            fp_mul: 0.06,
            load: 0.32,
            store: 0.16,
            branch: 0.07,
        }
    }

    /// A balanced mix.
    pub fn balanced() -> Self {
        InstMix {
            int_alu: 0.35,
            int_mul: 0.03,
            fp_alu: 0.12,
            fp_mul: 0.08,
            load: 0.24,
            store: 0.10,
            branch: 0.08,
        }
    }

    fn cumulative(&self) -> [(f32, OpKind); 7] {
        let raw = [
            (self.int_alu, OpKind::IntAlu),
            (self.int_mul, OpKind::IntMul),
            (self.fp_alu, OpKind::FpAlu),
            (self.fp_mul, OpKind::FpMul),
            (self.load, OpKind::Load),
            (self.store, OpKind::Store),
            (self.branch, OpKind::Branch),
        ];
        let total: f32 = raw.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0, "InstMix weights must not all be zero");
        let mut acc = 0.0;
        raw.map(|(w, k)| {
            acc += w / total;
            (acc, k)
        })
    }

    /// Draw a kind according to the mix.
    fn sample(table: &[(f32, OpKind); 7], rng: &mut SmallRng) -> OpKind {
        let x: f32 = rng.random();
        for &(acc, kind) in table {
            if x <= acc {
                return kind;
            }
        }
        OpKind::IntAlu
    }
}

/// Data-memory access pattern for a compute block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemPattern {
    /// Bytes of shared working set touched by this block (within the global
    /// shared region).
    pub shared_footprint: u64,
    /// Byte offset of this block's window inside the shared region
    /// (different phases of a benchmark can walk different windows).
    pub shared_offset: u64,
    /// Fraction of memory accesses that go to shared data (the rest hit the
    /// thread-private region, which caches very well).
    pub shared_frac: f64,
    /// Probability that a shared access reuses one of the last few touched
    /// lines instead of striding on (temporal locality knob).
    pub locality: f64,
    /// Stride, in bytes, between successive non-reused shared accesses.
    pub stride: u64,
    /// Fraction of shared accesses that cross thread partitions (real
    /// parallel programs partition their arrays; only a small fraction of
    /// traffic touches other threads' data and generates coherence
    /// transfers).
    pub cross_frac: f64,
}

impl MemPattern {
    /// Small, cache-resident working set with high locality.
    pub fn cache_resident() -> Self {
        MemPattern {
            shared_footprint: 32 << 10,
            shared_offset: 0,
            shared_frac: 0.4,
            locality: 0.8,
            stride: 8,
            cross_frac: 0.05,
        }
    }

    /// Streaming pattern over a large footprint (defeats the L2).
    pub fn streaming(footprint: u64) -> Self {
        MemPattern {
            shared_footprint: footprint,
            shared_offset: 0,
            shared_frac: 0.8,
            locality: 0.05,
            stride: CACHE_LINE_BYTES,
            cross_frac: 0.1,
        }
    }
}

/// Full profile of a compute block generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockGenConfig {
    /// Instruction mix.
    pub mix: InstMix,
    /// Memory pattern.
    pub mem: MemPattern,
    /// Static loop-body length in instructions (stable PCs); the body is
    /// closed by a backward loop branch.
    pub static_len: usize,
    /// Fraction of in-body conditional branches whose outcome is random
    /// each iteration (these are what the gshare mispredicts).
    pub flaky_branch_frac: f64,
    /// Probability that an instruction carries a first register dependence
    /// on a recent producer (controls available ILP).
    pub dep_density: f64,
}

impl Default for BlockGenConfig {
    fn default() -> Self {
        BlockGenConfig {
            mix: InstMix::balanced(),
            mem: MemPattern::cache_resident(),
            static_len: 128,
            flaky_branch_frac: 0.15,
            dep_density: 0.55,
        }
    }
}

/// One static slot of the fabricated loop body.
#[derive(Debug, Clone, Copy)]
struct Slot {
    kind: OpKind,
    /// For branches: outcome is random each iteration when flaky, else a
    /// fixed, highly-biased outcome the predictor learns quickly.
    flaky: bool,
    bias_taken: bool,
    dep1: Option<u8>,
    dep2: Option<u8>,
}

/// Deterministic generator of compute instructions from a profile.
///
/// Each call to [`BlockGen::next_inst`] advances one instruction through the
/// fabricated loop body; the final slot is a backward branch to the body
/// start (taken until the caller stops asking).
pub struct BlockGen {
    slots: Vec<Slot>,
    table: [(f32, OpKind); 7],
    cfg: BlockGenConfig,
    pc_base: u64,
    pos: usize,
    rng: SmallRng,
    /// Ring of recently touched shared lines for the locality knob.
    recent: [u64; 8],
    recent_len: usize,
    shared_cursor: u64,
    private_cursor: u64,
    tid: usize,
    n_threads: usize,
}

impl BlockGen {
    /// Build a generator for thread `tid`. `pc_base` places the fabricated
    /// body in the (synthetic) code address space; distinct blocks should
    /// use distinct bases so predictor/PTHT entries don't alias
    /// artificially. `seed` makes the stream reproducible.
    pub fn new(cfg: BlockGenConfig, tid: usize, pc_base: u64, seed: u64) -> Self {
        Self::with_threads(cfg, tid, 1, pc_base, seed)
    }

    /// Like [`BlockGen::new`], but partition-aware: the shared footprint is
    /// split into `n_threads` chunks and this thread's non-crossing
    /// accesses walk its own chunk (`tid`-th), as real data-parallel codes
    /// do.
    pub fn with_threads(
        cfg: BlockGenConfig,
        tid: usize,
        n_threads: usize,
        pc_base: u64,
        seed: u64,
    ) -> Self {
        assert!(
            cfg.static_len >= 2,
            "loop body needs at least one op and a back-edge"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let table = cfg.mix.cumulative();
        let mut slots = Vec::with_capacity(cfg.static_len);
        for i in 0..cfg.static_len {
            let is_backedge = i == cfg.static_len - 1;
            let kind = if is_backedge {
                OpKind::Branch
            } else {
                InstMix::sample(&table, &mut rng)
            };
            let flaky =
                kind == OpKind::Branch && !is_backedge && rng.random_bool(cfg.flaky_branch_frac);
            let dep1 = if rng.random_bool(cfg.dep_density) {
                Some(rng.random_range(1..=6) as u8)
            } else {
                None
            };
            let dep2 = if rng.random_bool(cfg.dep_density * 0.4) {
                Some(rng.random_range(1..=8) as u8)
            } else {
                None
            };
            slots.push(Slot {
                kind,
                flaky,
                bias_taken: rng.random_bool(0.3),
                dep1,
                dep2,
            });
        }
        BlockGen {
            slots,
            table,
            cfg,
            pc_base,
            pos: 0,
            rng,
            recent: [0; 8],
            recent_len: 0,
            shared_cursor: 0,
            private_cursor: 0,
            tid,
            n_threads: n_threads.max(1),
        }
    }

    /// Reset the body position (e.g. at a phase boundary).
    pub fn restart(&mut self) {
        self.pos = 0;
    }

    /// PC of the current slot.
    #[inline]
    fn pc(&self) -> u64 {
        self.pc_base + self.pos as u64 * 4
    }

    fn next_shared_addr(&mut self) -> Addr {
        let reuse = self.recent_len > 0 && self.rng.random_bool(self.cfg.mem.locality);
        let line = if reuse {
            self.recent[self.rng.random_range(0..self.recent_len)]
        } else {
            let fp = self.cfg.mem.shared_footprint.max(CACHE_LINE_BYTES);
            let addr = if self.rng.random_bool(self.cfg.mem.cross_frac) {
                // Cross-partition access: anywhere in the full footprint
                // (this is what generates coherence transfers).
                let off = self.rng.random_range(0..fp.max(1));
                layout::SHARED_BASE.0 + self.cfg.mem.shared_offset + off
            } else {
                // Walk this thread's own partition.
                let chunk = (fp / self.n_threads as u64).max(CACHE_LINE_BYTES);
                self.shared_cursor = (self.shared_cursor + self.cfg.mem.stride.max(1)) % chunk;
                let base = (self.tid as u64 % self.n_threads as u64) * chunk;
                layout::SHARED_BASE.0 + self.cfg.mem.shared_offset + base + self.shared_cursor
            };
            let line = addr / CACHE_LINE_BYTES;
            let idx = if self.recent_len < self.recent.len() {
                let idx = self.recent_len;
                self.recent_len += 1;
                idx
            } else {
                self.rng.random_range(0..self.recent.len())
            };
            self.recent[idx] = line;
            line
        };
        Addr(line * CACHE_LINE_BYTES + self.rng.random_range(0..8) * 8)
    }

    fn next_private_addr(&mut self) -> Addr {
        // Walk a small stack-like window: almost always L1-resident.
        self.private_cursor = (self.private_cursor + 16) % (8 << 10);
        layout::private_base(self.tid).offset(self.private_cursor)
    }

    fn next_mem_ref(&mut self) -> MemRef {
        let addr = if self.rng.random_bool(self.cfg.mem.shared_frac) {
            self.next_shared_addr()
        } else {
            self.next_private_addr()
        };
        MemRef { addr, size: 8 }
    }

    /// Generate the next compute instruction, tagged with `ctx`.
    pub fn next_inst(&mut self, ctx: ExecCtx) -> DynInst {
        let slot = self.slots[self.pos];
        let pc = self.pc();
        let is_backedge = self.pos == self.slots.len() - 1;
        let mut inst = DynInst {
            pc,
            kind: slot.kind,
            dep1: slot.dep1,
            dep2: slot.dep2,
            mem: None,
            branch: None,
            rmw: None,
            ctx,
        };
        match slot.kind {
            OpKind::Load | OpKind::Store => {
                inst.mem = Some(self.next_mem_ref());
            }
            OpKind::Branch => {
                let taken = if is_backedge {
                    true // the caller decides when to leave the loop
                } else if slot.flaky {
                    self.rng.random_bool(0.5)
                } else {
                    slot.bias_taken
                };
                let target = if is_backedge || taken {
                    self.pc_base
                } else {
                    pc + 8
                };
                inst.branch = Some(BranchInfo { taken, target });
            }
            _ => {}
        }
        self.pos = (self.pos + 1) % self.slots.len();
        inst
    }

    /// Draw a kind from the mix (exposed for workload models that want
    /// one-off filler instructions with the same profile).
    pub fn sample_kind(&mut self) -> OpKind {
        InstMix::sample(&self.table, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn gen(cfg: BlockGenConfig, seed: u64) -> BlockGen {
        BlockGen::new(cfg, 0, 0x1_0000, seed)
    }

    #[test]
    fn pcs_repeat_every_body_iteration() {
        let mut g = gen(
            BlockGenConfig {
                static_len: 16,
                ..Default::default()
            },
            1,
        );
        let first: Vec<u64> = (0..16).map(|_| g.next_inst(ExecCtx::BUSY).pc).collect();
        let second: Vec<u64> = (0..16).map(|_| g.next_inst(ExecCtx::BUSY).pc).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn mix_is_roughly_respected() {
        let cfg = BlockGenConfig {
            mix: InstMix::int_heavy(),
            static_len: 4096,
            ..Default::default()
        };
        let mut g = gen(cfg, 2);
        let mut counts: HashMap<OpKind, usize> = HashMap::new();
        for _ in 0..4096 {
            *counts.entry(g.next_inst(ExecCtx::BUSY).kind).or_default() += 1;
        }
        let alu = counts[&OpKind::IntAlu] as f64 / 4096.0;
        assert!(
            (0.35..0.65).contains(&alu),
            "IntAlu fraction {alu} out of band"
        );
        assert!(counts.get(&OpKind::FpMul).copied().unwrap_or(0) < 200);
    }

    #[test]
    fn deterministic_across_equal_seeds() {
        let cfg = BlockGenConfig::default();
        let mut a = gen(cfg, 42);
        let mut b = gen(cfg, 42);
        for _ in 0..500 {
            assert_eq!(a.next_inst(ExecCtx::BUSY), b.next_inst(ExecCtx::BUSY));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = BlockGenConfig::default();
        let mut a = gen(cfg, 1);
        let mut b = gen(cfg, 2);
        let same = (0..200)
            .filter(|_| a.next_inst(ExecCtx::BUSY) == b.next_inst(ExecCtx::BUSY))
            .count();
        assert!(same < 200);
    }

    #[test]
    fn memory_ops_carry_refs_and_stay_in_region() {
        let cfg = BlockGenConfig {
            mix: InstMix::mem_heavy(),
            ..Default::default()
        };
        let mut g = gen(cfg, 3);
        let mut saw_shared = false;
        let mut saw_private = false;
        for _ in 0..2000 {
            let i = g.next_inst(ExecCtx::BUSY);
            assert!(i.validate().is_ok());
            if let Some(m) = i.mem {
                if m.addr.0 >= layout::PRIVATE_BASE.0 {
                    saw_private = true;
                    assert!(m.addr.0 < layout::private_base(1).0);
                } else {
                    saw_shared = true;
                    assert!(m.addr.0 >= layout::SHARED_BASE.0);
                    assert!(
                        m.addr.0
                            < layout::SHARED_BASE.0
                                + cfg.mem.shared_offset
                                + cfg.mem.shared_footprint
                                + CACHE_LINE_BYTES
                    );
                }
            }
        }
        assert!(saw_shared && saw_private);
    }

    #[test]
    fn backedge_is_taken_branch_to_body_start() {
        let cfg = BlockGenConfig {
            static_len: 8,
            ..Default::default()
        };
        let mut g = gen(cfg, 4);
        for _ in 0..7 {
            g.next_inst(ExecCtx::BUSY);
        }
        let back = g.next_inst(ExecCtx::BUSY);
        assert_eq!(back.kind, OpKind::Branch);
        let b = back.branch.unwrap();
        assert!(b.taken);
        assert_eq!(b.target, 0x1_0000);
    }

    #[test]
    fn streaming_pattern_advances_lines() {
        let cfg = BlockGenConfig {
            mix: InstMix::mem_heavy(),
            mem: MemPattern::streaming(1 << 20),
            ..Default::default()
        };
        let mut g = gen(cfg, 5);
        let mut lines = std::collections::HashSet::new();
        for _ in 0..4000 {
            if let Some(m) = g.next_inst(ExecCtx::BUSY).mem {
                if m.addr.0 < layout::PRIVATE_BASE.0 {
                    lines.insert(m.addr.line_index());
                }
            }
        }
        assert!(
            lines.len() > 100,
            "streaming should touch many lines, got {}",
            lines.len()
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn generated_instructions_always_validate(
            seed in 0u64..1000,
            static_len in 2usize..64,
            flaky in 0.0f64..1.0,
            dep in 0.0f64..1.0,
            shared_frac in 0.0f64..1.0,
        ) {
            let cfg = BlockGenConfig {
                static_len,
                flaky_branch_frac: flaky,
                dep_density: dep,
                mem: MemPattern { shared_frac, ..MemPattern::cache_resident() },
                ..Default::default()
            };
            let mut g = BlockGen::new(cfg, 1, 0x2000, seed);
            for _ in 0..256 {
                let i = g.next_inst(ExecCtx::BUSY);
                prop_assert!(i.validate().is_ok());
                prop_assert!(i.dep1.is_none_or(|d| d >= 1));
            }
        }
    }
}
