//! Strongly-typed identifiers used across the simulator.

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                Self(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

id_newtype!(
    /// A physical core in the CMP (0-based, row-major in the mesh).
    CoreId
);
id_newtype!(
    /// A software thread. The simulator pins thread *i* to core *i*
    /// (one thread per core, as in the paper's experiments).
    ThreadId
);
id_newtype!(
    /// A spinlock variable.
    LockId
);
id_newtype!(
    /// A barrier variable.
    BarrierId
);

/// Correlation token for an in-flight atomic read-modify-write.
///
/// The workload stream attaches a token when it emits an [`crate::OpKind::AtomicRmw`]
/// instruction; the core echoes the token back together with the old value
/// when the RMW executes, letting the stream decide how to continue (e.g.
/// whether a test-and-set acquired the lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RmwToken(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        let c = CoreId::from(3);
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c}"), "CoreId3");
        assert_eq!(ThreadId(1), ThreadId::from(1));
        assert!(LockId(0) < LockId(1));
        assert_ne!(BarrierId(2), BarrierId(3));
    }
}
