//! Physical addresses and the simulated address-space layout.
//!
//! The simulator uses a single flat physical address space. Workload models
//! carve it into conventional regions so that cache behaviour is meaningful:
//! per-thread private segments (stack/locals), a shared data region (the
//! benchmark's working set) and a synchronisation region in which every lock
//! or barrier word occupies its own cache line (no false sharing between
//! synchronisation variables, matching how SPLASH-2 pads its locks).

use serde::{Deserialize, Serialize};

/// Cache-line size in bytes, fixed at 64 B as in the paper's configuration.
pub const CACHE_LINE_BYTES: u64 = 64;

/// A physical byte address in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Addr(pub u64);

impl Addr {
    /// The address of the first byte of the cache line containing `self`.
    #[inline]
    pub fn line(self) -> Addr {
        Addr(self.0 & !(CACHE_LINE_BYTES - 1))
    }

    /// Line number (address divided by the line size).
    #[inline]
    pub fn line_index(self) -> u64 {
        self.0 / CACHE_LINE_BYTES
    }

    /// Byte offset within the cache line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 % CACHE_LINE_BYTES
    }

    /// Add a byte offset, wrapping on overflow (addresses are synthetic).
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

/// Conventional layout of the simulated address space.
///
/// All constants are line-aligned. The regions are far apart so a workload
/// bug cannot silently alias synchronisation lines with data lines.
pub mod layout {
    use super::{Addr, CACHE_LINE_BYTES};

    /// Base of the shared-data region (the benchmark working set).
    pub const SHARED_BASE: Addr = Addr(0x1000_0000);
    /// Base of the per-thread private regions.
    pub const PRIVATE_BASE: Addr = Addr(0x4000_0000);
    /// Size reserved for each thread's private region (16 MiB).
    pub const PRIVATE_STRIDE: u64 = 16 << 20;
    /// Base of the synchronisation-variable region.
    pub const SYNC_BASE: Addr = Addr(0x8000_0000);
    /// Locks and barriers each get one line; barriers start at this offset
    /// (so up to `BARRIER_REGION_OFFSET / 64` locks are addressable).
    pub const BARRIER_REGION_OFFSET: u64 = 1 << 20;

    /// Base address of thread `tid`'s private region.
    #[inline]
    pub fn private_base(tid: usize) -> Addr {
        Addr(PRIVATE_BASE.0 + tid as u64 * PRIVATE_STRIDE)
    }

    /// Address of the line holding lock `id`. Each lock owns **two**
    /// consecutive lines: word 0 of the first line is the lock/ticket
    /// word; ticket locks keep their now-serving word on the second line
    /// (no false sharing between arrivals and releases).
    #[inline]
    pub fn lock_addr(id: usize) -> Addr {
        Addr(SYNC_BASE.0 + id as u64 * 2 * CACHE_LINE_BYTES)
    }

    /// Address of the line holding barrier `id`'s arrival counter.
    /// The barrier's sense/generation word lives on the *next* line.
    #[inline]
    pub fn barrier_counter_addr(id: usize) -> Addr {
        Addr(SYNC_BASE.0 + BARRIER_REGION_OFFSET + id as u64 * 2 * CACHE_LINE_BYTES)
    }

    /// Address of the line holding barrier `id`'s generation (sense) word.
    #[inline]
    pub fn barrier_sense_addr(id: usize) -> Addr {
        barrier_counter_addr(id).offset(CACHE_LINE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        let a = Addr(0x1234);
        assert_eq!(a.line(), Addr(0x1200));
        assert_eq!(a.line_offset(), 0x34);
        assert_eq!(a.line_index(), 0x1234 / 64);
    }

    #[test]
    fn line_of_aligned_address_is_identity() {
        let a = Addr(0x40);
        assert_eq!(a.line(), a);
        assert_eq!(a.line_offset(), 0);
    }

    #[test]
    fn sync_variables_do_not_share_lines() {
        let l0 = layout::lock_addr(0);
        let l1 = layout::lock_addr(1);
        assert_ne!(l0.line(), l1.line());
        let b0c = layout::barrier_counter_addr(0);
        let b0s = layout::barrier_sense_addr(0);
        let b1c = layout::barrier_counter_addr(1);
        assert_ne!(b0c.line(), b0s.line());
        assert_ne!(b0s.line(), b1c.line());
    }

    #[test]
    fn private_regions_are_disjoint() {
        let p0 = layout::private_base(0);
        let p1 = layout::private_base(1);
        assert!(p1.0 - p0.0 >= layout::PRIVATE_STRIDE);
        // Private regions never overlap the shared region for sane thread
        // counts.
        assert!(p0.0 > layout::SHARED_BASE.0);
    }

    #[test]
    fn lock_region_does_not_reach_barrier_region() {
        // The largest lock id used by any workload must stay below the
        // barrier region.
        let max_locks = (layout::BARRIER_REGION_OFFSET / (2 * CACHE_LINE_BYTES)) as usize;
        let last = layout::lock_addr(max_locks - 1);
        assert!(last.0 < layout::barrier_counter_addr(0).0);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(format!("{}", Addr(0x40)), "0x0000000040");
    }
}
