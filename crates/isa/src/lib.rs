//! # ptb-isa — micro-ISA for the PTB CMP simulator
//!
//! This crate defines the *vocabulary* shared by every layer of the
//! simulator that reproduces Cebrián, Aragón & Kaxiras, *“Power Token
//! Balancing: Adapting CMPs to Power Constraints for Parallel Multithreaded
//! Workloads”* (IPDPS 2011):
//!
//! * [`DynInst`] — a dynamic instruction as seen by the out-of-order core:
//!   operation kind, register dependences (expressed as distances to older
//!   instructions, the standard trace-driven encoding), optional memory
//!   reference, branch outcome and atomic read-modify-write payload.
//! * [`InstStream`] — the interface through which a *workload model* feeds
//!   instructions to a core. Synchronisation (locks/barriers) is resolved
//!   through this interface: spin loops are emitted one iteration at a time
//!   and atomic RMWs block the stream until the core reports the executed
//!   old value, so mutual exclusion is decided by the *timing* model, not by
//!   the workload generator.
//! * [`ExecCtx`] — the execution-context tag (busy / lock-acquire /
//!   lock-release / barrier, spinning or not) used to reproduce the paper's
//!   Figure 3 execution-time breakdown and Figure 4 spin-power analysis.
//! * [`BlockGen`] — a seeded generator of synthetic compute blocks with a
//!   configurable instruction mix, memory-access pattern and
//!   branch-predictability profile.
//!
//! The crate is deliberately free of micro-architecture, memory-system and
//! power policy: those live in `ptb-uarch`, `ptb-mem` and `ptb-power`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod ids;
pub mod inst;
pub mod mix;
pub mod stream;

pub use addr::{Addr, CACHE_LINE_BYTES};
pub use ids::{BarrierId, CoreId, LockId, RmwToken, ThreadId};
pub use inst::{BranchInfo, CtxState, DynInst, ExecCtx, MemRef, OpKind, RmwOp, RmwRequest};
pub use mix::{BlockGen, BlockGenConfig, InstMix, MemPattern};
pub use stream::{Fetch, InstStream, StreamEnv};
