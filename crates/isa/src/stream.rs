//! The instruction-stream interface between workload models and cores.
//!
//! A workload model implements [`InstStream`]; a core pulls instructions
//! from it during fetch. Three properties make the interface faithful to an
//! execution-driven simulation despite being trace-shaped:
//!
//! 1. **Atomic RMWs are split-phase.** The stream emits an
//!    [`crate::OpKind::AtomicRmw`] and returns [`Fetch::Stall`] until the
//!    core echoes the executed old value via [`InstStream::rmw_result`].
//!    Whether a test-and-set wins a lock is therefore decided by the timing
//!    model (whoever's RMW reaches the coherence point first), not by the
//!    generator.
//! 2. **Spin polls read live values.** Test-and-test-and-set loops and
//!    barrier waits consult the functional value of the synchronisation word
//!    through [`StreamEnv::read_sync_word`] each iteration, so a spin ends
//!    on the first iteration after the releasing core's RMW executes.
//! 3. **Squash-and-replay.** Fetched instructions may later be squashed by
//!    a branch-mispredict flush; the core asks the stream to rewind via
//!    [`InstStream::rewind`] with the number of squashed instructions.
//!    Streams must therefore be able to replay recent history; helper
//!    [`ReplayBuffer`] implements this for any generator.

use crate::inst::DynInst;
use crate::{Addr, RmwToken};
use std::collections::VecDeque;

/// Result of asking a stream for its next instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fetch {
    /// An instruction to fetch this cycle.
    Inst(DynInst),
    /// The thread has no instruction available (waiting on an RMW result).
    Stall,
    /// The thread has finished its program.
    Done,
}

/// Facilities the simulator provides to a stream at generation time.
pub trait StreamEnv {
    /// Functional value of a synchronisation word (lock/barrier line).
    ///
    /// Only the synchronisation region is functionally modelled; data values
    /// are synthetic and never read.
    fn read_sync_word(&self, addr: Addr) -> u64;

    /// Current global cycle (for workload-side timekeeping/telemetry).
    fn now(&self) -> u64;
}

/// A source of dynamic instructions for one hardware thread.
pub trait InstStream {
    /// Produce the next instruction, or report a stall / completion.
    fn next(&mut self, env: &mut dyn StreamEnv) -> Fetch;

    /// Deliver the old value of an atomic RMW previously emitted with
    /// `token`. Called by the core when the RMW executes.
    fn rmw_result(&mut self, token: RmwToken, old: u64);

    /// Squash the last `n` instructions returned by [`InstStream::next`]
    /// (they were fetched down a wrong path or flushed); the stream must
    /// replay them on subsequent calls.
    fn rewind(&mut self, n: usize);
}

/// Wraps a non-replayable generator closure into a replayable stream.
///
/// Most workload models generate instructions on the fly and cannot cheaply
/// rewind; `ReplayBuffer` keeps the tail of generated instructions and
/// replays them after [`InstStream::rewind`].
pub struct ReplayBuffer {
    /// Instructions handed out and not yet irrevocable. Front = oldest.
    history: VecDeque<DynInst>,
    /// Number of instructions from the *front* of `history` that have been
    /// re-handed-out after a rewind and await re-delivery.
    replay_cursor: usize,
    /// Maximum history depth to retain (must exceed ROB size + front-end).
    depth: usize,
}

impl ReplayBuffer {
    /// Create a buffer retaining up to `depth` fetched instructions.
    pub fn new(depth: usize) -> Self {
        ReplayBuffer {
            history: VecDeque::with_capacity(depth),
            replay_cursor: 0,
            depth,
        }
    }

    /// Is a replay in progress?
    #[inline]
    pub fn replaying(&self) -> bool {
        self.replay_cursor < self.history.len()
    }

    /// Next replayed instruction, if any.
    pub fn pop_replay(&mut self) -> Option<DynInst> {
        if self.replaying() {
            let inst = self.history[self.replay_cursor];
            self.replay_cursor += 1;
            Some(inst)
        } else {
            None
        }
    }

    /// Record a freshly generated instruction about to be handed out.
    pub fn record(&mut self, inst: DynInst) {
        if self.history.len() == self.depth {
            self.history.pop_front();
            // Keep the cursor consistent with the shifted deque.
            self.replay_cursor = self.replay_cursor.saturating_sub(1);
        }
        self.history.push_back(inst);
        self.replay_cursor = self.history.len();
    }

    /// Rewind the last `n` handed-out instructions.
    ///
    /// # Panics
    /// Panics if `n` exceeds the retained history — that indicates the
    /// buffer was sized smaller than the core's in-flight window.
    pub fn rewind(&mut self, n: usize) {
        assert!(
            n <= self.replay_cursor,
            "rewind({n}) exceeds retained history ({}); deepen the ReplayBuffer",
            self.replay_cursor
        );
        self.replay_cursor -= n;
    }
}

/// A trivial stream over a fixed instruction vector (testing/microbenches).
pub struct VecStream {
    insts: Vec<DynInst>,
    pos: usize,
    replay: ReplayBuffer,
}

impl VecStream {
    /// Stream over `insts`, retaining a 512-deep replay window.
    pub fn new(insts: Vec<DynInst>) -> Self {
        VecStream {
            insts,
            pos: 0,
            replay: ReplayBuffer::new(512),
        }
    }
}

impl InstStream for VecStream {
    fn next(&mut self, _env: &mut dyn StreamEnv) -> Fetch {
        if let Some(inst) = self.replay.pop_replay() {
            return Fetch::Inst(inst);
        }
        match self.insts.get(self.pos) {
            Some(&inst) => {
                self.pos += 1;
                self.replay.record(inst);
                Fetch::Inst(inst)
            }
            None => Fetch::Done,
        }
    }

    fn rmw_result(&mut self, _token: RmwToken, _old: u64) {}

    fn rewind(&mut self, n: usize) {
        self.replay.rewind(n);
    }
}

/// A `StreamEnv` backed by a closure, for unit tests.
pub struct FnEnv<F: Fn(Addr) -> u64> {
    /// Closure answering sync-word reads.
    pub read: F,
    /// Reported cycle.
    pub cycle: u64,
}

impl<F: Fn(Addr) -> u64> StreamEnv for FnEnv<F> {
    fn read_sync_word(&self, addr: Addr) -> u64 {
        (self.read)(addr)
    }
    fn now(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::OpKind;

    fn env() -> FnEnv<impl Fn(Addr) -> u64> {
        FnEnv {
            read: |_| 0,
            cycle: 0,
        }
    }

    fn seq(n: usize) -> Vec<DynInst> {
        (0..n)
            .map(|i| DynInst::compute(i as u64 * 4, OpKind::IntAlu))
            .collect()
    }

    #[test]
    fn vec_stream_yields_then_done() {
        let mut s = VecStream::new(seq(3));
        let mut e = env();
        for i in 0..3 {
            match s.next(&mut e) {
                Fetch::Inst(inst) => assert_eq!(inst.pc, i * 4),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(s.next(&mut e), Fetch::Done);
        assert_eq!(s.next(&mut e), Fetch::Done);
    }

    #[test]
    fn rewind_replays_squashed_instructions() {
        let mut s = VecStream::new(seq(5));
        let mut e = env();
        for _ in 0..4 {
            assert!(matches!(s.next(&mut e), Fetch::Inst(_)));
        }
        s.rewind(2);
        match s.next(&mut e) {
            Fetch::Inst(i) => assert_eq!(i.pc, 2 * 4),
            other => panic!("unexpected {other:?}"),
        }
        match s.next(&mut e) {
            Fetch::Inst(i) => assert_eq!(i.pc, 3 * 4),
            other => panic!("unexpected {other:?}"),
        }
        match s.next(&mut e) {
            Fetch::Inst(i) => assert_eq!(i.pc, 4 * 4),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.next(&mut e), Fetch::Done);
    }

    #[test]
    fn nested_rewinds_accumulate() {
        let mut s = VecStream::new(seq(6));
        let mut e = env();
        for _ in 0..5 {
            s.next(&mut e);
        }
        s.rewind(1);
        s.next(&mut e); // replay pc=16
        s.rewind(3); // rewind past replayed + 2 original
        match s.next(&mut e) {
            Fetch::Inst(i) => assert_eq!(i.pc, 2 * 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn rewind_beyond_history_panics() {
        let mut rb = ReplayBuffer::new(4);
        rb.record(DynInst::compute(0, OpKind::Nop));
        rb.rewind(2);
    }

    #[test]
    fn replay_buffer_caps_depth() {
        let mut rb = ReplayBuffer::new(3);
        for i in 0..10 {
            rb.record(DynInst::compute(i, OpKind::Nop));
        }
        rb.rewind(3);
        let pcs: Vec<u64> = std::iter::from_fn(|| rb.pop_replay().map(|i| i.pc)).collect();
        assert_eq!(pcs, vec![7, 8, 9]);
    }
}
