//! Simulation configuration.

use ptb_mem::MemConfig;
use ptb_power::{PowerParams, ThermalParams};
use ptb_uarch::CoreConfig;
use ptb_workloads::Scale;
use serde::{Deserialize, Serialize};

/// Power-token distribution policy of the PTB load-balancer (§III.E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PtbPolicy {
    /// Split spare tokens equally among all cores over their local budget.
    ToAll,
    /// Give all spare tokens to the neediest core.
    ToOne,
    /// §IV.B dynamic selector: ToOne while spinning is lock-spinning,
    /// ToAll while it is barrier-spinning.
    Dynamic,
}

impl PtbPolicy {
    /// Short label used in reports/figures.
    pub fn label(self) -> &'static str {
        match self {
            PtbPolicy::ToAll => "ToAll",
            PtbPolicy::ToOne => "ToOne",
            PtbPolicy::Dynamic => "Dynamic",
        }
    }
}

/// PTB hardware parameters (§III.E.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PtbConfig {
    /// Round-trip latency override in cycles; `None` uses the paper's
    /// Xilinx-derived values (3 for ≤4 cores, 5 for 8, 10 for 16).
    pub latency_override: Option<u64>,
    /// Bits on the send/receive wires (token counts are quantised to
    /// `2^bits − 1` steps of the local budget). Paper: 4.
    pub wire_bits: u32,
    /// Balancer + wiring power overhead as a fraction of the global budget
    /// (paper: ≈ 1 % of application power).
    pub overhead_frac: f64,
    /// Cluster the balancer into groups of this many cores (§III.E.2's
    /// scalability proposal for > 32-core CMPs: "clustering the PTB
    /// load-balancer into groups of 8 or 16 cores and replicating the
    /// structure"). `None` = one chip-wide balancer.
    pub cluster_size: Option<usize>,
}

impl Default for PtbConfig {
    fn default() -> Self {
        PtbConfig {
            latency_override: None,
            wire_bits: 4,
            overhead_frac: 0.01,
            cluster_size: None,
        }
    }
}

impl PtbConfig {
    /// Round-trip balancer latency for `n` cores (send + process +
    /// distribute), from the paper's Xilinx ISE estimates.
    pub fn latency(&self, n_cores: usize) -> u64 {
        if let Some(l) = self.latency_override {
            return l;
        }
        match n_cores {
            0..=4 => 3,
            5..=8 => 5,
            9..=16 => 10,
            // Extrapolated beyond the paper's Xilinx data points.
            _ => 14,
        }
    }
}

/// Which power-management mechanism drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MechanismKind {
    /// No power control (baseline for normalisation).
    None,
    /// Per-core DVFS, naive equal budget split.
    Dvfs,
    /// Per-core DFS (frequency only).
    Dfs,
    /// DVFS + micro-architectural spike clipping (\[2\], per core).
    TwoLevel,
    /// Power Token Balancing on top of the 2-level local machinery.
    PtbTwoLevel {
        /// Token distribution policy.
        policy: PtbPolicy,
        /// Relaxed-accuracy threshold (§IV.C): local savings trigger only
        /// when consumption exceeds the effective budget by this fraction
        /// (0.0 = strict accuracy mode; 0.2 = the paper's "+20 %" point).
        relax: f64,
    },
    /// PTB plus power-pattern spin gating — the paper's future-work
    /// extension (§IV.C): detected spinners are parked on a deep throttle
    /// for extra energy savings.
    PtbSpinGate {
        /// Token distribution policy.
        policy: PtbPolicy,
        /// Relaxed-accuracy threshold, as for `PtbTwoLevel`.
        relax: f64,
    },
}

impl MechanismKind {
    /// Label used in reports/figures.
    pub fn label(self) -> String {
        match self {
            MechanismKind::None => "base".into(),
            MechanismKind::Dvfs => "DVFS".into(),
            MechanismKind::Dfs => "DFS".into(),
            MechanismKind::TwoLevel => "2level".into(),
            MechanismKind::PtbTwoLevel { policy, relax } => {
                if relax == 0.0 {
                    format!("PTB+2level/{}", policy.label())
                } else {
                    format!("PTB+2level/{}+{:.0}%", policy.label(), relax * 100.0)
                }
            }
            MechanismKind::PtbSpinGate { policy, relax } => {
                if relax == 0.0 {
                    format!("PTB+gate/{}", policy.label())
                } else {
                    format!("PTB+gate/{}+{:.0}%", policy.label(), relax * 100.0)
                }
            }
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of cores (= threads; one thread per core as in the paper).
    pub n_cores: usize,
    /// Core micro-architecture (Table 1 defaults).
    pub core: CoreConfig,
    /// Memory system (Table 1 defaults).
    pub mem: MemConfig,
    /// Power model constants.
    pub power: PowerParams,
    /// Global power budget as a fraction of peak chip power (paper: 0.5).
    pub budget_frac: f64,
    /// Mechanism under test.
    pub mechanism: MechanismKind,
    /// PTB hardware parameters.
    pub ptb: PtbConfig,
    /// Workload scale.
    pub scale: Scale,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
    /// Livelock watchdog: abort with `SimError::CycleBudgetExceeded`
    /// once *every* unfinished core has been spinning for this many
    /// consecutive cycles (progress is then impossible — a spin only
    /// exits when another core acts). `None` disables the watchdog.
    /// Deserialises to `None` for configs written before the field
    /// existed.
    #[serde(default)]
    pub spin_cycle_budget: Option<u64>,
    /// Capture a per-cycle power trace (figures 5/6); costs memory.
    pub capture_trace: bool,
    /// Lumped-RC thermal model constants (the paper's temperature-stability
    /// claim is evaluated with this).
    pub thermal: ThermalParams,
}

impl SimConfig {
    /// Canonical serialisation of this configuration: compact JSON with
    /// object keys in sorted order, suitable as hash material for
    /// content-addressed result caching (`ptb-farm`).
    ///
    /// Two configs that compare field-for-field equal always produce the
    /// same string, independent of field declaration order, because the
    /// serde `Value` tree keeps objects in a sorted map.
    pub fn canonical_json(&self) -> String {
        use serde::Serialize as _;
        serde::json::to_string(&self.to_value())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_cores: 16,
            core: CoreConfig::default(),
            mem: MemConfig::default(),
            power: PowerParams::default(),
            budget_frac: 0.5,
            mechanism: MechanismKind::None,
            ptb: PtbConfig::default(),
            scale: Scale::Small,
            max_cycles: 80_000_000,
            spin_cycle_budget: Some(1_000_000),
            capture_trace: false,
            thermal: ThermalParams::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptb_latencies_match_paper() {
        let p = PtbConfig::default();
        assert_eq!(p.latency(2), 3);
        assert_eq!(p.latency(4), 3);
        assert_eq!(p.latency(8), 5);
        assert_eq!(p.latency(16), 10);
        let o = PtbConfig {
            latency_override: Some(7),
            ..Default::default()
        };
        assert_eq!(o.latency(16), 7);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            MechanismKind::None,
            MechanismKind::Dvfs,
            MechanismKind::Dfs,
            MechanismKind::TwoLevel,
            MechanismKind::PtbTwoLevel {
                policy: PtbPolicy::ToAll,
                relax: 0.0,
            },
            MechanismKind::PtbTwoLevel {
                policy: PtbPolicy::ToOne,
                relax: 0.0,
            },
            MechanismKind::PtbTwoLevel {
                policy: PtbPolicy::Dynamic,
                relax: 0.2,
            },
            MechanismKind::PtbSpinGate {
                policy: PtbPolicy::Dynamic,
                relax: 0.0,
            },
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn canonical_json_is_stable_and_discriminating() {
        let a = SimConfig::default();
        let b = SimConfig::default();
        assert_eq!(a.canonical_json(), b.canonical_json());
        let c = SimConfig {
            n_cores: 8,
            ..SimConfig::default()
        };
        assert_ne!(a.canonical_json(), c.canonical_json());
        let d = SimConfig {
            mechanism: MechanismKind::PtbTwoLevel {
                policy: PtbPolicy::ToAll,
                relax: 0.0,
            },
            ..SimConfig::default()
        };
        assert_ne!(a.canonical_json(), d.canonical_json());
        // Canonical form must round-trip: the farm compares the stored
        // config tree against the requested one on every cache hit.
        let v = serde::json::parse(&a.canonical_json()).unwrap();
        let back = SimConfig::from_value(&v).unwrap();
        assert_eq!(back.canonical_json(), a.canonical_json());
    }

    #[test]
    fn default_config_is_paper_shaped() {
        let c = SimConfig::default();
        assert_eq!(c.n_cores, 16);
        assert_eq!(c.budget_frac, 0.5);
        assert_eq!(c.core.rob_size, 128);
        assert_eq!(c.mem.mem_latency, 300);
    }
}
