//! Budget arithmetic: peak power, global and local budgets.

use ptb_power::PowerParams;
use ptb_uarch::CoreConfig;
use serde::{Deserialize, Serialize};

/// The power budget of a run, in tokens/cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetSpec {
    /// Peak chip power (tokens/cycle): per-core analytic peak × cores,
    /// plus an uncore allowance.
    pub peak_chip: f64,
    /// Global budget = `budget_frac` × peak.
    pub global: f64,
    /// Naive local budget = global / n_cores.
    pub local: f64,
    /// Cores.
    pub n_cores: usize,
}

impl BudgetSpec {
    /// Uncore peak allowance as a fraction of summed core peaks
    /// (interconnect + caches; grows with core count in the paper's
    /// motivation, §I).
    pub const UNCORE_PEAK_FRAC: f64 = 0.10;

    /// Compute the budget for a machine.
    pub fn new(params: &PowerParams, core: &CoreConfig, n_cores: usize, budget_frac: f64) -> Self {
        assert!(n_cores >= 1);
        assert!(
            (0.0..=1.0).contains(&budget_frac),
            "budget fraction in [0,1]"
        );
        let per_core = params.peak_core_tokens(core.issue_width, core.rob_size, core.fetch_width);
        let peak_chip = per_core * n_cores as f64 * (1.0 + Self::UNCORE_PEAK_FRAC);
        let global = peak_chip * budget_frac;
        BudgetSpec {
            peak_chip,
            global,
            local: global / n_cores as f64,
            n_cores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_linearly_with_cores() {
        let p = PowerParams::default();
        let c = CoreConfig::default();
        let b4 = BudgetSpec::new(&p, &c, 4, 0.5);
        let b16 = BudgetSpec::new(&p, &c, 16, 0.5);
        assert!((b16.peak_chip / b4.peak_chip - 4.0).abs() < 1e-9);
        assert!(
            (b4.local - b16.local).abs() < 1e-9,
            "local budget per core is constant"
        );
    }

    #[test]
    fn half_budget_is_half_peak() {
        let p = PowerParams::default();
        let c = CoreConfig::default();
        let b = BudgetSpec::new(&p, &c, 8, 0.5);
        assert!((b.global - b.peak_chip * 0.5).abs() < 1e-9);
        assert!((b.local * 8.0 - b.global).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "budget fraction")]
    fn rejects_out_of_range_fraction() {
        BudgetSpec::new(&PowerParams::default(), &CoreConfig::default(), 4, 1.5);
    }
}
