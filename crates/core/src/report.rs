//! Run reports and the paper's evaluation metrics.

use crate::budget::BudgetSpec;
use crate::trace::PowerTrace;
use ptb_isa::CtxState;
use serde::{Deserialize, Serialize};

/// Schema version of [`RunReport`]'s serialised form.
///
/// Bump this whenever the report schema changes meaning (fields added
/// with changed semantics, units changed, metrics redefined). Cached
/// results in a `ptb-farm` store embed this version in their content
/// hash, so bumping it invalidates every previously stored report
/// without touching the store on disk. Purely additive `#[serde(default)]`
/// fields whose absence is semantically equivalent do not need a bump.
pub const REPORT_FORMAT: u32 = 1;

/// Per-core outcome of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreReport {
    /// Global cycles attributed to each context bucket
    /// (busy / lock-acq / lock-rel / barrier), Figure 3's quantity.
    pub ctx_cycles: [u64; CtxState::BUCKETS],
    /// Global cycles spent in spin loops.
    pub spin_cycles: u64,
    /// Tokens consumed while spinning (Figure 4's numerator).
    pub spin_tokens: f64,
    /// Total tokens consumed by this core.
    pub tokens: f64,
    /// Instructions committed.
    pub committed: u64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// PTHT relative estimation error (paper claims < 1 % for 8 classes).
    pub ptht_error: f64,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Mechanism label.
    pub mechanism: String,
    /// Core count.
    pub n_cores: usize,
    /// Global cycles to completion (the performance metric).
    pub cycles: u64,
    /// Budget in force.
    pub budget: BudgetSpec,
    /// Total chip energy in tokens.
    pub energy_tokens: f64,
    /// Total chip energy in joules.
    pub energy_joules: f64,
    /// Area over the Power Budget in token·cycles (§III.A):
    /// Σ max(0, chip − budget) over all cycles.
    pub aopb_tokens: f64,
    /// AoPB in joules.
    pub aopb_joules: f64,
    /// Mean chip tokens/cycle.
    pub mean_power: f64,
    /// Std-dev of per-cycle chip tokens (PTB minimises this).
    pub power_stddev: f64,
    /// Cycles the chip spent over the global budget.
    pub cycles_over_budget: u64,
    /// Peak temperature reached by any core, °C.
    pub max_temp_c: f64,
    /// Run-mean of the chip-mean core temperature, °C.
    pub mean_temp_c: f64,
    /// Chip-mean per-core temperature standard deviation, °C (the paper:
    /// PTB keeps temperature more stable than DVFS).
    pub temp_stddev_c: f64,
    /// Per-core details.
    pub cores: Vec<CoreReport>,
    /// Optional power trace.
    pub trace: Option<PowerTrace>,
    /// Additional named metrics contributed by observers (counter
    /// registries, phase profiles); empty for unobserved runs. Absent
    /// in reports serialized before this field existed.
    #[serde(default)]
    pub extra_metrics: std::collections::BTreeMap<String, f64>,
}

impl RunReport {
    /// Fraction of execution time over the budget.
    pub fn over_budget_frac(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.cycles_over_budget as f64 / self.cycles as f64
        }
    }

    /// Total committed instructions.
    pub fn committed(&self) -> u64 {
        self.cores.iter().map(|c| c.committed).sum()
    }

    /// Chip-wide spin-power fraction (Figure 4): tokens consumed while
    /// spinning over total tokens.
    pub fn spin_power_frac(&self) -> f64 {
        let spin: f64 = self.cores.iter().map(|c| c.spin_tokens).sum();
        if self.energy_tokens == 0.0 {
            0.0
        } else {
            spin / self.energy_tokens
        }
    }

    /// Execution-time breakdown averaged over cores, as fractions
    /// [busy, lock-acq, lock-rel, barrier] (Figure 3).
    pub fn breakdown_frac(&self) -> [f64; CtxState::BUCKETS] {
        let mut total = [0u64; CtxState::BUCKETS];
        for c in &self.cores {
            for (t, v) in total.iter_mut().zip(c.ctx_cycles) {
                *t += v;
            }
        }
        let sum: u64 = total.iter().sum();
        if sum == 0 {
            return [0.0; CtxState::BUCKETS];
        }
        total.map(|v| v as f64 / sum as f64)
    }
}

/// Normalised energy delta in percent: `100 × (E_mech / E_base − 1)`
/// (the y-axis of the paper's energy figures; negative = savings).
pub fn normalized_energy_pct(base: &RunReport, mech: &RunReport) -> f64 {
    if base.energy_tokens == 0.0 {
        return 0.0;
    }
    100.0 * (mech.energy_tokens / base.energy_tokens - 1.0)
}

/// Normalised AoPB in percent of the baseline's AoPB (the y-axis of the
/// paper's accuracy figures; 0 = perfect, 100 = as bad as no control).
pub fn normalized_aopb_pct(base: &RunReport, mech: &RunReport) -> f64 {
    if base.aopb_tokens == 0.0 {
        return 0.0;
    }
    100.0 * mech.aopb_tokens / base.aopb_tokens
}

/// Performance slowdown in percent (Figure 13; positive = slower).
pub fn slowdown_pct(base: &RunReport, mech: &RunReport) -> f64 {
    if base.cycles == 0 {
        return 0.0;
    }
    100.0 * (mech.cycles as f64 / base.cycles as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptb_power::PowerParams;
    use ptb_uarch::CoreConfig;

    fn dummy(cycles: u64, energy: f64, aopb: f64) -> RunReport {
        RunReport {
            benchmark: "t".into(),
            mechanism: "m".into(),
            n_cores: 2,
            cycles,
            budget: BudgetSpec::new(&PowerParams::default(), &CoreConfig::default(), 2, 0.5),
            energy_tokens: energy,
            energy_joules: 0.0,
            aopb_tokens: aopb,
            aopb_joules: 0.0,
            mean_power: 0.0,
            power_stddev: 0.0,
            cycles_over_budget: cycles / 2,
            extra_metrics: std::collections::BTreeMap::new(),
            max_temp_c: 70.0,
            mean_temp_c: 60.0,
            temp_stddev_c: 1.0,
            cores: vec![
                CoreReport {
                    ctx_cycles: [60, 20, 10, 10],
                    spin_cycles: 25,
                    spin_tokens: 10.0,
                    tokens: energy / 2.0,
                    committed: 100,
                    mispredict_rate: 0.05,
                    ptht_error: 0.01,
                };
                2
            ],
            trace: None,
        }
    }

    #[test]
    fn normalisation_math() {
        let base = dummy(1000, 200.0, 50.0);
        let mech = dummy(1020, 206.0, 5.0);
        assert!((normalized_energy_pct(&base, &mech) - 3.0).abs() < 1e-9);
        assert!((normalized_aopb_pct(&base, &mech) - 10.0).abs() < 1e-9);
        assert!((slowdown_pct(&base, &mech) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let r = dummy(100, 100.0, 10.0);
        let f = r.breakdown_frac();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((f[0] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn spin_power_fraction() {
        let r = dummy(100, 100.0, 10.0);
        assert!((r.spin_power_frac() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn zero_baselines_are_safe() {
        let base = dummy(0, 0.0, 0.0);
        let mech = dummy(10, 10.0, 1.0);
        assert_eq!(normalized_energy_pct(&base, &mech), 0.0);
        assert_eq!(normalized_aopb_pct(&base, &mech), 0.0);
        assert_eq!(slowdown_pct(&base, &mech), 0.0);
        assert_eq!(base.over_budget_frac(), 0.0);
    }
}
