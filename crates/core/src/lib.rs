//! # ptb-core — Power Token Balancing for chip multiprocessors
//!
//! This crate is the paper's contribution: mechanisms that make a CMP
//! running *parallel shared-memory workloads* accurately match a global
//! power budget, evaluated on a full cycle-level simulation stack
//! (`ptb-uarch` cores, `ptb-mem` MOESI memory, `ptb-noc` mesh,
//! `ptb-power` token model, `ptb-workloads` benchmarks).
//!
//! ## The mechanisms (paper §III–§IV)
//!
//! * [`MechanismKind::None`] — baseline, no power control (the
//!   normalisation reference for every figure).
//! * [`MechanismKind::Dvfs`] / [`MechanismKind::Dfs`] — per-core
//!   voltage/frequency ladders with the naive equal split of the global
//!   budget (§III.C).
//! * [`MechanismKind::TwoLevel`] — the single-core hybrid of Cebrián et
//!   al. \[2\]: coarse DVFS toward the budget plus per-cycle
//!   micro-architectural throttling to clip spikes.
//! * [`MechanismKind::PtbTwoLevel`] — **Power Token Balancing**: every
//!   cycle, cores under their local budget offer their spare tokens to a
//!   central load-balancer, which redistributes them to cores over
//!   budget (policy [`PtbPolicy::ToAll`], [`PtbPolicy::ToOne`], or the
//!   dynamic lock/barrier-aware selector of §IV.B), so critical threads
//!   are not slowed down while the *global* budget stays respected.
//!   Wire/processing latencies, the 4-bit token-count quantisation and
//!   the 1 % power overhead of the balancer hardware are modelled.
//!
//! ## Quick start
//!
//! ```
//! use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
//! use ptb_workloads::{Benchmark, Scale};
//!
//! let cfg = SimConfig {
//!     n_cores: 4,
//!     scale: Scale::Test,
//!     mechanism: MechanismKind::PtbTwoLevel { policy: PtbPolicy::ToAll, relax: 0.0 },
//!     ..SimConfig::default()
//! };
//! let report = Simulation::new(cfg).run(Benchmark::Fft).expect("run");
//! assert!(report.cycles > 0);
//! println!("AoPB = {:.3} J, energy = {:.3} J", report.aopb_joules, report.energy_joules);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod config;
pub mod mechanisms;
pub mod report;
pub mod sim;
pub mod trace;

pub use budget::BudgetSpec;
pub use config::{MechanismKind, PtbConfig, PtbPolicy, SimConfig};
pub use mechanisms::Mechanism;
pub use report::RunReport;
pub use sim::Simulation;
pub use trace::PowerTrace;
