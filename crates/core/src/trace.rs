//! Per-cycle power traces (paper Figures 5 and 6).

use serde::{Deserialize, Serialize};

/// A bounded per-cycle power trace.
///
/// Stores chip and per-core tokens as `f32` samples, taken every `stride`
/// cycles, up to `capacity` samples (older samples are *not* evicted; the
/// trace simply stops growing — figures use the run prefix).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerTrace {
    /// Cycles between samples.
    pub stride: u64,
    /// Chip tokens per sample.
    pub chip: Vec<f32>,
    /// Per-core tokens per sample (`per_core[core][sample]`).
    pub per_core: Vec<Vec<f32>>,
    capacity: usize,
    next_sample_at: u64,
}

impl PowerTrace {
    /// Trace for `n_cores`, sampling every `stride` cycles, holding at
    /// most `capacity` samples.
    pub fn new(n_cores: usize, stride: u64, capacity: usize) -> Self {
        assert!(stride >= 1);
        PowerTrace {
            stride,
            chip: Vec::new(),
            per_core: vec![Vec::new(); n_cores],
            capacity,
            next_sample_at: 0,
        }
    }

    /// Record one cycle's sample if due.
    pub fn record(&mut self, cycle: u64, chip_tokens: f64, core_tokens: &[f64]) {
        if cycle < self.next_sample_at || self.chip.len() >= self.capacity {
            return;
        }
        self.next_sample_at = cycle + self.stride;
        self.chip.push(chip_tokens as f32);
        for (buf, &t) in self.per_core.iter_mut().zip(core_tokens) {
            buf.push(t as f32);
        }
    }

    /// Number of samples captured.
    pub fn len(&self) -> usize {
        self.chip.len()
    }

    /// No samples yet?
    pub fn is_empty(&self) -> bool {
        self.chip.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_at_stride() {
        let mut t = PowerTrace::new(2, 10, 100);
        for cycle in 0..100 {
            t.record(cycle, cycle as f64, &[1.0, 2.0]);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.chip[0], 0.0);
        assert_eq!(t.chip[1], 10.0);
        assert_eq!(t.per_core[1][3], 2.0);
    }

    #[test]
    fn respects_capacity() {
        let mut t = PowerTrace::new(1, 1, 5);
        for cycle in 0..100 {
            t.record(cycle, 1.0, &[1.0]);
        }
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn empty_trace() {
        let t = PowerTrace::new(1, 1, 5);
        assert!(t.is_empty());
    }
}
