//! The Power Token Balancing mechanism (§III.E, §IV).
//!
//! Every cycle, if the chip is over its global budget, cores under their
//! local budget *offer* their spare tokens to a central load-balancer; the
//! balancer redistributes them to cores over budget, raising those cores'
//! *effective* local budgets so they need not slow down. Tokens are a
//! per-cycle currency, not a loan — nothing is stored or repaid.
//!
//! Hardware modelling per §III.E.2:
//! * token counts travel on 4-bit wires, so offers/grants are quantised to
//!   fifteen steps of the local budget and capped at one local budget;
//! * the collect → process → distribute round trip costs 3/5/10 cycles for
//!   4/8/16 cores (Xilinx ISE estimates), and a giving core *pledges* the
//!   offered amount — its own effective budget is reduced until the grant
//!   lands, so the global budget cannot be double-spent in flight;
//! * the balancer + wiring dissipate ≈ 1 % of the budget, charged as
//!   uncore overhead every cycle.
//!
//! Local enforcement reuses the 2-level machinery ([`LocalSaver`]) against
//! the *effective* budget; the relaxed variant (§IV.C) multiplies the
//! trigger threshold by `1 + relax`, trading accuracy for energy.

use crate::budget::BudgetSpec;
use crate::config::{PtbConfig, PtbPolicy};
use crate::mechanisms::simple::{core_local_budget, UncoreEma};
use crate::mechanisms::{ChipObs, CoreAction, LocalSaver, Mechanism};
use ptb_isa::CtxState;
use std::collections::VecDeque;

#[derive(Debug)]
struct Flight {
    arrives_at: u64,
    /// The balancer cluster this flight belongs to (core index range).
    members: (usize, usize),
    /// Grant per core (tokens added to the effective budget on arrival).
    grants: Vec<f64>,
    /// Pledge per core (tokens subtracted from the giver until arrival).
    pledges: Vec<f64>,
}

/// The PTB load-balancer + per-core 2-level local savers.
pub struct PtbMechanism {
    policy: PtbPolicy,
    relax: f64,
    cfg: PtbConfig,
    latency: u64,
    /// Balancer clusters as core-index ranges (one chip-wide cluster by
    /// default; §III.E.2's replicated balancers when `cluster_size` is
    /// set).
    clusters: Vec<(usize, usize)>,
    savers: Vec<LocalSaver>,
    in_flight: VecDeque<Flight>,
    /// Outstanding pledged tokens per core.
    pledged: Vec<f64>,
    /// Grants currently in force (the last flight that landed; held until
    /// the next one lands or balancing goes idle for a latency period —
    /// the balancer output is a level, not a one-cycle pulse).
    arrived: Vec<f64>,
    /// Cycle the current grants last landed, per cluster.
    last_land: Vec<u64>,
    /// Was the chip over budget last cycle (balancer active)? The wires
    /// and balancer logic are clock-gated otherwise, so the ≈1 % power
    /// overhead only accrues while balancing.
    active: bool,
    uncore: UncoreEma,
    /// Policy actually used last cycle (Dynamic resolves per cycle).
    pub last_policy: PtbPolicy,
    /// Diagnostics: total tokens granted over the run.
    pub tokens_granted: f64,
}

impl PtbMechanism {
    /// Build for `n` cores.
    pub fn new(n: usize, policy: PtbPolicy, relax: f64, cfg: PtbConfig) -> Self {
        assert!(relax >= 0.0);
        let cluster = cfg.cluster_size.unwrap_or(n).max(1);
        let clusters: Vec<(usize, usize)> = (0..n)
            .step_by(cluster)
            .map(|s| (s, (s + cluster).min(n)))
            .collect();
        PtbMechanism {
            policy,
            relax,
            // Each replicated balancer only spans its cluster, so wire
            // latency follows the cluster size, not the chip size.
            latency: cfg.latency(cluster.min(n)),
            clusters,
            cfg,
            savers: (0..n).map(LocalSaver::two_level_percycle).collect(),
            in_flight: VecDeque::new(),
            pledged: vec![0.0; n],
            arrived: vec![0.0; n],
            last_land: vec![0; n.div_ceil(cluster)],
            active: false,
            uncore: UncoreEma::default(),
            last_policy: match policy {
                PtbPolicy::Dynamic => PtbPolicy::ToAll,
                p => p,
            },
            tokens_granted: 0.0,
        }
    }

    /// Resolve the distribution policy for this cycle (§IV.B): if more
    /// spinning cores are waiting on locks than on barriers, priority goes
    /// to a single core (the one in/entering the critical section);
    /// otherwise spread tokens to rush everyone to the barrier.
    fn resolve_policy(&self, obs: &ChipObs<'_>) -> PtbPolicy {
        match self.policy {
            PtbPolicy::Dynamic => {
                let mut lock_spinners = 0u32;
                let mut barrier_spinners = 0u32;
                for c in obs.cores {
                    if c.ctx.spinning {
                        match c.ctx.state {
                            CtxState::LockAcq(_) => lock_spinners += 1,
                            CtxState::Barrier(_) => barrier_spinners += 1,
                            _ => {}
                        }
                    }
                }
                if lock_spinners > barrier_spinners {
                    PtbPolicy::ToOne
                } else {
                    PtbPolicy::ToAll
                }
            }
            p => p,
        }
    }
}

impl Mechanism for PtbMechanism {
    fn name(&self) -> String {
        format!("PTB+2level/{}", self.policy.label())
    }

    fn control(&mut self, obs: &ChipObs<'_>, budget: &BudgetSpec, actions: &mut [CoreAction]) {
        let n = obs.cores.len();
        debug_assert_eq!(self.savers.len(), n);
        // 1. Land any flights due this cycle: release pledges, replace the
        //    grants in force for that flight's cluster. If a cluster's
        //    balancing has gone quiet for a full round-trip, its held
        //    grants expire.
        let mut landed_clusters: Vec<(usize, usize)> = Vec::new();
        while let Some(f) = self.in_flight.front() {
            if f.arrives_at > obs.cycle {
                break;
            }
            let f = self.in_flight.pop_front().expect("peeked");
            if !landed_clusters.contains(&f.members) {
                self.arrived[f.members.0..f.members.1]
                    .iter_mut()
                    .for_each(|g| *g = 0.0);
                landed_clusters.push(f.members);
            }
            for i in f.members.0..f.members.1 {
                self.arrived[i] += f.grants[i - f.members.0];
                self.pledged[i] -= f.pledges[i - f.members.0];
            }
        }
        for (ci, &(lo, hi)) in self.clusters.clone().iter().enumerate() {
            if landed_clusters.contains(&(lo, hi)) {
                self.last_land[ci] = obs.cycle;
            } else if obs.cycle.saturating_sub(self.last_land[ci]) > self.latency {
                self.arrived[lo..hi].iter_mut().for_each(|g| *g = 0.0);
            }
        }
        // 2. Effective budget per core this cycle (uncore-aware split +
        //    balancing adjustments).
        let local = core_local_budget(budget, self.uncore.update(obs.uncore_tokens));
        let effective: Vec<f64> = (0..n)
            .map(|i| (local + self.arrived[i] - self.pledged[i]).max(0.0))
            .collect();
        let chip_over = obs.chip_tokens > budget.global;
        self.active = chip_over;
        // 3. Each (replicated) balancer collects offers and deficits from
        //    its cluster and launches a balancing flight.
        if chip_over {
            let quantum = local / f64::from((1u32 << self.cfg.wire_bits) - 1);
            let cap = local; // wire-code ceiling: 2^bits − 1 quanta
            let policy = self.resolve_policy(obs);
            self.last_policy = policy;
            for &(lo, hi) in self.clusters.clone().iter() {
                let m = hi - lo;
                let mut spare = vec![0.0; m];
                let mut deficit = vec![0.0; m];
                let mut pool = 0.0;
                for i in lo..hi {
                    let used = obs.cores[i].tokens;
                    if used < effective[i] {
                        // Quantise down to the wire code.
                        let sp =
                            (((effective[i] - used) / quantum).floor() * quantum).clamp(0.0, cap);
                        spare[i - lo] = sp;
                        pool += sp;
                    } else {
                        deficit[i - lo] = used - effective[i];
                    }
                }
                if pool <= 0.0 || deficit.iter().all(|&d| d <= 0.0) {
                    continue;
                }
                let mut grants = vec![0.0; m];
                match policy {
                    PtbPolicy::ToOne => {
                        // All tokens to the neediest core in the cluster.
                        let (winner, _) = deficit
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                            .expect("nonempty");
                        grants[winner] = pool.min(cap);
                    }
                    PtbPolicy::ToAll | PtbPolicy::Dynamic => {
                        let recipients = deficit.iter().filter(|&&d| d > 0.0).count() as f64;
                        let share = pool / recipients;
                        for (g, &d) in grants.iter_mut().zip(&deficit) {
                            if d > 0.0 {
                                *g = share.min(cap);
                            }
                        }
                    }
                }
                let granted: f64 = grants.iter().sum();
                self.tokens_granted += granted;
                // Givers pledge exactly what will be granted (pro-rata), so
                // budget mass is conserved in flight.
                let scale = if pool > 0.0 { granted / pool } else { 0.0 };
                let pledges: Vec<f64> = spare.iter().map(|s| s * scale).collect();
                for i in lo..hi {
                    self.pledged[i] += pledges[i - lo];
                }
                self.in_flight.push_back(Flight {
                    arrives_at: obs.cycle + self.latency,
                    members: (lo, hi),
                    grants,
                    pledges,
                });
            }
        }
        // 4. Local enforcement against the effective budgets.
        for i in 0..n {
            let trigger_budget = effective[i] * (1.0 + self.relax);
            let (mode, throttle) =
                self.savers[i].step(obs.cores[i].tokens, trigger_budget, chip_over);
            actions[i].mode = mode;
            actions[i].throttle = throttle;
        }
    }

    fn overhead_tokens(&self, budget: &BudgetSpec) -> f64 {
        if self.active {
            self.cfg.overhead_frac * budget.global
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::CoreObs;
    use ptb_isa::{BarrierId, ExecCtx, LockId};
    use ptb_power::PowerParams;
    use ptb_uarch::CoreConfig;

    fn budget(n: usize) -> BudgetSpec {
        BudgetSpec::new(&PowerParams::default(), &CoreConfig::default(), n, 0.5)
    }

    fn obs_from(tokens: &[f64], _cycle: u64) -> Vec<CoreObs> {
        tokens
            .iter()
            .map(|&t| CoreObs {
                tokens: t,
                ctx: ExecCtx::BUSY,
                done: false,
            })
            .collect()
    }

    fn run_cycle(
        m: &mut PtbMechanism,
        b: &BudgetSpec,
        cores: &[CoreObs],
        cycle: u64,
        actions: &mut [CoreAction],
    ) {
        let chip: f64 = cores.iter().map(|c| c.tokens).sum();
        let obs = ChipObs {
            cycle,
            chip_tokens: chip,
            uncore_tokens: 0.0,
            cores,
        };
        m.control(&obs, b, actions);
    }

    #[test]
    fn spare_tokens_raise_receiver_budget_after_latency() {
        let b = budget(4);
        let mut m = PtbMechanism::new(4, PtbPolicy::ToAll, 0.0, PtbConfig::default());
        // Cores 0-2 idle-ish (half budget), core 3 hot (double budget) —
        // chip total is over global (3×0.5 + 2.0 = 3.5× local > 4× local?
        // 3.5 < 4 — make it hotter).
        let tokens = [b.local * 0.3, b.local * 0.3, b.local * 0.3, b.local * 3.5];
        let cores = obs_from(&tokens, 0);
        let mut actions = vec![CoreAction::default(); 4];
        // Cycle 0: offers collected, flight launched (latency 3).
        run_cycle(&mut m, &b, &cores, 0, &mut actions);
        assert!(m.tokens_granted > 0.0, "flight should be launched");
        let granted_at_launch = m.tokens_granted;
        // Hot core is over budget (grants not yet arrived) -> the fine
        // level throttles it within its 2-cycle confirmation.
        run_cycle(&mut m, &b, &cores, 1, &mut actions);
        assert!(actions[3].throttle.active());
        run_cycle(&mut m, &b, &cores, 2, &mut actions);
        // Cycle 3+: grants land; core 3's draw just above the plain local
        // budget but under local + grant -> with sustained slack the
        // hysteresis releases the throttle entirely.
        let pool = granted_at_launch;
        for cycle in 3..80 {
            let tokens2 = [
                b.local * 0.3,
                b.local * 0.3,
                b.local * 0.3,
                b.local + pool * 0.5,
            ];
            let cores2 = obs_from(&tokens2, cycle);
            run_cycle(&mut m, &b, &cores2, cycle, &mut actions);
        }
        assert!(
            !actions[3].throttle.active(),
            "granted tokens must let the hot core run unthrottled"
        );
    }

    #[test]
    fn toone_gives_everything_to_neediest() {
        let b = budget(4);
        let mut m = PtbMechanism::new(4, PtbPolicy::ToOne, 0.0, PtbConfig::default());
        let tokens = [b.local * 0.2, b.local * 1.5, b.local * 3.0, b.local * 0.2];
        let cores = obs_from(&tokens, 0);
        let mut actions = vec![CoreAction::default(); 4];
        run_cycle(&mut m, &b, &cores, 0, &mut actions);
        let f = m.in_flight.front().expect("flight");
        assert!(f.grants[2] > 0.0, "neediest core gets tokens");
        assert_eq!(f.grants[1], 0.0, "ToOne ignores the second-neediest");
    }

    #[test]
    fn toall_splits_among_all_over_budget() {
        let b = budget(4);
        let mut m = PtbMechanism::new(4, PtbPolicy::ToAll, 0.0, PtbConfig::default());
        let tokens = [b.local * 0.1, b.local * 1.6, b.local * 2.4, b.local * 0.1];
        let cores = obs_from(&tokens, 0);
        let mut actions = vec![CoreAction::default(); 4];
        run_cycle(&mut m, &b, &cores, 0, &mut actions);
        let f = m.in_flight.front().expect("flight");
        assert!(f.grants[1] > 0.0 && f.grants[2] > 0.0);
        assert!((f.grants[1] - f.grants[2]).abs() < 1e-9, "equal split");
    }

    #[test]
    fn no_balancing_when_chip_under_budget() {
        let b = budget(4);
        let mut m = PtbMechanism::new(4, PtbPolicy::ToAll, 0.0, PtbConfig::default());
        // One core over its local share, but the chip total under global
        // (paper Figure 5, cycle 3).
        let tokens = [b.local * 0.1, b.local * 0.1, b.local * 0.1, b.local * 1.5];
        let cores = obs_from(&tokens, 0);
        let mut actions = vec![CoreAction::default(); 4];
        run_cycle(&mut m, &b, &cores, 0, &mut actions);
        assert!(m.in_flight.is_empty());
        assert_eq!(m.tokens_granted, 0.0);
        assert!(!actions[3].throttle.active());
    }

    #[test]
    fn grants_are_capped_by_wire_width() {
        let b = budget(2);
        let mut m = PtbMechanism::new(2, PtbPolicy::ToOne, 0.0, PtbConfig::default());
        let tokens = [0.0, b.local * 5.0];
        let cores = obs_from(&tokens, 0);
        let mut actions = vec![CoreAction::default(); 2];
        run_cycle(&mut m, &b, &cores, 0, &mut actions);
        let f = m.in_flight.front().expect("flight");
        assert!(
            f.grants[1] <= b.local + 1e-9,
            "grant must fit the 4-bit code"
        );
    }

    #[test]
    fn budget_mass_is_conserved() {
        // Σ(effective budgets) never exceeds Σ(local budgets): pledges
        // equal grants at all times.
        let b = budget(4);
        let mut m = PtbMechanism::new(4, PtbPolicy::ToAll, 0.0, PtbConfig::default());
        let mut actions = vec![CoreAction::default(); 4];
        for cycle in 0..50 {
            let tokens = [
                b.local * 0.2,
                b.local * 0.4,
                b.local * 2.2,
                b.local * (1.5 + 0.1 * (cycle % 5) as f64),
            ];
            let cores = obs_from(&tokens, cycle);
            run_cycle(&mut m, &b, &cores, cycle, &mut actions);
            let pledged: f64 = m.pledged.iter().sum();
            let in_flight: f64 = m
                .in_flight
                .iter()
                .map(|f| f.grants.iter().sum::<f64>())
                .sum();
            assert!(
                (pledged - in_flight).abs() < 1e-6,
                "cycle {cycle}: pledged {pledged} != in-flight {in_flight}"
            );
        }
    }

    #[test]
    fn dynamic_selector_picks_toone_for_lock_spinning() {
        let b = budget(4);
        let mut m = PtbMechanism::new(4, PtbPolicy::Dynamic, 0.0, PtbConfig::default());
        let mut cores = obs_from(
            &[b.local * 0.2, b.local * 0.2, b.local * 0.2, b.local * 3.6],
            0,
        );
        cores[0].ctx = ExecCtx::lock_spin(LockId(0));
        cores[1].ctx = ExecCtx::lock_spin(LockId(0));
        let mut actions = vec![CoreAction::default(); 4];
        run_cycle(&mut m, &b, &cores, 0, &mut actions);
        assert_eq!(m.last_policy, PtbPolicy::ToOne);
        // Barrier spinning flips to ToAll.
        cores[0].ctx = ExecCtx::barrier_spin(BarrierId(0));
        cores[1].ctx = ExecCtx::barrier_spin(BarrierId(0));
        run_cycle(&mut m, &b, &cores, 1, &mut actions);
        assert_eq!(m.last_policy, PtbPolicy::ToAll);
    }

    #[test]
    fn relaxed_variant_delays_triggering() {
        let b = budget(2);
        let mut strict = PtbMechanism::new(2, PtbPolicy::ToAll, 0.0, PtbConfig::default());
        let mut relaxed = PtbMechanism::new(2, PtbPolicy::ToAll, 0.3, PtbConfig::default());
        // Core 1 is 15% over its local budget; chip over global.
        let tokens = [b.local * 1.1, b.local * 1.15];
        let cores = obs_from(&tokens, 0);
        let mut a_strict = vec![CoreAction::default(); 2];
        let mut a_relaxed = vec![CoreAction::default(); 2];
        for cycle in 0..4 {
            run_cycle(&mut strict, &b, &cores, cycle, &mut a_strict);
            run_cycle(&mut relaxed, &b, &cores, cycle, &mut a_relaxed);
        }
        assert!(
            a_strict[1].throttle.active(),
            "strict PTB clips within a few cycles"
        );
        assert!(
            !a_relaxed[1].throttle.active(),
            "relaxed PTB tolerates +15% (< +30%)"
        );
    }

    #[test]
    fn overhead_is_one_percent_of_budget_while_active() {
        let b = budget(16);
        let mut m = PtbMechanism::new(16, PtbPolicy::ToAll, 0.0, PtbConfig::default());
        // Idle (chip under budget): the balancer is clock-gated.
        assert_eq!(m.overhead_tokens(&b), 0.0);
        // One over-budget cycle activates it.
        let cores = obs_from(&[b.local * 1.2; 16], 0);
        let mut actions = vec![CoreAction::default(); 16];
        run_cycle(&mut m, &b, &cores, 0, &mut actions);
        assert!((m.overhead_tokens(&b) - 0.01 * b.global).abs() < 1e-9);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::mechanisms::{ChipObs, CoreAction, CoreObs, Mechanism};
    use proptest::prelude::*;
    use ptb_isa::ExecCtx;
    use ptb_power::PowerParams;
    use ptb_uarch::CoreConfig;

    proptest! {
        /// Budget-mass conservation under arbitrary load patterns: at any
        /// time, Σ(effective budgets) ≤ Σ(local budgets) — pledges always
        /// cover in-flight grants, and grants never materialise out of
        /// thin air. Also: the mechanism never panics and never grants
        /// more than the wire code allows.
        #[test]
        fn balancer_conserves_budget_mass(
            loads in proptest::collection::vec(
                proptest::collection::vec(0.0f64..3.0, 8), 1..60),
            cluster in proptest::option::of(2usize..8),
        ) {
            let n = 8;
            let b = BudgetSpec::new(&PowerParams::default(), &CoreConfig::default(), n, 0.5);
            let cfg = PtbConfig { cluster_size: cluster, ..PtbConfig::default() };
            let mut m = PtbMechanism::new(n, PtbPolicy::ToAll, 0.0, cfg);
            let mut actions = vec![CoreAction::default(); n];
            for (cycle, frame) in loads.iter().enumerate() {
                let cores: Vec<CoreObs> = frame
                    .iter()
                    .map(|&f| CoreObs { tokens: b.local * f, ctx: ExecCtx::BUSY, done: false })
                    .collect();
                let chip: f64 = cores.iter().map(|c| c.tokens).sum();
                let obs = ChipObs {
                    cycle: cycle as u64,
                    chip_tokens: chip,
                    uncore_tokens: 0.0,
                    cores: &cores,
                };
                m.control(&obs, &b, &mut actions);
                let pledged: f64 = m.pledged.iter().sum();
                let in_flight: f64 =
                    m.in_flight.iter().map(|f| f.grants.iter().sum::<f64>()).sum();
                prop_assert!(
                    pledged >= in_flight - 1e-6,
                    "cycle {}: pledged {} < in-flight {}",
                    cycle, pledged, in_flight
                );
                for (i, &g) in m.arrived.iter().enumerate() {
                    prop_assert!(g >= -1e-9, "negative grant at core {i}");
                }
            }
        }
    }
}
