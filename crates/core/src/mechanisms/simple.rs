//! Baseline mechanisms: none, DVFS, DFS and the 2-level hybrid — all with
//! the naive equal split of the global budget among cores (§III.C).

use crate::budget::BudgetSpec;
use crate::mechanisms::{ChipObs, CoreAction, LocalSaver, Mechanism};

/// Smoothed uncore power estimate: mechanisms budget the cores with what
/// the uncore leaves over (`global − uncore_ema`), split equally.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct UncoreEma(f64);

impl UncoreEma {
    pub(crate) fn update(&mut self, uncore: f64) -> f64 {
        const ALPHA: f64 = 0.02;
        self.0 = if self.0 == 0.0 {
            uncore
        } else {
            ALPHA * uncore + (1.0 - ALPHA) * self.0
        };
        self.0
    }
}

/// No power control; the normalisation baseline.
pub struct NoMechanism;

impl Mechanism for NoMechanism {
    fn name(&self) -> String {
        "base".into()
    }

    fn control(&mut self, _obs: &ChipObs<'_>, _budget: &BudgetSpec, _actions: &mut [CoreAction]) {}
}

/// Per-core windowed DVFS toward the naive local budget.
pub struct DvfsMechanism {
    savers: Vec<LocalSaver>,
    uncore: UncoreEma,
}

impl DvfsMechanism {
    /// Controller for `n` cores.
    pub fn new(n: usize) -> Self {
        DvfsMechanism {
            savers: (0..n).map(|_| LocalSaver::dvfs(false)).collect(),
            uncore: UncoreEma::default(),
        }
    }
}

impl Mechanism for DvfsMechanism {
    fn name(&self) -> String {
        "DVFS".into()
    }

    fn control(&mut self, obs: &ChipObs<'_>, budget: &BudgetSpec, actions: &mut [CoreAction]) {
        let chip_over = obs.chip_tokens > budget.global;
        let local = core_local_budget(budget, self.uncore.update(obs.uncore_tokens));
        for (i, saver) in self.savers.iter_mut().enumerate() {
            let (mode, _) = saver.step(obs.cores[i].tokens, local, chip_over);
            actions[i].mode = mode;
        }
    }
}

/// Equal split of what the uncore leaves of the global budget.
pub(crate) fn core_local_budget(budget: &BudgetSpec, uncore_ema: f64) -> f64 {
    ((budget.global - uncore_ema).max(budget.global * 0.3)) / budget.n_cores as f64
}

/// Per-core windowed DFS (frequency only).
pub struct DfsMechanism {
    savers: Vec<LocalSaver>,
    uncore: UncoreEma,
}

impl DfsMechanism {
    /// Controller for `n` cores.
    pub fn new(n: usize) -> Self {
        DfsMechanism {
            savers: (0..n).map(|_| LocalSaver::dfs()).collect(),
            uncore: UncoreEma::default(),
        }
    }
}

impl Mechanism for DfsMechanism {
    fn name(&self) -> String {
        "DFS".into()
    }

    fn control(&mut self, obs: &ChipObs<'_>, budget: &BudgetSpec, actions: &mut [CoreAction]) {
        let chip_over = obs.chip_tokens > budget.global;
        let local = core_local_budget(budget, self.uncore.update(obs.uncore_tokens));
        for (i, saver) in self.savers.iter_mut().enumerate() {
            let (mode, _) = saver.step(obs.cores[i].tokens, local, chip_over);
            actions[i].mode = mode;
        }
    }
}

/// The 2-level hybrid of \[2\]: coarse DVFS + fine micro-architectural
/// spike clipping, applied per core against the naive local budget.
pub struct TwoLevelMechanism {
    savers: Vec<LocalSaver>,
    uncore: UncoreEma,
}

impl TwoLevelMechanism {
    /// Controller for `n` cores.
    pub fn new(n: usize) -> Self {
        TwoLevelMechanism {
            savers: (0..n).map(LocalSaver::two_level_windowed).collect(),
            uncore: UncoreEma::default(),
        }
    }
}

impl Mechanism for TwoLevelMechanism {
    fn name(&self) -> String {
        "2level".into()
    }

    fn control(&mut self, obs: &ChipObs<'_>, budget: &BudgetSpec, actions: &mut [CoreAction]) {
        let chip_over = obs.chip_tokens > budget.global;
        let local = core_local_budget(budget, self.uncore.update(obs.uncore_tokens));
        for (i, saver) in self.savers.iter_mut().enumerate() {
            let (mode, throttle) = saver.step(obs.cores[i].tokens, local, chip_over);
            actions[i].mode = mode;
            actions[i].throttle = throttle;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::testutil::busy_cores;
    use ptb_power::{DvfsMode, PowerParams};
    use ptb_uarch::{CoreConfig, Throttle};

    fn budget(n: usize) -> BudgetSpec {
        BudgetSpec::new(&PowerParams::default(), &CoreConfig::default(), n, 0.5)
    }

    #[test]
    fn none_leaves_actions_nominal() {
        let b = budget(4);
        let cores = busy_cores(4, 1000.0);
        let mut actions = vec![CoreAction::default(); 4];
        let obs = ChipObs {
            cycle: 0,
            chip_tokens: 4000.0,
            uncore_tokens: 0.0,
            cores: &cores,
        };
        let mut m = NoMechanism;
        m.control(&obs, &b, &mut actions);
        for a in &actions {
            assert_eq!(a.mode, DvfsMode::NOMINAL);
            assert_eq!(a.throttle, Throttle::none());
        }
    }

    #[test]
    fn dvfs_downscales_under_sustained_overshoot() {
        let b = budget(4);
        let mut m = DvfsMechanism::new(4);
        let cores = busy_cores(4, b.local * 1.5);
        let mut actions = vec![CoreAction::default(); 4];
        for cycle in 0..LocalSaver::WINDOW as u64 * 4 {
            let obs = ChipObs {
                cycle,
                chip_tokens: b.global * 1.5,
                uncore_tokens: 0.0,
                cores: &cores,
            };
            m.control(&obs, &b, &mut actions);
        }
        assert!(actions[0].mode.f < 1.0, "DVFS should have scaled down");
        assert_eq!(
            actions[0].throttle,
            Throttle::none(),
            "plain DVFS never throttles"
        );
    }

    #[test]
    fn two_level_throttles_after_an_evaluation_window() {
        let b = budget(4);
        let mut m = TwoLevelMechanism::new(4);
        let cores = busy_cores(4, b.local * 1.6);
        let mut actions = vec![CoreAction::default(); 4];
        for cycle in 0..u64::from(LocalSaver::FINE_WINDOW) + 1 {
            let obs = ChipObs {
                cycle,
                chip_tokens: b.global * 1.6,
                uncore_tokens: 0.0,
                cores: &cores,
            };
            m.control(&obs, &b, &mut actions);
        }
        assert!(
            actions[0].throttle.active(),
            "sustained overshoot must throttle"
        );
        // Severe overshoot selects an aggressive level.
        assert!(actions[0].throttle.issue_width <= 2);
    }

    #[test]
    fn dfs_never_lowers_voltage() {
        let b = budget(4);
        let mut m = DfsMechanism::new(4);
        let cores = busy_cores(4, b.local * 2.0);
        let mut actions = vec![CoreAction::default(); 4];
        for cycle in 0..LocalSaver::WINDOW as u64 * 6 {
            let obs = ChipObs {
                cycle,
                chip_tokens: b.global * 2.0,
                uncore_tokens: 0.0,
                cores: &cores,
            };
            m.control(&obs, &b, &mut actions);
        }
        assert_eq!(actions[0].mode.v, 1.0);
        assert!(actions[0].mode.f < 1.0);
    }
}
