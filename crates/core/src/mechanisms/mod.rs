//! Power-management mechanisms.
//!
//! A [`Mechanism`] observes the chip once per global cycle (one cycle of
//! lag, as real control hardware would have) and sets each core's DVFS
//! mode and micro-architectural throttle for the next cycle.

use crate::budget::BudgetSpec;
use crate::config::{MechanismKind, PtbConfig};
use ptb_isa::ExecCtx;
use ptb_power::DvfsMode;
use ptb_uarch::Throttle;

pub mod ptb;
pub mod saver;
pub mod simple;
pub mod spin_gate;

pub use ptb::PtbMechanism;
pub use saver::LocalSaver;
pub use simple::{DfsMechanism, DvfsMechanism, NoMechanism, TwoLevelMechanism};
pub use spin_gate::SpinGatedPtb;

/// Per-core observation for one cycle.
#[derive(Debug, Clone, Copy)]
pub struct CoreObs {
    /// Tokens the core consumed last cycle (the hardware token meter).
    pub tokens: f64,
    /// What the core is architecturally doing (drives the dynamic policy
    /// selector; the paper's "assisted by application-specific
    /// information" variant).
    pub ctx: ExecCtx,
    /// Core finished its thread.
    pub done: bool,
}

/// Chip-wide observation for one cycle.
#[derive(Debug)]
pub struct ChipObs<'a> {
    /// Global cycle.
    pub cycle: u64,
    /// Total chip tokens last cycle (cores + uncore + mechanism overhead).
    pub chip_tokens: f64,
    /// Uncore (caches/NoC/memory/mechanism) tokens last cycle. Budget-aware
    /// mechanisms subtract a smoothed uncore estimate from the global
    /// budget before splitting it among cores.
    pub uncore_tokens: f64,
    /// Per-core observations.
    pub cores: &'a [CoreObs],
}

/// Knobs a mechanism sets per core, applied next cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreAction {
    /// DVFS operating point.
    pub mode: DvfsMode,
    /// Micro-architectural throttle.
    pub throttle: Throttle,
}

impl Default for CoreAction {
    fn default() -> Self {
        CoreAction {
            mode: DvfsMode::NOMINAL,
            throttle: Throttle::none(),
        }
    }
}

/// A chip-level power-management policy.
pub trait Mechanism: Send {
    /// Human-readable name (report label).
    fn name(&self) -> String;

    /// Observe one cycle and update the per-core actions in place.
    fn control(&mut self, obs: &ChipObs<'_>, budget: &BudgetSpec, actions: &mut [CoreAction]);

    /// Constant per-cycle power overhead of the mechanism hardware, in
    /// tokens (PTB's balancer + wires ≈ 1 % of the budget).
    fn overhead_tokens(&self, _budget: &BudgetSpec) -> f64 {
        0.0
    }
}

/// Instantiate a mechanism from its config description.
pub fn build(kind: MechanismKind, ptb_cfg: PtbConfig, n_cores: usize) -> Box<dyn Mechanism> {
    match kind {
        MechanismKind::None => Box::new(NoMechanism),
        MechanismKind::Dvfs => Box::new(DvfsMechanism::new(n_cores)),
        MechanismKind::Dfs => Box::new(DfsMechanism::new(n_cores)),
        MechanismKind::TwoLevel => Box::new(TwoLevelMechanism::new(n_cores)),
        MechanismKind::PtbTwoLevel { policy, relax } => {
            Box::new(PtbMechanism::new(n_cores, policy, relax, ptb_cfg))
        }
        MechanismKind::PtbSpinGate { policy, relax } => {
            Box::new(SpinGatedPtb::new(n_cores, policy, relax, ptb_cfg))
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Build `n` busy cores each consuming `tokens`.
    pub fn busy_cores(n: usize, tokens: f64) -> Vec<CoreObs> {
        vec![
            CoreObs {
                tokens,
                ctx: ExecCtx::BUSY,
                done: false
            };
            n
        ]
    }
}
