//! PTB with spin gating — the paper's future-work extension (§IV.C):
//! *"higher energy savings could be achieved if we use PTB as a spinlock
//! detector and we disable the spinning cores to save power"*.
//!
//! PTB already observes per-core, per-cycle token counts; a core parked on
//! the characteristic low, stable plateau (Figure 6) is presumed spinning
//! and gets *gated*: a throttle deeper than any the 2-level ladder uses,
//! slowing its poll loop to a crawl. The detector needs no architectural
//! information — it is the [`ptb_sync::PowerSpinDetector`] fed with the
//! same token meter the balancer uses. When the lock/barrier releases, the
//! core's power signature changes, the detector resets, and the gate
//! lifts.

use crate::budget::BudgetSpec;
use crate::config::{PtbConfig, PtbPolicy};
use crate::mechanisms::ptb::PtbMechanism;
use crate::mechanisms::{ChipObs, CoreAction, Mechanism};
use ptb_sync::PowerSpinDetector;
use ptb_uarch::Throttle;

/// The gate applied to detected spinners: deeper than `Throttle::level(3)`
/// but not a full stop — the core must still poll to notice the release.
pub fn gate_throttle() -> Throttle {
    Throttle {
        fetch_every: 16,
        issue_width: 1,
        rob_cap: 8,
    }
}

/// PTB + power-pattern spin gating.
pub struct SpinGatedPtb {
    inner: PtbMechanism,
    detectors: Vec<PowerSpinDetector>,
    /// Cores currently gated (diagnostics).
    pub gated: Vec<bool>,
    /// Total core-cycles spent gated (diagnostics).
    pub gated_cycles: u64,
    configured: bool,
}

impl SpinGatedPtb {
    /// Build for `n` cores with the given distribution policy.
    pub fn new(n: usize, policy: PtbPolicy, relax: f64, cfg: PtbConfig) -> Self {
        SpinGatedPtb {
            inner: PtbMechanism::new(n, policy, relax, cfg),
            // Thresholds are set against the budget on first control call
            // (the budget is not known at construction).
            detectors: (0..n)
                .map(|_| PowerSpinDetector::new(1.0, 0.35, 300))
                .collect(),
            gated: vec![false; n],
            gated_cycles: 0,
            configured: false,
        }
    }
}

impl Mechanism for SpinGatedPtb {
    fn name(&self) -> String {
        format!("{}+gate", self.inner.name())
    }

    fn control(&mut self, obs: &ChipObs<'_>, budget: &BudgetSpec, actions: &mut [CoreAction]) {
        if !self.configured {
            for d in &mut self.detectors {
                // "Presumably under the budget" (§III.E): a plateau below
                // ~3/4 of the naive local budget reads as spinning.
                d.low_threshold = budget.local * 0.75;
            }
            self.configured = true;
        }
        // Run the full PTB machinery first (balancing + local enforcement).
        self.inner.control(obs, budget, actions);
        // Then gate detected spinners. Gating works even when the chip is
        // under the global budget — that is where the *energy* savings
        // come from (the paper's future-work motivation).
        for (i, core) in obs.cores.iter().enumerate() {
            let spinning = self.detectors[i].observe(core.tokens) && !core.done;
            self.gated[i] = spinning;
            if spinning {
                actions[i].throttle = gate_throttle();
                self.gated_cycles += 1;
            }
        }
    }

    fn overhead_tokens(&self, budget: &BudgetSpec) -> f64 {
        self.inner.overhead_tokens(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::CoreObs;
    use ptb_isa::ExecCtx;
    use ptb_power::PowerParams;
    use ptb_uarch::CoreConfig;

    fn budget(n: usize) -> BudgetSpec {
        BudgetSpec::new(&PowerParams::default(), &CoreConfig::default(), n, 0.5)
    }

    #[test]
    fn plateau_core_gets_gated_and_recovers() {
        let b = budget(4);
        let mut m = SpinGatedPtb::new(4, PtbPolicy::ToAll, 0.0, PtbConfig::default());
        let mut actions = vec![CoreAction::default(); 4];
        // Core 3 sits on a low, stable plateau; the rest are busy.
        for cycle in 0..600u64 {
            let cores: Vec<CoreObs> = (0..4)
                .map(|i| CoreObs {
                    tokens: if i == 3 { b.local * 0.4 } else { b.local * 1.1 },
                    ctx: ExecCtx::BUSY,
                    done: false,
                })
                .collect();
            let chip = cores.iter().map(|c| c.tokens).sum::<f64>();
            let obs = ChipObs {
                cycle,
                chip_tokens: chip,
                uncore_tokens: 0.0,
                cores: &cores,
            };
            m.control(&obs, &b, &mut actions);
        }
        assert!(m.gated[3], "plateau core must be gated");
        assert_eq!(actions[3].throttle, gate_throttle());
        assert!(!m.gated[0], "busy cores must not be gated");
        // The spinner wakes up (lock released): power jumps, gate lifts.
        for cycle in 600..640u64 {
            let cores: Vec<CoreObs> = (0..4)
                .map(|_| CoreObs {
                    tokens: b.local * 1.1,
                    ctx: ExecCtx::BUSY,
                    done: false,
                })
                .collect();
            let chip = cores.iter().map(|c| c.tokens).sum::<f64>();
            let obs = ChipObs {
                cycle,
                chip_tokens: chip,
                uncore_tokens: 0.0,
                cores: &cores,
            };
            m.control(&obs, &b, &mut actions);
        }
        assert!(
            !m.gated[3],
            "gate must lift when the power signature changes"
        );
    }

    #[test]
    fn gate_is_deeper_than_any_ladder_level() {
        let g = gate_throttle();
        let deepest = Throttle::level(3);
        assert!(g.fetch_every > deepest.fetch_every);
        assert!(g.rob_cap <= deepest.rob_cap);
    }

    #[test]
    fn noisy_cores_are_never_gated() {
        let b = budget(2);
        let mut m = SpinGatedPtb::new(2, PtbPolicy::ToAll, 0.0, PtbConfig::default());
        let mut actions = vec![CoreAction::default(); 2];
        for cycle in 0..1000u64 {
            let wobble = if cycle % 2 == 0 { 0.2 } else { 1.3 };
            let cores = vec![
                CoreObs {
                    tokens: b.local * wobble,
                    ctx: ExecCtx::BUSY,
                    done: false
                };
                2
            ];
            let chip = cores.iter().map(|c| c.tokens).sum::<f64>();
            let obs = ChipObs {
                cycle,
                chip_tokens: chip,
                uncore_tokens: 0.0,
                cores: &cores,
            };
            m.control(&obs, &b, &mut actions);
        }
        assert!(!m.gated[0] && !m.gated[1]);
        assert_eq!(m.gated_cycles, 0);
    }
}
