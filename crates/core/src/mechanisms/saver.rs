//! Per-core local power-saving machinery shared by the 2-level and PTB
//! mechanisms: a windowed DVFS controller (coarse level) plus a per-cycle
//! micro-architectural throttle (fine level) that clips residual spikes.

use ptb_power::{DvfsMode, DFS_MODES_REF, DVFS_MODES_REF};
use ptb_uarch::Throttle;

/// Re-exported mode ladders as slices (for controller selection).
pub mod ladders {
    pub use ptb_power::dvfs::{DFS_MODES, DVFS_MODES};
}

/// One core's local power-saving controller.
#[derive(Debug, Clone)]
pub struct LocalSaver {
    modes: &'static [DvfsMode; 5],
    /// Enable the fine-grained (micro-architectural) level.
    fine_level: bool,
    idx: usize,
    window: u32,
    win_n: u32,
    win_tokens: f64,
    win_budget: f64,
    win_chip_over: u32,
    /// Cycles per fine-level decision: 1 = per-cycle (PTB-grade),
    /// [`Self::FINE_WINDOW`] = interval-based (plain 2-level).
    fine_interval: u32,
    fwin_n: u32,
    fwin_tokens: f64,
    fwin_budget: f64,
    fwin_chip_over: u32,
    /// Fine-level throttle state with hysteresis (escalate after 2
    /// consecutive over-budget cycles, de-escalate after 16 comfortable
    /// cycles) — a bang-bang controller would oscillate and re-accrue
    /// area over the budget on every "off" half-period.
    level: u8,
    over_streak: u32,
    under_streak: u32,
    /// De-escalation persistence (staggered per core so all cores do not
    /// release their throttles on the same cycle — synchronized release
    /// re-aligns threads and creates chip-wide power peaks).
    release_after: u32,
}

impl LocalSaver {
    /// Evaluation window in cycles for the coarse (DVFS) level. DVFS needs
    /// long windows to amortise transition costs (§I's criticism of DVFS).
    pub const WINDOW: u32 = 256;

    /// Evaluation window for the *windowed* fine level (the plain 2-level
    /// mechanism of \[2\] selects its micro-architectural technique per
    /// exploration interval, not per cycle — that granularity gap is
    /// exactly what PTB's cycle-level token accounting removes).
    pub const FINE_WINDOW: u32 = 64;

    /// DVFS-ladder saver; `fine_level` adds the µarch throttle (per-cycle).
    pub fn dvfs(fine_level: bool) -> Self {
        LocalSaver {
            modes: DVFS_MODES_REF,
            fine_level,
            fine_interval: 1,
            idx: 0,
            window: Self::WINDOW,
            win_n: 0,
            win_tokens: 0.0,
            win_budget: 0.0,
            win_chip_over: 0,
            fwin_n: 0,
            fwin_tokens: 0.0,
            fwin_budget: 0.0,
            fwin_chip_over: 0,
            level: 0,
            over_streak: 0,
            under_streak: 0,
            release_after: 16,
        }
    }

    /// The plain 2-level saver: windowed technique selection. `core`
    /// staggers the evaluation phases across the chip.
    pub fn two_level_windowed(core: usize) -> Self {
        let mut s = LocalSaver {
            fine_interval: Self::FINE_WINDOW,
            ..Self::dvfs(true)
        };
        s.stagger(core);
        s
    }

    /// The PTB-grade saver: per-cycle technique selection with hysteresis.
    pub fn two_level_percycle(core: usize) -> Self {
        let mut s = Self::dvfs(true);
        s.stagger(core);
        s
    }

    /// Offset this core's window phases and release persistence so the
    /// chip's controllers do not act in lockstep.
    pub fn stagger(&mut self, core: usize) {
        self.win_n = (core as u32 * 37) % self.window;
        self.fwin_n = (core as u32 * 11) % self.fine_interval.max(1);
        self.release_after = 12 + (core as u32 * 5) % 9;
    }

    /// DFS-ladder saver (frequency only, voltage pinned).
    pub fn dfs() -> Self {
        LocalSaver {
            modes: DFS_MODES_REF,
            ..Self::dvfs(false)
        }
    }

    /// Current DVFS mode.
    pub fn mode(&self) -> DvfsMode {
        self.modes[self.idx]
    }

    /// Observe one cycle and produce the (mode, throttle) to apply.
    ///
    /// * `consumed` — the core's tokens last cycle;
    /// * `budget_now` — the core's (effective) local budget this cycle;
    /// * `chip_over` — is the whole chip over the global budget?
    ///
    /// Coarse level: every [`Self::WINDOW`] cycles, step the ladder down if
    /// the windowed average exceeded the windowed budget while the chip was
    /// over the global budget, and step back up when comfortably under.
    /// Fine level: any cycle the core exceeds its budget while the chip is
    /// over, apply a throttle level proportional to the overshoot.
    pub fn step(
        &mut self,
        consumed: f64,
        budget_now: f64,
        chip_over: bool,
    ) -> (DvfsMode, Throttle) {
        self.win_n += 1;
        self.win_tokens += consumed;
        self.win_budget += budget_now;
        if chip_over {
            self.win_chip_over += 1;
        }
        if self.win_n >= self.window {
            let avg = self.win_tokens / f64::from(self.win_n);
            let avg_budget = self.win_budget / f64::from(self.win_n);
            let mostly_over = self.win_chip_over * 2 > self.win_n;
            if mostly_over && avg > avg_budget && self.idx + 1 < self.modes.len() {
                self.idx += 1;
            } else if avg < avg_budget * 0.85 && self.idx > 0 {
                self.idx -= 1;
            }
            self.win_n = 0;
            self.win_tokens = 0.0;
            self.win_budget = 0.0;
            self.win_chip_over = 0;
        }
        if self.fine_level && self.fine_interval > 1 {
            // Interval-based selection: pick the technique for the next
            // window from this window's average overshoot.
            self.fwin_n += 1;
            self.fwin_tokens += consumed;
            self.fwin_budget += budget_now;
            if chip_over {
                self.fwin_chip_over += 1;
            }
            if self.fwin_n >= self.fine_interval {
                let avg = self.fwin_tokens / f64::from(self.fwin_n);
                let avg_budget = self.fwin_budget / f64::from(self.fwin_n);
                let mostly_over = self.fwin_chip_over * 2 > self.fwin_n;
                self.level = if mostly_over && avg_budget > 0.0 && avg > avg_budget {
                    match avg / avg_budget {
                        r if r > 1.5 => 3,
                        r if r > 1.2 => 2,
                        _ => 1,
                    }
                } else {
                    0
                };
                self.fwin_n = 0;
                self.fwin_tokens = 0.0;
                self.fwin_budget = 0.0;
                self.fwin_chip_over = 0;
            }
        } else if self.fine_level {
            if chip_over && consumed > budget_now && budget_now > 0.0 {
                self.over_streak += 1;
                self.under_streak = 0;
                // Escalate immediately; cycle-level token accounting is
                // exactly what lets PTB react this fast (§I bullet list).
                self.level = (self.level + 1).min(Throttle::LEVELS - 1);
            } else if !chip_over || consumed < budget_now * 0.90 {
                self.under_streak += 1;
                self.over_streak = 0;
                if self.under_streak >= self.release_after {
                    self.level = self.level.saturating_sub(1);
                    self.under_streak = 0;
                }
            } else {
                // Comfortable band: hold the level.
                self.over_streak = 0;
                self.under_streak = 0;
            }
        }
        let throttle = if self.fine_level {
            Throttle::level(self.level)
        } else {
            Throttle::none()
        };
        (self.mode(), throttle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_overshoot_walks_down_the_ladder() {
        let mut s = LocalSaver::dvfs(false);
        for _ in 0..LocalSaver::WINDOW * 6 {
            s.step(400.0, 250.0, true);
        }
        assert_eq!(
            s.mode(),
            ladders::DVFS_MODES[4],
            "should reach the lowest mode"
        );
    }

    #[test]
    fn under_budget_recovers_to_nominal() {
        let mut s = LocalSaver::dvfs(false);
        for _ in 0..LocalSaver::WINDOW * 6 {
            s.step(400.0, 250.0, true);
        }
        for _ in 0..LocalSaver::WINDOW * 8 {
            s.step(100.0, 250.0, false);
        }
        assert_eq!(s.mode(), ladders::DVFS_MODES[0]);
    }

    #[test]
    fn chip_under_budget_blocks_downscaling() {
        // Core over its local share but the chip is fine (paper Figure 5,
        // cycle 3): no mechanism should trigger.
        let mut s = LocalSaver::dvfs(true);
        for _ in 0..LocalSaver::WINDOW * 4 {
            let (_, t) = s.step(400.0, 250.0, false);
            assert_eq!(t, Throttle::none());
        }
        assert_eq!(s.mode(), ladders::DVFS_MODES[0]);
    }

    #[test]
    fn fine_level_clips_sustained_spikes_quickly() {
        let mut s = LocalSaver::dvfs(true);
        // Large overshoot escalates after a single confirmation cycle.
        let (_, t1) = s.step(400.0, 250.0, true);
        let (_, t2) = s.step(400.0, 250.0, true);
        assert!(
            t1.active() || t2.active(),
            "sustained overshoot must throttle within 2 cycles"
        );
    }

    #[test]
    fn hysteresis_holds_throttle_through_comfort_band() {
        let mut s = LocalSaver::dvfs(true);
        for _ in 0..4 {
            s.step(400.0, 250.0, true);
        }
        // In the comfortable band (just under budget) the level holds.
        let (_, t) = s.step(245.0, 250.0, true);
        assert!(t.active(), "level must hold just under budget");
        // Sixteen comfortable cycles release one level.
        let mut last = t;
        for _ in 0..64 {
            let (_, t) = s.step(100.0, 250.0, false);
            last = t;
        }
        assert!(!last.active(), "sustained slack must release the throttle");
    }

    #[test]
    fn dfs_ladder_keeps_voltage_nominal() {
        let mut s = LocalSaver::dfs();
        for _ in 0..LocalSaver::WINDOW * 6 {
            s.step(400.0, 250.0, true);
        }
        assert_eq!(s.mode().v, 1.0);
        assert!(s.mode().f < 1.0);
    }
}
