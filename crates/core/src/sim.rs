//! The CMP simulator top level: cores + memory + synchronisation fabric +
//! power sampling + the power-management mechanism, advanced in lockstep
//! one global (3 GHz reference) cycle at a time.

use crate::budget::BudgetSpec;
use crate::config::SimConfig;
use crate::mechanisms::{self, ChipObs, CoreAction, CoreObs, Mechanism};
use crate::report::{CoreReport, RunReport};
use crate::trace::PowerTrace;
use ptb_isa::{Addr, CoreId, CtxState, InstStream, StreamEnv};
use ptb_mem::{AccessKind, MemReq, MemorySystem};
use ptb_obs::{MemPulse, NullObserver, Phase, RunEnd, RunMeta, SimObserver, SpinKind, ThrottleObs};
use ptb_power::{
    core_cycle_tokens, uncore_cycle_tokens, ChipEnergy, CoreActivity, DvfsMode, PowerSample,
    ThermalModel, UncoreActivity,
};
use ptb_sync::SyncFabric;
use ptb_uarch::{Core, CoreMemKind, CoreMemReq, RmwExec};
use ptb_workloads::{Benchmark, ThreadEngine, WorkloadSpec};
use std::collections::VecDeque;
use std::time::Instant;

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run did not finish within `max_cycles`.
    MaxCyclesExceeded {
        /// The configured limit.
        limit: u64,
        /// Cores still running at the limit.
        unfinished: Vec<usize>,
    },
    /// The workload does not match the machine.
    BadWorkload(String),
    /// The livelock watchdog fired: every unfinished core spun for
    /// `budget` consecutive cycles, so no core can ever make progress
    /// (a spin only exits when another core acts). Surfaces deadlocked
    /// or livelocked workloads as a structured error long before
    /// `max_cycles` would.
    CycleBudgetExceeded {
        /// The configured all-spin cycle budget.
        budget: u64,
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// The cores that were spinning (all unfinished ones).
        spinning: Vec<usize>,
    },
    /// The wall-clock deadline set via [`Simulation::with_deadline`]
    /// passed before the run finished.
    DeadlineExceeded {
        /// Cycles simulated before the deadline hit.
        cycles_done: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MaxCyclesExceeded { limit, unfinished } => {
                write!(
                    f,
                    "simulation exceeded {limit} cycles; cores {unfinished:?} unfinished"
                )
            }
            SimError::BadWorkload(s) => write!(f, "bad workload: {s}"),
            SimError::CycleBudgetExceeded {
                budget,
                cycle,
                spinning,
            } => write!(
                f,
                "livelock: all unfinished cores {spinning:?} spun for {budget} \
                 consecutive cycles (at cycle {cycle})"
            ),
            SimError::DeadlineExceeded { cycles_done } => write!(
                f,
                "wall-clock deadline exceeded after {cycles_done} simulated cycles"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Record the time elapsed since `start` against `phase`; returns the
/// new phase start. Only called on the `wants_phase_timing` path.
fn phase_mark<O: SimObserver>(obs: &mut O, phase: Phase, start: Instant) -> Instant {
    let now = Instant::now();
    obs.on_phase_time(phase, now.duration_since(start).as_nanos() as u64);
    now
}

/// A configured simulation, ready to run workloads.
pub struct Simulation {
    cfg: SimConfig,
    deadline: Option<Instant>,
}

struct FabricEnv<'a> {
    fabric: &'a SyncFabric,
    cycle: u64,
}

impl StreamEnv for FabricEnv<'_> {
    fn read_sync_word(&self, addr: Addr) -> u64 {
        self.fabric.read(addr)
    }
    fn now(&self) -> u64 {
        self.cycle
    }
}

impl Simulation {
    /// Create a simulation from a config.
    pub fn new(cfg: SimConfig) -> Self {
        Simulation {
            cfg,
            deadline: None,
        }
    }

    /// Abort the run with [`SimError::DeadlineExceeded`] once wall-clock
    /// time passes `deadline` (checked every 8192 simulated cycles).
    ///
    /// The deadline is a runtime watchdog, not part of [`SimConfig`]: it
    /// never affects the simulated result, only whether a slow job is
    /// cut off, so it is deliberately excluded from content hashing.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Build and run `bench` at the configured scale and core count.
    pub fn run(&self, bench: Benchmark) -> Result<RunReport, SimError> {
        self.run_observed(bench, &mut NullObserver)
    }

    /// Build and run `bench` while streaming simulation events to `obs`.
    ///
    /// See [`Simulation::run_spec_observed`] for the cost model.
    pub fn run_observed<O: SimObserver>(
        &self,
        bench: Benchmark,
        obs: &mut O,
    ) -> Result<RunReport, SimError> {
        let spec = bench.spec(self.cfg.n_cores, self.cfg.scale);
        self.run_spec_observed(&spec, obs)
    }

    /// Run a custom workload spec (must have one thread per core).
    pub fn run_spec(&self, spec: &WorkloadSpec) -> Result<RunReport, SimError> {
        self.run_spec_observed(spec, &mut NullObserver)
    }

    /// Run a custom workload spec while streaming simulation events to
    /// `obs`.
    ///
    /// Every hook site is guarded by the associated `const`
    /// [`SimObserver::ENABLED`], so the monomorphised [`NullObserver`]
    /// instantiation is the plain unobserved simulator loop — the hooks
    /// and their bookkeeping compile away entirely. Wall-clock phase
    /// timing costs a few `Instant::now` calls per simulated cycle and
    /// is measured only when `obs.wants_phase_timing()` returns true.
    pub fn run_spec_observed<O: SimObserver>(
        &self,
        spec: &WorkloadSpec,
        obs: &mut O,
    ) -> Result<RunReport, SimError> {
        let n = self.cfg.n_cores;
        if spec.n_threads() != n {
            return Err(SimError::BadWorkload(format!(
                "workload has {} threads for {} cores",
                spec.n_threads(),
                n
            )));
        }
        let problems = spec.validate();
        if !problems.is_empty() {
            return Err(SimError::BadWorkload(problems.join("; ")));
        }

        let params = &self.cfg.power;
        let budget = BudgetSpec::new(params, &self.cfg.core, n, self.cfg.budget_frac);
        let mut cores: Vec<Core> = (0..n)
            .map(|c| Core::new(CoreId(c), self.cfg.core, params.class_base))
            .collect();
        let mut engines: Vec<ThreadEngine> = spec.engines();
        let mut mem = MemorySystem::new(self.cfg.mem, n);
        let mut fabric = SyncFabric::new();
        let mut mechanism: Box<dyn Mechanism> =
            mechanisms::build(self.cfg.mechanism, self.cfg.ptb, n);

        let mut actions = vec![CoreAction::default(); n];
        let mut current_mode = vec![DvfsMode::NOMINAL; n];
        let mut freq_acc = vec![0.0f64; n];
        let mut transition = vec![0u64; n];

        let mut energy = ChipEnergy::new(n);
        let mut aopb_tokens = 0.0f64;
        let mut cycles_over = 0u64;
        let mut ctx_cycles = vec![[0u64; CtxState::BUCKETS]; n];
        let mut spin_cycles = vec![0u64; n];
        let mut spin_tokens = vec![0.0f64; n];
        let mut trace = self
            .cfg
            .capture_trace
            .then(|| PowerTrace::new(n, 1, 4_000_000));
        // Thermal integration: step the RC model once per `dt` of simulated
        // time, driving it with the interval-average power per core.
        let mesh_width = ptb_noc::MeshConfig::for_cores(n).width;
        let mut thermal = ThermalModel::new(self.cfg.thermal, n, mesh_width);
        let thermal_stride = ((self.cfg.thermal.dt * params.freq_hz) as u64).max(1);
        let mut thermal_acc = vec![0.0f64; n];
        let mut thermal_watts = vec![0.0f64; n];

        // Backpressure retry queues are front-popped on acceptance, so a
        // deque keeps the drain O(1) per request instead of Vec::remove(0)
        // shifting the whole queue.
        let mut retry: Vec<VecDeque<CoreMemReq>> = vec![VecDeque::new(); n];
        let mut mem_buf: Vec<CoreMemReq> = Vec::new();
        let mut rmw_buf: Vec<RmwExec> = Vec::new();
        let mut tokens = vec![0.0f64; n];
        let mut obs_buf: Vec<CoreObs> = Vec::with_capacity(n);

        // Observer-only state; dead (and optimised out) under NullObserver.
        let profile = O::ENABLED && obs.wants_phase_timing();
        let mut was_spinning = vec![false; n];
        let mut prev_mem = mem.stats().totals();
        if O::ENABLED {
            obs.on_run_start(&RunMeta {
                benchmark: spec.name.clone(),
                mechanism: mechanism.name(),
                n_cores: n,
                freq_hz: params.freq_hz,
                budget_tokens: budget.global,
            });
        }
        let mut phase_t = Instant::now();

        let mut all_spin_run: u64 = 0;
        let mut cycle: u64 = 0;
        loop {
            cycle += 1;
            if cycle > self.cfg.max_cycles {
                let unfinished = (0..n).filter(|&c| !cores[c].is_done()).collect::<Vec<_>>();
                return Err(SimError::MaxCyclesExceeded {
                    limit: self.cfg.max_cycles,
                    unfinished,
                });
            }
            if let Some(dl) = self.deadline {
                if cycle & 0x1FFF == 0 && Instant::now() >= dl {
                    return Err(SimError::DeadlineExceeded { cycles_done: cycle });
                }
            }

            // 1. Memory system advances; completions reach the cores.
            //    Split at the NoC/event boundary so profiles attribute
            //    interconnect time separately from the event wheel.
            if profile {
                phase_t = Instant::now();
            }
            mem.advance_noc();
            if profile {
                phase_t = phase_mark(obs, Phase::Noc, phase_t);
            }
            mem.advance_events();
            for resp in mem.drain_responses() {
                cores[resp.core.index()].mem_response(resp.id);
            }
            if profile {
                phase_t = phase_mark(obs, Phase::MemTick, phase_t);
            }

            // 2. Atomic RMWs whose ownership landed execute functionally,
            //    in deterministic core order; streams learn the old value.
            for c in 0..n {
                rmw_buf.clear();
                cores[c].drain_rmw_execs(&mut rmw_buf);
                for r in &rmw_buf {
                    let old = fabric.execute(r.op, r.addr, r.operand);
                    engines[c].rmw_result(r.token, old);
                }
            }

            // 3. Core clocks (frequency-scaled) tick.
            for c in 0..n {
                let mode = current_mode[c];
                let act: CoreActivity = if transition[c] > 0 {
                    // Stalled mid-DVFS-transition: leakage only.
                    transition[c] -= 1;
                    CoreActivity::default()
                } else {
                    freq_acc[c] += mode.f;
                    if freq_acc[c] >= 1.0 {
                        freq_acc[c] -= 1.0;
                        let mut env = FabricEnv {
                            fabric: &fabric,
                            cycle,
                        };
                        cores[c].tick(&mut engines[c], &mut env)
                    } else {
                        CoreActivity::default()
                    }
                };
                tokens[c] = core_cycle_tokens(params, &act, mode);

                // Forward freshly-emitted memory requests (with retry on
                // input-queue backpressure).
                mem_buf.clear();
                cores[c].drain_mem_requests(&mut mem_buf);
                retry[c].extend(mem_buf.drain(..));
                while let Some(req) = retry[c].front().copied() {
                    let accepted = mem.request(MemReq {
                        id: req.id,
                        core: CoreId(c),
                        kind: match req.kind {
                            CoreMemKind::Load => AccessKind::Load,
                            CoreMemKind::Store => AccessKind::Store,
                            CoreMemKind::Rmw => AccessKind::Rmw,
                        },
                        addr: req.addr,
                    });
                    if accepted {
                        retry[c].pop_front();
                    } else {
                        if O::ENABLED {
                            obs.on_mem_retry(cycle, c);
                        }
                        break;
                    }
                }
            }
            if profile {
                phase_t = phase_mark(obs, Phase::CoreTick, phase_t);
            }

            // 4. Power sample for this cycle. Observer-hook delivery
            //    (pulse assembly, `on_cycle` fan-out) is timed separately
            //    into Phase::Observer so it never pollutes the
            //    PowerSample bucket.
            let mut obs_ns: u64 = 0;
            let mem_act = mem.take_activity();
            if O::ENABLED {
                let t0 = if profile { Some(Instant::now()) } else { None };
                let totals = mem.stats().totals();
                let pulse = MemPulse {
                    l1_accesses: mem_act.l1_accesses,
                    l2_accesses: mem_act.l2_accesses,
                    noc_flit_hops: mem_act.noc_flit_hops,
                    mem_accesses: mem_act.mem_accesses,
                    l1_misses: totals.l1_misses - prev_mem.l1_misses,
                    l2_misses: totals.l2_misses - prev_mem.l2_misses,
                    invalidations: totals.invalidations_received - prev_mem.invalidations_received,
                };
                prev_mem = totals;
                if !pulse.is_empty() {
                    obs.on_mem_pulse(cycle, &pulse);
                }
                if let Some(t0) = t0 {
                    obs_ns += t0.elapsed().as_nanos() as u64;
                }
            }
            let uncore = uncore_cycle_tokens(
                params,
                &UncoreActivity {
                    l1_accesses: mem_act.l1_accesses,
                    l2_accesses: mem_act.l2_accesses,
                    noc_flit_hops: mem_act.noc_flit_hops,
                    mem_accesses: mem_act.mem_accesses,
                },
            ) + mechanism.overhead_tokens(&budget);
            let sample = PowerSample {
                per_core: tokens.clone(),
                uncore,
            };
            let chip = sample.chip();
            if O::ENABLED {
                let t0 = if profile { Some(Instant::now()) } else { None };
                obs.on_cycle(cycle, &tokens, uncore, chip);
                if let Some(t0) = t0 {
                    obs_ns += t0.elapsed().as_nanos() as u64;
                }
            }
            energy.add(&sample);
            if chip > budget.global {
                aopb_tokens += chip - budget.global;
                cycles_over += 1;
            }
            if let Some(t) = trace.as_mut() {
                t.record(cycle, chip, &tokens);
            }
            for (acc, &t) in thermal_acc.iter_mut().zip(&tokens) {
                *acc += t;
            }
            if cycle.is_multiple_of(thermal_stride) {
                for c in 0..n {
                    thermal_watts[c] = params.watts(thermal_acc[c] / thermal_stride as f64);
                    thermal_acc[c] = 0.0;
                }
                thermal.step(&thermal_watts);
            }
            if profile {
                if obs_ns > 0 {
                    obs.on_phase_time(Phase::Observer, obs_ns);
                }
                let now = Instant::now();
                let total = now.duration_since(phase_t).as_nanos() as u64;
                obs.on_phase_time(Phase::PowerSample, total.saturating_sub(obs_ns));
                phase_t = now;
            }

            // 5. Context/breakdown accounting.
            let mut all_done = true;
            let mut unfinished_cores = 0usize;
            let mut spinning_cores = 0usize;
            for c in 0..n {
                let done = cores[c].is_done();
                all_done &= done;
                if !done {
                    unfinished_cores += 1;
                    let ctx = cores[c].current_ctx();
                    if ctx.spinning {
                        spinning_cores += 1;
                    }
                    ctx_cycles[c][ctx.state.bucket()] += 1;
                    if O::ENABLED && ctx.spinning != was_spinning[c] {
                        was_spinning[c] = ctx.spinning;
                        if ctx.spinning {
                            let kind = match ctx.state {
                                CtxState::LockAcq(_) | CtxState::LockRel(_) => SpinKind::Lock,
                                CtxState::Barrier(_) => SpinKind::Barrier,
                                CtxState::Busy => SpinKind::Other,
                            };
                            obs.on_spin_enter(cycle, c, kind);
                        } else {
                            obs.on_spin_exit(cycle, c);
                        }
                    }
                    if ctx.spinning {
                        spin_cycles[c] += 1;
                        // "Power wasted while spinning" (Figure 4) is the
                        // dynamic power above the idle floor — leakage is
                        // paid whether or not the core spins.
                        spin_tokens[c] += (tokens[c]
                            - params.core_leakage * current_mode[c].leakage_scale())
                        .max(0.0);
                    }
                } else if O::ENABLED && was_spinning[c] {
                    // A core that finishes mid-spin still closes its span.
                    was_spinning[c] = false;
                    obs.on_spin_exit(cycle, c);
                }
            }

            // Livelock watchdog: a spin only exits when *another* core
            // acts (releases a lock, reaches a barrier). If every
            // unfinished core spins — uninterrupted — for the whole
            // budget, no such action can ever come and the run would
            // otherwise burn cycles until `max_cycles`.
            if let Some(spin_budget) = self.cfg.spin_cycle_budget {
                if unfinished_cores > 0 && spinning_cores == unfinished_cores {
                    all_spin_run += 1;
                    if all_spin_run >= spin_budget {
                        let spinning = (0..n).filter(|&c| !cores[c].is_done()).collect::<Vec<_>>();
                        return Err(SimError::CycleBudgetExceeded {
                            budget: spin_budget,
                            cycle,
                            spinning,
                        });
                    }
                } else {
                    all_spin_run = 0;
                }
            }

            // 6. Mechanism observes and sets next-cycle actions.
            obs_buf.clear();
            for c in 0..n {
                obs_buf.push(CoreObs {
                    tokens: tokens[c],
                    ctx: cores[c].current_ctx(),
                    done: cores[c].is_done(),
                });
            }
            let chip_obs = ChipObs {
                cycle,
                chip_tokens: chip,
                uncore_tokens: uncore,
                cores: &obs_buf,
            };
            mechanism.control(&chip_obs, &budget, &mut actions);
            for c in 0..n {
                if actions[c].mode != current_mode[c] {
                    let stall = DvfsMode::transition_cycles(current_mode[c], actions[c].mode);
                    transition[c] += stall;
                    current_mode[c] = actions[c].mode;
                    if O::ENABLED {
                        obs.on_dvfs_change(cycle, c, current_mode[c].v, current_mode[c].f, stall);
                    }
                }
                if O::ENABLED && cores[c].throttle != actions[c].throttle {
                    let th = actions[c].throttle;
                    obs.on_throttle_change(
                        cycle,
                        c,
                        ThrottleObs {
                            fetch_every: th.fetch_every,
                            issue_width: th.issue_width,
                            rob_cap: th.rob_cap,
                        },
                    );
                }
                cores[c].throttle = actions[c].throttle;
            }
            if profile {
                phase_t = phase_mark(obs, Phase::Mechanism, phase_t);
            }

            if all_done {
                break;
            }
        }

        if O::ENABLED {
            obs.on_run_end(&RunEnd {
                cycles: cycle,
                energy_tokens: energy.total,
            });
        }

        // Assemble the report.
        let core_reports: Vec<CoreReport> = (0..n)
            .map(|c| CoreReport {
                ctx_cycles: ctx_cycles[c],
                spin_cycles: spin_cycles[c],
                spin_tokens: spin_tokens[c],
                tokens: energy.per_core[c],
                committed: cores[c].stats.committed,
                mispredict_rate: cores[c].stats.mispredict_rate(),
                ptht_error: cores[c].ptht.relative_error(),
            })
            .collect();
        Ok(RunReport {
            benchmark: spec.name.clone(),
            mechanism: mechanism.name(),
            n_cores: n,
            cycles: cycle,
            budget,
            energy_tokens: energy.total,
            energy_joules: params.joules(energy.total),
            aopb_tokens,
            aopb_joules: params.joules(aopb_tokens),
            mean_power: energy.mean_power(),
            power_stddev: energy.power_stddev(),
            cycles_over_budget: cycles_over,
            max_temp_c: thermal.max_temp,
            mean_temp_c: (0..n).map(|c| thermal.mean_temp(c)).sum::<f64>() / n as f64,
            temp_stddev_c: thermal.mean_stddev(),
            cores: core_reports,
            trace,
            extra_metrics: std::collections::BTreeMap::new(),
        })
    }
}
