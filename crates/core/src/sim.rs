//! The CMP simulator top level: cores + memory + synchronisation fabric +
//! power sampling + the power-management mechanism, advanced in lockstep
//! one global (3 GHz reference) cycle at a time.

use crate::budget::BudgetSpec;
use crate::config::SimConfig;
use crate::mechanisms::{self, ChipObs, CoreAction, CoreObs, Mechanism};
use crate::report::{CoreReport, RunReport};
use crate::trace::PowerTrace;
use ptb_isa::{Addr, CoreId, CtxState, InstStream, StreamEnv};
use ptb_mem::{AccessKind, MemReq, MemorySystem};
use ptb_power::{
    core_cycle_tokens, uncore_cycle_tokens, ChipEnergy, CoreActivity, DvfsMode, PowerSample,
    ThermalModel, UncoreActivity,
};
use ptb_sync::SyncFabric;
use ptb_uarch::{Core, CoreMemKind, CoreMemReq, RmwExec};
use ptb_workloads::{Benchmark, ThreadEngine, WorkloadSpec};

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run did not finish within `max_cycles`.
    MaxCyclesExceeded {
        /// The configured limit.
        limit: u64,
        /// Cores still running at the limit.
        unfinished: Vec<usize>,
    },
    /// The workload does not match the machine.
    BadWorkload(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MaxCyclesExceeded { limit, unfinished } => {
                write!(
                    f,
                    "simulation exceeded {limit} cycles; cores {unfinished:?} unfinished"
                )
            }
            SimError::BadWorkload(s) => write!(f, "bad workload: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A configured simulation, ready to run workloads.
pub struct Simulation {
    cfg: SimConfig,
}

struct FabricEnv<'a> {
    fabric: &'a SyncFabric,
    cycle: u64,
}

impl StreamEnv for FabricEnv<'_> {
    fn read_sync_word(&self, addr: Addr) -> u64 {
        self.fabric.read(addr)
    }
    fn now(&self) -> u64 {
        self.cycle
    }
}

impl Simulation {
    /// Create a simulation from a config.
    pub fn new(cfg: SimConfig) -> Self {
        Simulation { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Build and run `bench` at the configured scale and core count.
    pub fn run(&self, bench: Benchmark) -> Result<RunReport, SimError> {
        let spec = bench.spec(self.cfg.n_cores, self.cfg.scale);
        self.run_spec(&spec)
    }

    /// Run a custom workload spec (must have one thread per core).
    pub fn run_spec(&self, spec: &WorkloadSpec) -> Result<RunReport, SimError> {
        let n = self.cfg.n_cores;
        if spec.n_threads() != n {
            return Err(SimError::BadWorkload(format!(
                "workload has {} threads for {} cores",
                spec.n_threads(),
                n
            )));
        }
        let problems = spec.validate();
        if !problems.is_empty() {
            return Err(SimError::BadWorkload(problems.join("; ")));
        }

        let params = &self.cfg.power;
        let budget = BudgetSpec::new(params, &self.cfg.core, n, self.cfg.budget_frac);
        let mut cores: Vec<Core> = (0..n)
            .map(|c| Core::new(CoreId(c), self.cfg.core, params.class_base))
            .collect();
        let mut engines: Vec<ThreadEngine> = spec.engines();
        let mut mem = MemorySystem::new(self.cfg.mem, n);
        let mut fabric = SyncFabric::new();
        let mut mechanism: Box<dyn Mechanism> =
            mechanisms::build(self.cfg.mechanism, self.cfg.ptb, n);

        let mut actions = vec![CoreAction::default(); n];
        let mut current_mode = vec![DvfsMode::NOMINAL; n];
        let mut freq_acc = vec![0.0f64; n];
        let mut transition = vec![0u64; n];

        let mut energy = ChipEnergy::new(n);
        let mut aopb_tokens = 0.0f64;
        let mut cycles_over = 0u64;
        let mut ctx_cycles = vec![[0u64; CtxState::BUCKETS]; n];
        let mut spin_cycles = vec![0u64; n];
        let mut spin_tokens = vec![0.0f64; n];
        let mut trace = self
            .cfg
            .capture_trace
            .then(|| PowerTrace::new(n, 1, 4_000_000));
        // Thermal integration: step the RC model once per `dt` of simulated
        // time, driving it with the interval-average power per core.
        let mesh_width = ptb_noc::MeshConfig::for_cores(n).width;
        let mut thermal = ThermalModel::new(self.cfg.thermal, n, mesh_width);
        let thermal_stride = ((self.cfg.thermal.dt * params.freq_hz) as u64).max(1);
        let mut thermal_acc = vec![0.0f64; n];
        let mut thermal_watts = vec![0.0f64; n];

        let mut retry: Vec<Vec<CoreMemReq>> = vec![Vec::new(); n];
        let mut mem_buf: Vec<CoreMemReq> = Vec::new();
        let mut rmw_buf: Vec<RmwExec> = Vec::new();
        let mut tokens = vec![0.0f64; n];
        let mut obs_buf: Vec<CoreObs> = Vec::with_capacity(n);

        let mut cycle: u64 = 0;
        loop {
            cycle += 1;
            if cycle > self.cfg.max_cycles {
                let unfinished = (0..n).filter(|&c| !cores[c].is_done()).collect::<Vec<_>>();
                return Err(SimError::MaxCyclesExceeded {
                    limit: self.cfg.max_cycles,
                    unfinished,
                });
            }

            // 1. Memory system advances; completions reach the cores.
            mem.tick();
            for resp in mem.drain_responses() {
                cores[resp.core.index()].mem_response(resp.id);
            }

            // 2. Atomic RMWs whose ownership landed execute functionally,
            //    in deterministic core order; streams learn the old value.
            for c in 0..n {
                rmw_buf.clear();
                cores[c].drain_rmw_execs(&mut rmw_buf);
                for r in &rmw_buf {
                    let old = fabric.execute(r.op, r.addr, r.operand);
                    engines[c].rmw_result(r.token, old);
                }
            }

            // 3. Core clocks (frequency-scaled) tick.
            for c in 0..n {
                let mode = current_mode[c];
                let act: CoreActivity = if transition[c] > 0 {
                    // Stalled mid-DVFS-transition: leakage only.
                    transition[c] -= 1;
                    CoreActivity::default()
                } else {
                    freq_acc[c] += mode.f;
                    if freq_acc[c] >= 1.0 {
                        freq_acc[c] -= 1.0;
                        let mut env = FabricEnv {
                            fabric: &fabric,
                            cycle,
                        };
                        cores[c].tick(&mut engines[c], &mut env)
                    } else {
                        CoreActivity::default()
                    }
                };
                tokens[c] = core_cycle_tokens(params, &act, mode);

                // Forward freshly-emitted memory requests (with retry on
                // input-queue backpressure).
                mem_buf.clear();
                cores[c].drain_mem_requests(&mut mem_buf);
                retry[c].append(&mut mem_buf);
                while let Some(req) = retry[c].first().copied() {
                    let accepted = mem.request(MemReq {
                        id: req.id,
                        core: CoreId(c),
                        kind: match req.kind {
                            CoreMemKind::Load => AccessKind::Load,
                            CoreMemKind::Store => AccessKind::Store,
                            CoreMemKind::Rmw => AccessKind::Rmw,
                        },
                        addr: req.addr,
                    });
                    if accepted {
                        retry[c].remove(0);
                    } else {
                        break;
                    }
                }
            }

            // 4. Power sample for this cycle.
            let mem_act = mem.take_activity();
            let uncore = uncore_cycle_tokens(
                params,
                &UncoreActivity {
                    l1_accesses: mem_act.l1_accesses,
                    l2_accesses: mem_act.l2_accesses,
                    noc_flit_hops: mem_act.noc_flit_hops,
                    mem_accesses: mem_act.mem_accesses,
                },
            ) + mechanism.overhead_tokens(&budget);
            let sample = PowerSample {
                per_core: tokens.clone(),
                uncore,
            };
            let chip = sample.chip();
            energy.add(&sample);
            if chip > budget.global {
                aopb_tokens += chip - budget.global;
                cycles_over += 1;
            }
            if let Some(t) = trace.as_mut() {
                t.record(cycle, chip, &tokens);
            }
            for (acc, &t) in thermal_acc.iter_mut().zip(&tokens) {
                *acc += t;
            }
            if cycle.is_multiple_of(thermal_stride) {
                for c in 0..n {
                    thermal_watts[c] = params.watts(thermal_acc[c] / thermal_stride as f64);
                    thermal_acc[c] = 0.0;
                }
                thermal.step(&thermal_watts);
            }

            // 5. Context/breakdown accounting.
            let mut all_done = true;
            for c in 0..n {
                let done = cores[c].is_done();
                all_done &= done;
                if !done {
                    let ctx = cores[c].current_ctx();
                    ctx_cycles[c][ctx.state.bucket()] += 1;
                    if ctx.spinning {
                        spin_cycles[c] += 1;
                        // "Power wasted while spinning" (Figure 4) is the
                        // dynamic power above the idle floor — leakage is
                        // paid whether or not the core spins.
                        spin_tokens[c] += (tokens[c]
                            - params.core_leakage * current_mode[c].leakage_scale())
                        .max(0.0);
                    }
                }
            }

            // 6. Mechanism observes and sets next-cycle actions.
            obs_buf.clear();
            for c in 0..n {
                obs_buf.push(CoreObs {
                    tokens: tokens[c],
                    ctx: cores[c].current_ctx(),
                    done: cores[c].is_done(),
                });
            }
            let obs = ChipObs {
                cycle,
                chip_tokens: chip,
                uncore_tokens: uncore,
                cores: &obs_buf,
            };
            mechanism.control(&obs, &budget, &mut actions);
            for c in 0..n {
                if actions[c].mode != current_mode[c] {
                    transition[c] += DvfsMode::transition_cycles(current_mode[c], actions[c].mode);
                    current_mode[c] = actions[c].mode;
                }
                cores[c].throttle = actions[c].throttle;
            }

            if all_done {
                break;
            }
        }

        // Assemble the report.
        let core_reports: Vec<CoreReport> = (0..n)
            .map(|c| CoreReport {
                ctx_cycles: ctx_cycles[c],
                spin_cycles: spin_cycles[c],
                spin_tokens: spin_tokens[c],
                tokens: energy.per_core[c],
                committed: cores[c].stats.committed,
                mispredict_rate: cores[c].stats.mispredict_rate(),
                ptht_error: cores[c].ptht.relative_error(),
            })
            .collect();
        Ok(RunReport {
            benchmark: spec.name.clone(),
            mechanism: mechanism.name(),
            n_cores: n,
            cycles: cycle,
            budget,
            energy_tokens: energy.total,
            energy_joules: params.joules(energy.total),
            aopb_tokens,
            aopb_joules: params.joules(aopb_tokens),
            mean_power: energy.mean_power(),
            power_stddev: energy.power_stddev(),
            cycles_over_budget: cycles_over,
            max_temp_c: thermal.max_temp,
            mean_temp_c: (0..n).map(|c| thermal.mean_temp(c)).sum::<f64>() / n as f64,
            temp_stddev_c: thermal.mean_stddev(),
            cores: core_reports,
            trace,
        })
    }
}
