//! End-to-end simulation tests: full stack (workload → cores → MOESI
//! memory → power model → mechanism) on small inputs.

use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
use ptb_workloads::{Benchmark, Scale};

fn cfg(n: usize, mech: MechanismKind) -> SimConfig {
    SimConfig {
        n_cores: n,
        scale: Scale::Test,
        mechanism: mech,
        max_cycles: 20_000_000,
        ..SimConfig::default()
    }
}

#[test]
fn baseline_fft_completes_with_sane_report() {
    let r = Simulation::new(cfg(2, MechanismKind::None))
        .run(Benchmark::Fft)
        .expect("run");
    assert!(r.cycles > 1000, "suspiciously short run: {}", r.cycles);
    assert!(r.energy_tokens > 0.0);
    assert!(r.mean_power > 0.0);
    assert_eq!(r.n_cores, 2);
    assert_eq!(r.cores.len(), 2);
    for (i, c) in r.cores.iter().enumerate() {
        assert!(
            c.committed > 1000,
            "core {i} committed only {}",
            c.committed
        );
        assert!(c.tokens > 0.0);
    }
    // fft has barriers: some barrier time must be visible.
    let frac = r.breakdown_frac();
    assert!((frac.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(frac[3] > 0.0, "fft must spend time at barriers");
    assert!(frac[0] > 0.5, "fft at 2 cores is mostly busy");
}

#[test]
fn deterministic_runs() {
    let run = || {
        Simulation::new(cfg(2, MechanismKind::None))
            .run(Benchmark::Radix)
            .expect("run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.energy_tokens, b.energy_tokens);
    assert_eq!(a.aopb_tokens, b.aopb_tokens);
    assert_eq!(a.cores[0].committed, b.cores[0].committed);
}

#[test]
fn lock_heavy_benchmark_shows_lock_time() {
    let r = Simulation::new(cfg(4, MechanismKind::None))
        .run(Benchmark::Unstructured)
        .expect("run");
    let frac = r.breakdown_frac();
    assert!(
        frac[1] > 0.01,
        "unstructured at 4 cores must show lock-acquisition time, got {frac:?}"
    );
    // Spinning happened and burned some power.
    assert!(r.spin_power_frac() > 0.0);
}

#[test]
fn contention_free_benchmark_is_mostly_busy() {
    let r = Simulation::new(cfg(4, MechanismKind::None))
        .run(Benchmark::Blackscholes)
        .expect("run");
    let frac = r.breakdown_frac();
    assert!(
        frac[0] > 0.80,
        "blackscholes should be mostly busy: {frac:?}"
    );
    assert!(
        frac[1] < 0.05,
        "blackscholes has no lock contention: {frac:?}"
    );
}

#[test]
fn baseline_exceeds_the_half_peak_budget() {
    // The whole premise: without control, a busy chip spends a sizable
    // fraction of its time over the 50% budget.
    let r = Simulation::new(cfg(4, MechanismKind::None))
        .run(Benchmark::Swaptions)
        .expect("run");
    assert!(
        r.over_budget_frac() > 0.2,
        "baseline should exceed the 50% budget regularly, got {:.3}",
        r.over_budget_frac()
    );
    assert!(r.aopb_tokens > 0.0);
}

#[test]
fn dvfs_reduces_aopb_and_slows_down() {
    let base = Simulation::new(cfg(4, MechanismKind::None))
        .run(Benchmark::Swaptions)
        .expect("run");
    let dvfs = Simulation::new(cfg(4, MechanismKind::Dvfs))
        .run(Benchmark::Swaptions)
        .expect("run");
    assert!(dvfs.aopb_tokens < base.aopb_tokens, "DVFS must reduce AoPB");
    assert!(
        dvfs.cycles >= base.cycles,
        "power capping cannot speed things up"
    );
    assert!(dvfs.energy_tokens < base.energy_tokens * 1.1);
}

#[test]
fn ptb_matches_budget_better_than_dvfs() {
    let mk = |m| {
        Simulation::new(cfg(4, m))
            .run(Benchmark::Barnes)
            .expect("run")
    };
    let base = mk(MechanismKind::None);
    let dvfs = mk(MechanismKind::Dvfs);
    let ptb = mk(MechanismKind::PtbTwoLevel {
        policy: PtbPolicy::ToAll,
        relax: 0.0,
    });
    let norm = |r: &ptb_core::RunReport| r.aopb_tokens / base.aopb_tokens;
    assert!(
        norm(&ptb) < norm(&dvfs),
        "PTB AoPB ({:.3}) must beat DVFS ({:.3})",
        norm(&ptb),
        norm(&dvfs)
    );
}

#[test]
fn two_level_clips_spikes_better_than_dvfs_alone() {
    // Swaptions is sustained-busy, so the chip sits over the budget long
    // enough for the windowed mechanisms to engage even at Test scale.
    let mk = |m| {
        Simulation::new(cfg(4, m))
            .run(Benchmark::Swaptions)
            .expect("run")
    };
    let base = mk(MechanismKind::None);
    let dvfs = mk(MechanismKind::Dvfs);
    let two = mk(MechanismKind::TwoLevel);
    assert!(two.aopb_tokens < base.aopb_tokens);
    assert!(
        two.aopb_tokens <= dvfs.aopb_tokens * 1.05,
        "2level ({}) should not be much worse than DVFS ({})",
        two.aopb_tokens,
        dvfs.aopb_tokens
    );
}

#[test]
fn trace_capture_produces_samples() {
    let mut c = cfg(2, MechanismKind::None);
    c.capture_trace = true;
    let r = Simulation::new(c).run(Benchmark::Fft).expect("run");
    let t = r.trace.expect("trace requested");
    assert_eq!(t.len() as u64, r.cycles.min(4_000_000));
    assert!(t.per_core.len() == 2);
}

#[test]
fn wrong_thread_count_is_rejected() {
    let spec = Benchmark::Fft.spec(3, Scale::Test);
    let err = Simulation::new(cfg(2, MechanismKind::None))
        .run_spec(&spec)
        .unwrap_err();
    assert!(matches!(err, ptb_core::sim::SimError::BadWorkload(_)));
}

#[test]
fn max_cycles_limit_is_enforced() {
    let mut c = cfg(2, MechanismKind::None);
    c.max_cycles = 500; // far too few to finish
    let err = Simulation::new(c).run(Benchmark::Fft).unwrap_err();
    match err {
        ptb_core::sim::SimError::MaxCyclesExceeded { limit, unfinished } => {
            assert_eq!(limit, 500);
            assert!(!unfinished.is_empty());
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn budget_fraction_changes_the_budget() {
    let tight = SimConfig {
        budget_frac: 0.4,
        ..cfg(2, MechanismKind::None)
    };
    let loose = SimConfig {
        budget_frac: 0.9,
        ..cfg(2, MechanismKind::None)
    };
    let rt = Simulation::new(tight).run(Benchmark::X264).expect("run");
    let rl = Simulation::new(loose).run(Benchmark::X264).expect("run");
    assert!(rt.budget.global < rl.budget.global);
    assert!(
        rt.aopb_tokens >= rl.aopb_tokens,
        "tighter budget cannot have less overage"
    );
}
