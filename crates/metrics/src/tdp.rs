//! The §IV.D TDP core-packing arithmetic.
//!
//! The paper's worked example: a 16-core CMP with a 100 W TDP gives
//! 6.25 W/core; at a 50 % budget each core *should* average 3.125 W, so
//! ideally 32 cores fit in the same TDP. A mechanism with budget-matching
//! error `e` actually averages `3.125 × (1 + e)` W/core, so only
//! `⌊100 / that⌋` cores fit: 19 for DVFS (e = 0.65), 22 for the plain
//! 2-level approach (e = 0.40), 29 for PTB (e = 0.10).

/// Number of cores that fit in `tdp_watts` when each core is budgeted
/// `core_budget_watts` but the mechanism overshoots by fraction
/// `error_frac` (its normalised AoPB).
pub fn cores_within_tdp(tdp_watts: f64, core_budget_watts: f64, error_frac: f64) -> u32 {
    assert!(tdp_watts > 0.0 && core_budget_watts > 0.0 && error_frac >= 0.0);
    let effective = core_budget_watts * (1.0 + error_frac);
    (tdp_watts / effective).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the paper's §IV.D numbers exactly.
    #[test]
    fn paper_worked_example() {
        let tdp = 100.0;
        let budget = 3.125; // 6.25 W/core at a 50% budget
        assert_eq!(cores_within_tdp(tdp, budget, 0.65), 19); // DVFS
        assert_eq!(cores_within_tdp(tdp, budget, 0.40), 22); // 2-level
        assert_eq!(cores_within_tdp(tdp, budget, 0.10), 29); // PTB
        assert_eq!(cores_within_tdp(tdp, budget, 0.0), 32); // ideal
    }

    #[test]
    fn more_error_means_fewer_cores() {
        let mut last = u32::MAX;
        for e in [0.0, 0.1, 0.2, 0.4, 0.65, 1.0] {
            let c = cores_within_tdp(100.0, 3.125, e);
            assert!(c <= last);
            last = c;
        }
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_tdp() {
        cores_within_tdp(0.0, 1.0, 0.1);
    }
}
