//! Fixed-bin histograms (power-distribution analysis for the trace
//! figures).

use serde::{Deserialize, Serialize};

/// A histogram over a fixed `[lo, hi)` range with uniform bins; samples
/// outside the range land in the first/last bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `bins` uniform bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins >= 1);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        let n = self.bins.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.bins[idx.min(n - 1)] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Value at quantile `q` in [0, 1], estimated from bin boundaries.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return self.lo;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &b) in self.bins.iter().enumerate() {
            acc += b;
            if acc >= target.max(1) {
                // Upper edge of the bin.
                return self.lo + (self.hi - self.lo) * (i + 1) as f64 / self.bins.len() as f64;
            }
        }
        self.hi
    }

    /// Fraction of samples at or above `threshold`.
    pub fn frac_at_least(&self, threshold: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.bins.len();
        let start = if threshold <= self.lo {
            0
        } else if threshold >= self.hi {
            return 0.0;
        } else {
            (((threshold - self.lo) / (self.hi - self.lo)) * n as f64).floor() as usize
        };
        let above: u64 = self.bins[start.min(n - 1)..].iter().sum();
        above as f64 / self.count as f64
    }

    /// The raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 49.5).abs() < 1e-9);
        // Median is ~50 (bin upper-edge estimate).
        let med = h.quantile(0.5);
        assert!((45.0..=60.0).contains(&med), "median {med}");
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-5.0);
        h.record(50.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[4], 1);
    }

    #[test]
    fn frac_at_least() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let f = h.frac_at_least(75.0);
        assert!((f - 0.25).abs() < 0.03, "frac {f}");
        assert_eq!(h.frac_at_least(1000.0), 0.0);
        assert_eq!(h.frac_at_least(-1.0), 1.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.9), 0.0);
        assert_eq!(h.frac_at_least(0.5), 0.0);
    }

    #[test]
    fn quantile_extremes() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(5.0);
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }
}
