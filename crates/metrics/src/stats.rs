//! Small summary statistics.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean of positive values; 0 if any value is non-positive or
/// the slice is empty.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!(stddev(&[5.0, 5.0, 5.0]) < 1e-12);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, -1.0]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }
}
