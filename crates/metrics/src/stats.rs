//! Small summary statistics.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean of positive values; 0 if any value is non-positive or
/// the slice is empty.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Linearly-interpolated percentile (`p` in 0..=100, clamped); 0 for an
/// empty slice. NaN samples sort last.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
    let rank = p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile); 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!(stddev(&[5.0, 5.0, 5.0]) < 1e-12);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, -1.0]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates_and_clamps() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
        let xs = [4.0, 1.0, 3.0, 2.0]; // unsorted on purpose
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 200.0), 4.0); // clamped
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert!((median(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
    }
}
