//! # ptb-metrics — reporting utilities for the PTB evaluation
//!
//! Formatting and small-statistics helpers shared by the experiment
//! harness: aligned text tables (the shape of the paper's figures as
//! rows/series), CSV emission for plotting, summary statistics, and the
//! §IV.D TDP core-packing arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod stats;
pub mod table;
pub mod tdp;

pub use hist::Histogram;
pub use stats::{geomean, mean, median, percentile, stddev};
pub use table::Table;
pub use tdp::cores_within_tdp;
