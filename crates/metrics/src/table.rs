//! Aligned text tables + CSV emission.

use serde::{Deserialize, Serialize};

/// A simple column-aligned table with a title, printable as text (for the
/// terminal) or CSV (for plotting).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// Table title (figure/table id in the experiment harness).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of preformatted cells.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Append a row of (label, numeric values) with fixed precision.
    pub fn row_f(&mut self, label: &str, values: &[f64], precision: usize) -> &mut Self {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_string());
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.row(cells)
    }

    /// Render as an aligned text block.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (title as a `#` comment line).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = format!("# {}\n", self.title);
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns_columns() {
        let mut t = Table::new("Fig X", &["bench", "DVFS", "PTB"]);
        t.row_f("barnes", &[65.2, 8.01], 1);
        t.row_f("fft", &[70.0, 9.5], 1);
        let text = t.to_text();
        assert!(text.contains("== Fig X =="));
        let lines: Vec<&str> = text.lines().collect();
        // All data lines have equal length (aligned).
        assert_eq!(lines[2].len(), lines[3].len().max(lines[2].len()));
        assert!(text.contains("barnes"));
        assert!(text.contains("65.2"));
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
        assert!(csv.starts_with("# T\n"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
