//! Mesh geometry: node coordinates, XY routing paths, link identifiers.

use serde::{Deserialize, Serialize};

/// A network endpoint (one per core tile; the directory slice and the L2 of
/// core *i* share tile *i*'s router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Position of a node in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coord {
    /// Column (0-based).
    pub x: usize,
    /// Row (0-based).
    pub y: usize,
}

/// Direction of a directed mesh link leaving a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// +x.
    East,
    /// −x.
    West,
    /// +y.
    South,
    /// −y.
    North,
}

impl Direction {
    const COUNT: usize = 4;

    fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::South => 2,
            Direction::North => 3,
        }
    }
}

/// Static configuration of the mesh (Table 1 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Columns.
    pub width: usize,
    /// Rows.
    pub height: usize,
    /// Cycles for a flit to traverse one link (Table 1: 4).
    pub link_latency: u64,
    /// Per-hop router pipeline delay.
    pub router_latency: u64,
    /// Flit size in bytes (Table 1: 4).
    pub flit_bytes: u32,
}

impl MeshConfig {
    /// The paper's network parameters for an `n`-core CMP, arranged in the
    /// most square mesh possible (2→2×1, 4→2×2, 8→4×2, 16→4×4).
    pub fn for_cores(n: usize) -> Self {
        assert!(n >= 1, "mesh needs at least one node");
        let mut width = (n as f64).sqrt().ceil() as usize;
        while !n.is_multiple_of(width) {
            width += 1;
        }
        MeshConfig {
            width,
            height: n / width,
            link_latency: 4,
            router_latency: 1,
            flit_bytes: 4,
        }
    }

    /// Total node count.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Coordinate of node `id` (row-major layout).
    #[inline]
    pub fn coord(&self, id: NodeId) -> Coord {
        assert!(
            id.0 < self.nodes(),
            "node {id:?} outside {}x{} mesh",
            self.width,
            self.height
        );
        Coord {
            x: id.0 % self.width,
            y: id.0 / self.width,
        }
    }

    /// Node at coordinate `c`.
    #[inline]
    pub fn node(&self, c: Coord) -> NodeId {
        NodeId(c.y * self.width + c.x)
    }

    /// Number of flits needed to carry `bytes` of payload (≥ 1).
    #[inline]
    pub fn flits(&self, bytes: u32) -> u32 {
        bytes.div_ceil(self.flit_bytes).max(1)
    }

    /// Directed-link identifier for the link leaving `from` in `dir`.
    /// Links are dense indices suitable for a flat reservation table.
    #[inline]
    pub fn link_id(&self, from: NodeId, dir: Direction) -> usize {
        from.0 * Direction::COUNT + dir.index()
    }

    /// Total number of directed-link slots (including nonexistent edge
    /// links, which are simply never used).
    #[inline]
    pub fn link_slots(&self) -> usize {
        self.nodes() * Direction::COUNT
    }

    /// The XY dimension-ordered route from `src` to `dst`, as a sequence of
    /// (router, direction) link traversals. Empty when `src == dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<(NodeId, Direction)> {
        let mut path = Vec::new();
        let mut cur = self.coord(src);
        let goal = self.coord(dst);
        while cur.x != goal.x {
            let dir = if goal.x > cur.x {
                Direction::East
            } else {
                Direction::West
            };
            path.push((self.node(cur), dir));
            cur.x = if goal.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        }
        while cur.y != goal.y {
            let dir = if goal.y > cur.y {
                Direction::South
            } else {
                Direction::North
            };
            path.push((self.node(cur), dir));
            cur.y = if goal.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        }
        path
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        let a = self.coord(src);
        let b = self.coord(dst);
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_cores_shapes() {
        assert_eq!(MeshConfig::for_cores(2).nodes(), 2);
        let m4 = MeshConfig::for_cores(4);
        assert_eq!((m4.width, m4.height), (2, 2));
        let m8 = MeshConfig::for_cores(8);
        assert_eq!(m8.nodes(), 8);
        let m16 = MeshConfig::for_cores(16);
        assert_eq!((m16.width, m16.height), (4, 4));
    }

    #[test]
    fn coord_node_roundtrip() {
        let m = MeshConfig::for_cores(16);
        for i in 0..16 {
            let id = NodeId(i);
            assert_eq!(m.node(m.coord(id)), id);
        }
    }

    #[test]
    fn xy_route_is_x_then_y() {
        let m = MeshConfig::for_cores(16); // 4x4
                                           // node 1 = (1,0), node 14 = (2,3)
        let path = m.route(NodeId(1), NodeId(14));
        assert_eq!(path.len(), m.hops(NodeId(1), NodeId(14)));
        assert_eq!(path[0], (NodeId(1), Direction::East));
        assert!(matches!(path[1], (_, Direction::South)));
    }

    #[test]
    fn route_to_self_is_empty() {
        let m = MeshConfig::for_cores(4);
        assert!(m.route(NodeId(3), NodeId(3)).is_empty());
        assert_eq!(m.hops(NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn flit_count_rounds_up() {
        let m = MeshConfig::for_cores(4);
        assert_eq!(m.flits(1), 1);
        assert_eq!(m.flits(4), 1);
        assert_eq!(m.flits(5), 2);
        assert_eq!(m.flits(72), 18);
        assert_eq!(m.flits(0), 1);
    }

    #[test]
    fn link_ids_are_unique() {
        let m = MeshConfig::for_cores(16);
        let mut seen = std::collections::HashSet::new();
        for n in 0..m.nodes() {
            for dir in [
                Direction::East,
                Direction::West,
                Direction::South,
                Direction::North,
            ] {
                assert!(seen.insert(m.link_id(NodeId(n), dir)));
            }
        }
        assert!(seen.len() <= m.link_slots());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn route_length_equals_manhattan_distance(
            n in 1usize..=32,
            a in 0usize..32,
            b in 0usize..32,
        ) {
            let m = MeshConfig::for_cores(n);
            let src = NodeId(a % m.nodes());
            let dst = NodeId(b % m.nodes());
            prop_assert_eq!(m.route(src, dst).len(), m.hops(src, dst));
        }

        /// Dimension order: the route is a (possibly empty) run of
        /// east-or-west steps followed by a (possibly empty) run of
        /// north-or-south steps — never interleaved, and never mixing
        /// the two senses within a phase (no doubling back). This is
        /// the property that makes XY routing deadlock-free.
        #[test]
        fn route_is_x_phase_then_y_phase(
            n in 1usize..=32,
            a in 0usize..32,
            b in 0usize..32,
        ) {
            let m = MeshConfig::for_cores(n);
            let src = NodeId(a % m.nodes());
            let dst = NodeId(b % m.nodes());
            let path = m.route(src, dst);
            let is_x = |d: Direction| matches!(d, Direction::East | Direction::West);
            let x_steps: Vec<Direction> =
                path.iter().map(|&(_, d)| d).take_while(|&d| is_x(d)).collect();
            let y_steps: Vec<Direction> =
                path.iter().map(|&(_, d)| d).skip(x_steps.len()).collect();
            prop_assert!(
                y_steps.iter().all(|&d| !is_x(d)),
                "x-step after the y-phase began: {path:?}"
            );
            prop_assert!(x_steps.windows(2).all(|w| w[0] == w[1]), "x-phase doubles back");
            prop_assert!(y_steps.windows(2).all(|w| w[0] == w[1]), "y-phase doubles back");
            let (sc, dc) = (m.coord(src), m.coord(dst));
            prop_assert_eq!(x_steps.len(), sc.x.abs_diff(dc.x));
            prop_assert_eq!(y_steps.len(), sc.y.abs_diff(dc.y));
        }

        #[test]
        fn route_walks_adjacent_nodes(n in 2usize..=25, a in 0usize..25, b in 0usize..25) {
            let m = MeshConfig::for_cores(n);
            let src = NodeId(a % m.nodes());
            let dst = NodeId(b % m.nodes());
            let mut cur = src;
            for (router, dir) in m.route(src, dst) {
                prop_assert_eq!(router, cur);
                let c = m.coord(cur);
                let next = match dir {
                    Direction::East => Coord { x: c.x + 1, y: c.y },
                    Direction::West => Coord { x: c.x - 1, y: c.y },
                    Direction::South => Coord { x: c.x, y: c.y + 1 },
                    Direction::North => Coord { x: c.x, y: c.y - 1 },
                };
                cur = m.node(next);
            }
            prop_assert_eq!(cur, dst);
        }
    }
}
