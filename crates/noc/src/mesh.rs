//! The cycle-stepped mesh transport.

use crate::topology::{MeshConfig, NodeId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Aggregate network statistics (used for NoC energy accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NocStats {
    /// Messages injected.
    pub messages: u64,
    /// Flit-hops transmitted (flits × links traversed) — the NoC dynamic
    /// energy proxy.
    pub flit_hops: u64,
    /// Sum of end-to-end message latencies (cycles).
    pub total_latency: u64,
    /// Cycles any message spent waiting for a reserved link.
    pub contention_cycles: u64,
}

impl NocStats {
    /// Mean end-to-end latency, or 0 if no messages were sent.
    pub fn avg_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }
}

#[derive(Debug)]
struct InFlight<T> {
    deliver_at: u64,
    seq: u64,
    dst: NodeId,
    payload: T,
}

// Order by delivery time then injection sequence (deterministic).
impl<T> PartialEq for InFlight<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<T> Eq for InFlight<T> {}
impl<T> PartialOrd for InFlight<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for InFlight<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// A payload-generic 2-D mesh with link-reservation wormhole timing.
///
/// Usage: [`Mesh::send`] during a cycle, then [`Mesh::advance`] once per
/// cycle and drain [`Mesh::take_arrivals`].
#[derive(Debug)]
pub struct Mesh<T> {
    cfg: MeshConfig,
    now: u64,
    seq: u64,
    /// Per directed link: the first cycle at which it is free again.
    link_free_at: Vec<u64>,
    in_flight: BinaryHeap<Reverse<InFlight<T>>>,
    arrivals: Vec<(NodeId, T)>,
    stats: NocStats,
}

impl<T> Mesh<T> {
    /// Create an idle mesh.
    pub fn new(cfg: MeshConfig) -> Self {
        Mesh {
            cfg,
            now: 0,
            seq: 0,
            link_free_at: vec![0; cfg.link_slots()],
            in_flight: BinaryHeap::new(),
            arrivals: Vec::new(),
            stats: NocStats::default(),
        }
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Inject a `bytes`-byte message from `src` to `dst`; it will be
    /// delivered to [`Mesh::take_arrivals`] after the modelled latency.
    /// Messages to self are delivered next cycle (router loopback).
    pub fn send(&mut self, src: NodeId, dst: NodeId, bytes: u32, payload: T) {
        let flits = self.cfg.flits(bytes) as u64;
        let mut head_time = self.now;
        let mut contention = 0;
        if src != dst {
            for (router, dir) in self.cfg.route(src, dst) {
                let link = self.cfg.link_id(router, dir);
                let start = head_time.max(self.link_free_at[link]);
                contention += start - head_time;
                self.link_free_at[link] = start + flits;
                head_time = start + self.cfg.link_latency + self.cfg.router_latency;
                self.stats.flit_hops += flits;
            }
        }
        // Tail flit trails the head by flits−1 cycles; loopback costs 1.
        let deliver_at = if src == dst {
            self.now + 1
        } else {
            head_time + flits - 1
        };
        self.stats.messages += 1;
        self.stats.total_latency += deliver_at - self.now;
        self.stats.contention_cycles += contention;
        self.seq += 1;
        self.in_flight.push(Reverse(InFlight {
            deliver_at,
            seq: self.seq,
            dst,
            payload,
        }));
    }

    /// Advance one cycle, moving due messages to the arrival buffer.
    pub fn advance(&mut self) {
        self.now += 1;
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at > self.now {
                break;
            }
            let Reverse(m) = self.in_flight.pop().expect("peeked");
            self.arrivals.push((m.dst, m.payload));
        }
    }

    /// Drain messages that arrived at or before the current cycle, in
    /// deterministic injection order.
    pub fn take_arrivals(&mut self) -> Vec<(NodeId, T)> {
        std::mem::take(&mut self.arrivals)
    }

    /// Are any messages still in flight or undelivered?
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty() && self.arrivals.is_empty()
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Minimum (uncontended) latency for a `bytes`-byte message over
    /// `hops` links — useful for tests and analytic checks.
    pub fn uncontended_latency(&self, hops: usize, bytes: u32) -> u64 {
        if hops == 0 {
            return 1;
        }
        let flits = self.cfg.flits(bytes) as u64;
        hops as u64 * (self.cfg.link_latency + self.cfg.router_latency) + flits - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MeshConfig;

    fn mesh() -> Mesh<u32> {
        Mesh::new(MeshConfig::for_cores(16))
    }

    fn run_until_arrival(m: &mut Mesh<u32>, limit: u64) -> Vec<(NodeId, u32, u64)> {
        let mut out = Vec::new();
        for _ in 0..limit {
            m.advance();
            for (dst, p) in m.take_arrivals() {
                out.push((dst, p, m.now()));
            }
            if !out.is_empty() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_hop_control_message_latency() {
        let mut m = mesh();
        // node 0 -> node 1: one hop; 8-byte control message = 2 flits.
        m.send(NodeId(0), NodeId(1), 8, 7);
        let got = run_until_arrival(&mut m, 100);
        assert_eq!(got.len(), 1);
        let (dst, p, at) = got[0];
        assert_eq!(dst, NodeId(1));
        assert_eq!(p, 7);
        // 1 hop * (4+1) + (2-1) = 6 cycles.
        assert_eq!(at, m.uncontended_latency(1, 8));
        assert_eq!(at, 6);
    }

    #[test]
    fn multi_hop_data_message_latency() {
        let mut m = mesh();
        // 0=(0,0) -> 15=(3,3): 6 hops; 72-byte data = 18 flits.
        m.send(NodeId(0), NodeId(15), 72, 1);
        let got = run_until_arrival(&mut m, 200);
        // 6*(4+1) + 17 = 47.
        assert_eq!(got[0].2, 47);
        assert_eq!(m.stats().flit_hops, 18 * 6);
    }

    #[test]
    fn loopback_delivers_next_cycle() {
        let mut m = mesh();
        m.send(NodeId(5), NodeId(5), 64, 9);
        m.advance();
        let got = m.take_arrivals();
        assert_eq!(got, vec![(NodeId(5), 9)]);
    }

    #[test]
    fn contention_serialises_messages_on_shared_link() {
        let mut m = mesh();
        // Two 18-flit messages from node 0 to node 1 share the single link.
        m.send(NodeId(0), NodeId(1), 72, 1);
        m.send(NodeId(0), NodeId(1), 72, 2);
        let mut arrivals = Vec::new();
        for _ in 0..200 {
            m.advance();
            arrivals.extend(m.take_arrivals().into_iter().map(|(_, p)| (p, m.now())));
        }
        assert_eq!(arrivals.len(), 2);
        let t1 = arrivals.iter().find(|(p, _)| *p == 1).unwrap().1;
        let t2 = arrivals.iter().find(|(p, _)| *p == 2).unwrap().1;
        // Second message's head waits 18 cycles for the link reservation.
        assert_eq!(t1, 22); // 5 + 17
        assert_eq!(t2, t1 + 18);
        assert!(m.stats().contention_cycles >= 18);
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut m = mesh();
        m.send(NodeId(0), NodeId(1), 72, 1);
        m.send(NodeId(4), NodeId(5), 72, 2);
        let mut times = Vec::new();
        for _ in 0..100 {
            m.advance();
            times.extend(m.take_arrivals().into_iter().map(|(_, p)| (p, m.now())));
        }
        let t1 = times.iter().find(|(p, _)| *p == 1).unwrap().1;
        let t2 = times.iter().find(|(p, _)| *p == 2).unwrap().1;
        assert_eq!(t1, t2);
        assert_eq!(m.stats().contention_cycles, 0);
    }

    #[test]
    fn deterministic_arrival_order_same_cycle() {
        let mut m = mesh();
        m.send(NodeId(0), NodeId(1), 4, 10);
        m.send(NodeId(2), NodeId(1), 4, 20);
        for _ in 0..10 {
            m.advance();
        }
        let got = m.take_arrivals();
        assert_eq!(got.len(), 2);
        // Same delivery cycle -> injection order preserved.
        assert_eq!(got[0].1, 10);
        assert_eq!(got[1].1, 20);
    }

    #[test]
    fn idle_after_draining() {
        let mut m = mesh();
        assert!(m.is_idle());
        m.send(NodeId(0), NodeId(3), 8, 1);
        assert!(!m.is_idle());
        for _ in 0..100 {
            m.advance();
            m.take_arrivals();
        }
        assert!(m.is_idle());
    }

    #[test]
    fn stats_track_messages_and_latency() {
        let mut m = mesh();
        m.send(NodeId(0), NodeId(1), 8, 1);
        m.send(NodeId(1), NodeId(0), 8, 2);
        for _ in 0..50 {
            m.advance();
            m.take_arrivals();
        }
        let s = m.stats();
        assert_eq!(s.messages, 2);
        assert!(s.avg_latency() > 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every message is delivered exactly once, to the right node, and
        /// no earlier than the uncontended latency bound.
        #[test]
        fn delivery_is_exactly_once_and_not_early(
            sends in proptest::collection::vec((0usize..16, 0usize..16, 1u32..128), 1..40)
        ) {
            let cfg = MeshConfig::for_cores(16);
            let mut m: Mesh<usize> = Mesh::new(cfg);
            let mut expect = Vec::new();
            for (i, &(s, d, bytes)) in sends.iter().enumerate() {
                m.send(NodeId(s), NodeId(d), bytes, i);
                let min = m.uncontended_latency(cfg.hops(NodeId(s), NodeId(d)), bytes);
                expect.push((NodeId(d), min));
            }
            let mut got: Vec<(usize, NodeId, u64)> = Vec::new();
            for _ in 0..100_000u64 {
                m.advance();
                for (dst, p) in m.take_arrivals() {
                    got.push((p, dst, m.now()));
                }
                if m.is_idle() { break; }
            }
            prop_assert!(m.is_idle(), "mesh failed to drain");
            prop_assert_eq!(got.len(), sends.len());
            got.sort_by_key(|&(p, _, _)| p);
            for (p, dst, at) in got {
                let (want_dst, min) = expect[p];
                prop_assert_eq!(dst, want_dst);
                prop_assert!(at >= min, "msg {} early: {} < {}", p, at, min);
            }
        }

        /// Messages between the same (src, dst) pair arrive in injection
        /// order, regardless of size mix and injection spacing: link
        /// reservations serialise them on the shared path, and the
        /// arrival buffer preserves injection order within a cycle. The
        /// coherence protocol relies on this point-to-point FIFO.
        #[test]
        fn same_pair_delivery_is_fifo(
            s in 0usize..16,
            d in 0usize..16,
            msgs in proptest::collection::vec((1u32..128, 0u64..6), 2..24)
        ) {
            let cfg = MeshConfig::for_cores(16);
            let mut m: Mesh<usize> = Mesh::new(cfg);
            let mut sent = 0usize;
            let mut pending = msgs.iter().enumerate();
            let mut next = pending.next();
            let mut got: Vec<(usize, u64)> = Vec::new();
            for _ in 0..200_000u64 {
                // Inject the next message after its requested gap, so the
                // stream interleaves idle and back-to-back cycles.
                while let Some((i, &(bytes, gap))) = next {
                    if m.now() < sent as u64 + gap { break; }
                    m.send(NodeId(s), NodeId(d), bytes, i);
                    sent += 1;
                    next = pending.next();
                }
                m.advance();
                for (_, p) in m.take_arrivals() {
                    got.push((p, m.now()));
                }
                if next.is_none() && m.is_idle() { break; }
            }
            prop_assert!(m.is_idle(), "mesh failed to drain");
            prop_assert_eq!(got.len(), msgs.len());
            for (k, w) in got.windows(2).enumerate() {
                prop_assert!(
                    w[0].0 < w[1].0,
                    "FIFO violated at arrival {}: msg {} (cycle {}) before msg {}",
                    k, w[0].0, w[0].1, w[1].0
                );
                prop_assert!(w[0].1 <= w[1].1, "arrival times went backwards");
            }
        }
    }
}
