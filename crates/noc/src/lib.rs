//! # ptb-noc — switched 2-D mesh on-chip network
//!
//! Models the interconnect of the simulated CMP from the paper's Table 1:
//! a switched 2-D mesh direct network with **4-cycle link latency**,
//! **4-byte flits** and **1 flit/cycle** link bandwidth, XY
//! dimension-ordered routing.
//!
//! The timing model is *link-reservation wormhole*: a message of `n` flits
//! reserves each directed link on its XY path for `n` consecutive cycles,
//! starting no earlier than the link's previous reservation ends. Head-flit
//! latency per hop is `link_latency + router_latency`; the tail arrives
//! `n − 1` cycles after the head. This captures pipelined wormhole
//! transmission and link contention without simulating individual flit
//! buffers, which keeps a 16-core cycle-stepped simulation fast.
//!
//! The mesh is payload-generic: `ptb-mem` sends coherence messages through
//! it; unit tests send integers.
//!
//! ```
//! use ptb_noc::{Mesh, MeshConfig, NodeId};
//!
//! let mut mesh: Mesh<&str> = Mesh::new(MeshConfig::for_cores(16));
//! mesh.send(NodeId(0), NodeId(15), 72, "a cache line");
//! let mut delivered = None;
//! while delivered.is_none() {
//!     mesh.advance();
//!     delivered = mesh.take_arrivals().pop();
//! }
//! let (dst, payload) = delivered.unwrap();
//! assert_eq!(dst, NodeId(15));
//! assert_eq!(payload, "a cache line");
//! // 6 hops x (4-cycle links + 1-cycle routers) + 17 trailing flits:
//! assert_eq!(mesh.now(), 47);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mesh;
pub mod topology;

pub use mesh::{Mesh, NocStats};
pub use topology::{Coord, Direction, MeshConfig, NodeId};
