//! L1 instruction cache (Table 1: 64 KB, 2-way, 1-cycle hit).
//!
//! The front end probes this tag array for every fetch group. Misses stall
//! fetch for the L2 hit latency (code working sets fit comfortably in the
//! private L2, so instruction misses never travel the mesh; the data side
//! models full coherence instead). A real tag array — rather than an
//! infinite warm set — matters for workloads whose phase code plus lock
//! and barrier sites exceed a way, where pathological aliasing would
//! otherwise be invisible.

use serde::{Deserialize, Serialize};

/// Geometry + timing of the instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ICacheConfig {
    /// Total size in bytes (Table 1: 64 KB).
    pub size_bytes: u64,
    /// Associativity (Table 1: 2).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Cycles fetch stalls on a miss (fill from the private L2).
    pub miss_penalty: u64,
}

impl Default for ICacheConfig {
    fn default() -> Self {
        ICacheConfig {
            size_bytes: 64 << 10,
            ways: 2,
            line_bytes: 64,
            miss_penalty: 12,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    used: u64,
}

/// The instruction-cache tag array.
#[derive(Debug, Clone)]
pub struct ICache {
    cfg: ICacheConfig,
    sets: Vec<[Way; 8]>, // fixed max associativity, `cfg.ways` in use
    set_mask: u64,
    clock: u64,
    /// Lookups performed.
    pub accesses: u64,
    /// Misses taken.
    pub misses: u64,
}

impl ICache {
    /// Build an empty I-cache.
    pub fn new(cfg: ICacheConfig) -> Self {
        assert!(cfg.ways >= 1 && cfg.ways <= 8, "1..=8 ways supported");
        let sets = (cfg.size_bytes / cfg.line_bytes) as usize / cfg.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        ICache {
            cfg,
            sets: vec![
                [Way {
                    tag: 0,
                    valid: false,
                    used: 0
                }; 8];
                sets
            ],
            set_mask: sets as u64 - 1,
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Probe the line containing `pc`. On a miss the line is filled (the
    /// caller charges `miss_penalty` stall cycles). Returns `true` on hit.
    pub fn fetch(&mut self, pc: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let line = pc / self.cfg.line_bytes;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.trailing_ones();
        let ways = &mut self.sets[set];
        for w in ways.iter_mut().take(self.cfg.ways) {
            if w.valid && w.tag == tag {
                w.used = self.clock;
                return true;
            }
        }
        self.misses += 1;
        // Fill into the invalid or LRU way.
        let victim = (0..self.cfg.ways)
            .min_by_key(|&i| if ways[i].valid { ways[i].used } else { 0 })
            .expect("at least one way");
        ways[victim] = Way {
            tag,
            valid: true,
            used: self.clock,
        };
        false
    }

    /// Miss penalty in cycles.
    pub fn miss_penalty(&self) -> u64 {
        self.cfg.miss_penalty
    }

    /// Miss rate over all lookups.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ICache {
        // 2 sets x 2 ways x 64B = 256B.
        ICache::new(ICacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            miss_penalty: 12,
        })
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.fetch(0x100));
        assert!(c.fetch(0x104)); // same line
        assert!(c.fetch(0x13f));
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn conflict_eviction_at_low_associativity() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        assert!(!c.fetch(0));
        assert!(!c.fetch(2 * 64));
        assert!(c.fetch(0)); // still resident
        assert!(!c.fetch(4 * 64)); // evicts LRU (line 2)
        assert!(!c.fetch(2 * 64)); // miss again
    }

    #[test]
    fn loop_resident_code_has_negligible_miss_rate() {
        let mut c = ICache::new(ICacheConfig::default());
        // 1 KB loop body fetched a thousand times.
        for _ in 0..1000 {
            for pc in (0x1000..0x1400u64).step_by(4) {
                c.fetch(pc);
            }
        }
        assert!(c.miss_rate() < 0.001, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn default_geometry_matches_table1() {
        let c = ICache::new(ICacheConfig::default());
        assert_eq!(c.sets.len(), 512);
        assert_eq!(c.miss_penalty(), 12);
    }
}
