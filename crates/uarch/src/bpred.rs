//! Gshare branch predictor (Table 1: 64 KB, 16-bit history).
//!
//! 2¹⁶ two-bit saturating counters (16 K × 4 = 64 KB of predictor state in
//! the paper's accounting), indexed by `(pc >> 2) XOR global_history`.

use serde::{Deserialize, Serialize};

/// Gshare predictor with 16 bits of global history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u16,
    /// Predictions made.
    pub lookups: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

impl Default for Gshare {
    fn default() -> Self {
        Self::new()
    }
}

impl Gshare {
    /// A fresh predictor (weakly not-taken).
    pub fn new() -> Self {
        Gshare {
            counters: vec![1; 1 << 16],
            history: 0,
            lookups: 0,
            mispredicts: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) as u16) ^ self.history) as usize
    }

    /// Predict, then immediately train with the resolved outcome.
    ///
    /// Trace-driven front-ends know the architectural outcome at fetch time;
    /// the *prediction* is still made against the untrained state, so the
    /// returned mispredict flag is what a real gshare would have produced.
    /// Returns `true` if the branch was mispredicted.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        self.lookups += 1;
        let idx = self.index(pc);
        let predicted_taken = self.counters[idx] >= 2;
        let miss = predicted_taken != taken;
        if miss {
            self.mispredicts += 1;
        }
        // 2-bit saturating update.
        if taken {
            if self.counters[idx] < 3 {
                self.counters[idx] += 1;
            }
        } else if self.counters[idx] > 0 {
            self.counters[idx] -= 1;
        }
        self.history = (self.history << 1) | u16::from(taken);
        miss
    }

    /// Misprediction rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_branch() {
        let mut g = Gshare::new();
        // Warm-up may miss; steady state must not.
        for _ in 0..32 {
            g.predict_and_train(0x100, true);
        }
        let before = g.mispredicts;
        for _ in 0..100 {
            g.predict_and_train(0x100, true);
        }
        assert_eq!(
            g.mispredicts, before,
            "steady-state always-taken must be perfect"
        );
    }

    #[test]
    fn learns_loop_backedge_pattern() {
        let mut g = Gshare::new();
        // 7×taken then 1×not-taken, repeatedly: history disambiguates.
        for _ in 0..50 {
            for i in 0..8 {
                g.predict_and_train(0x200, i != 7);
            }
        }
        let before = g.mispredicts;
        for _ in 0..10 {
            for i in 0..8 {
                g.predict_and_train(0x200, i != 7);
            }
        }
        let steady = g.mispredicts - before;
        assert!(
            steady <= 10,
            "pattern should be mostly learned, {steady} misses in 80"
        );
    }

    #[test]
    fn random_branch_misses_about_half() {
        let mut g = Gshare::new();
        // Deterministic pseudo-random outcomes.
        let mut x = 0x12345678u64;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            g.predict_and_train(0x300, (x >> 62) & 1 == 1);
        }
        let rate = g.miss_rate();
        assert!((0.3..0.7).contains(&rate), "random-branch miss rate {rate}");
    }

    #[test]
    fn distinct_pcs_do_not_destructively_interfere() {
        let mut g = Gshare::new();
        for _ in 0..64 {
            g.predict_and_train(0x100, true);
            g.predict_and_train(0x104, false);
        }
        let before = g.mispredicts;
        for _ in 0..32 {
            g.predict_and_train(0x100, true);
            g.predict_and_train(0x104, false);
        }
        let steady = g.mispredicts - before;
        assert!(
            steady <= 4,
            "steady alternation should be learned, got {steady}"
        );
    }

    #[test]
    fn miss_rate_zero_without_lookups() {
        assert_eq!(Gshare::new().miss_rate(), 0.0);
    }
}
