//! # ptb-uarch — cycle-level out-of-order core model
//!
//! Rebuilds the core side of the paper's simulated CMP (GEMS *Opal* in the
//! original) per Table 1: a 4-wide out-of-order core at 3 GHz with a
//! 128-entry instruction window, 64-entry load/store queue, a 14-stage
//! pipeline, a 64 KB 16-bit-history gshare predictor, and a functional-unit
//! pool of 6 IntAlu / 2 IntMul / 4 FpAlu / 4 FpMul.
//!
//! The core is *trace-shaped but execution-accurate where it matters*:
//! instructions come from an [`ptb_isa::InstStream`] with resolved branch
//! outcomes, but atomic RMWs are split-phase (the stream learns the old
//! value only when the timing model executes the operation), so lock
//! acquisition order is decided by this model, not the workload generator.
//!
//! Power hooks: each tick produces a [`ptb_power::CoreActivity`] sample;
//! committed instructions update the core's Power-Token History Table with
//! their measured cost (base + ROB residency), and fetch accumulates the
//! PTHT estimate the management mechanisms act on.
//!
//! Micro-architectural power-saving knobs ([`Throttle`]) implement the
//! second level of the paper's hybrid approach: fetch throttling, issue
//! width restriction and ROB resizing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpred;
pub mod config;
pub mod core;
pub mod icache;
pub mod stats;
pub mod throttle;

pub use crate::core::{Core, CoreMemKind, CoreMemReq, RmwExec};
pub use bpred::Gshare;
pub use config::CoreConfig;
pub use icache::{ICache, ICacheConfig};
pub use stats::CoreStats;
pub use throttle::Throttle;
