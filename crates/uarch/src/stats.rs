//! Per-core execution statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated over a core's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Core clock cycles executed (excludes DVFS-skipped global cycles).
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed instructions that were spin-loop iterations.
    pub committed_spin: u64,
    /// Conditional branches fetched.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Cycles fetch was blocked on a pending branch redirect.
    pub mispredict_stall_cycles: u64,
    /// Cycles fetch was blocked on an I-cache cold miss.
    pub icache_stall_cycles: u64,
    /// Cycles fetch was blocked because the ROB was full.
    pub rob_full_cycles: u64,
    /// Cycles the stream had nothing to offer (waiting on an RMW).
    pub stream_stall_cycles: u64,
    /// Loads satisfied by store-buffer forwarding.
    pub store_forwards: u64,
    /// Memory requests sent.
    pub mem_requests: u64,
}

impl CoreStats {
    /// Instructions per core cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Misprediction rate over fetched branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }

    #[test]
    fn ipc_math() {
        let s = CoreStats {
            cycles: 100,
            committed: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }
}
