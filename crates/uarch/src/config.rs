//! Core configuration (paper Table 1).

use ptb_isa::OpKind;
use serde::{Deserialize, Serialize};

/// Static configuration of one out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Reorder-buffer (instruction window) entries. Table 1: 128.
    pub rob_size: usize,
    /// Load/store queue entries. Table 1: 64.
    pub lsq_size: usize,
    /// Fetch width (instructions/cycle). Table 1 decode width: 4.
    pub fetch_width: usize,
    /// Dispatch (decode/rename) width. Table 1: 4.
    pub decode_width: usize,
    /// Issue width. Table 1: 4.
    pub issue_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Front-end depth in cycles (fetch → dispatch); the paper's 14-stage
    /// pipeline split as ~8 front-end + execute/commit back-end.
    pub frontend_depth: u64,
    /// Integer ALUs. Table 1: 6.
    pub int_alu: usize,
    /// Integer multipliers. Table 1: 2.
    pub int_mul: usize,
    /// FP ALUs. Table 1: 4.
    pub fp_alu: usize,
    /// FP multipliers. Table 1: 4.
    pub fp_mul: usize,
    /// Post-commit store buffer entries.
    pub store_buffer: usize,
    /// L1-I cold-miss penalty in cycles (code working sets are small; the
    /// instruction cache warms once per static line).
    pub icache_miss_penalty: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            rob_size: 128,
            lsq_size: 64,
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            frontend_depth: 8,
            int_alu: 6,
            int_mul: 2,
            fp_alu: 4,
            fp_mul: 4,
            store_buffer: 16,
            icache_miss_penalty: 12,
        }
    }
}

impl CoreConfig {
    /// Execution latency of an operation class, in cycles (excluding
    /// memory time for loads/stores/RMWs, which the memory system adds).
    pub fn latency(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::Nop => 1,
            OpKind::IntAlu => 1,
            OpKind::IntMul => 3,
            OpKind::FpAlu => 2,
            OpKind::FpMul => 4,
            OpKind::Branch | OpKind::Jump => 1,
            // Address generation; the access itself is asynchronous.
            OpKind::Load | OpKind::Store | OpKind::AtomicRmw => 1,
        }
    }

    /// Number of functional units able to start `kind` each cycle.
    pub fn fu_count(&self, kind: OpKind) -> usize {
        match kind {
            OpKind::IntAlu | OpKind::Branch | OpKind::Jump | OpKind::Nop => self.int_alu,
            OpKind::IntMul => self.int_mul,
            OpKind::FpAlu => self.fp_alu,
            OpKind::FpMul => self.fp_mul,
            // Loads/stores use LSQ ports.
            OpKind::Load | OpKind::Store | OpKind::AtomicRmw => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = CoreConfig::default();
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.lsq_size, 64);
        assert_eq!(c.decode_width, 4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.int_alu, 6);
        assert_eq!(c.int_mul, 2);
        assert_eq!(c.fp_alu, 4);
        assert_eq!(c.fp_mul, 4);
    }

    #[test]
    fn latencies_ordered_sensibly() {
        let c = CoreConfig::default();
        assert!(c.latency(OpKind::IntAlu) <= c.latency(OpKind::IntMul));
        assert!(c.latency(OpKind::FpAlu) <= c.latency(OpKind::FpMul));
        for k in OpKind::ALL {
            assert!(c.latency(k) >= 1);
            assert!(c.fu_count(k) >= 1);
        }
    }
}
