//! Micro-architectural power-saving knobs.
//!
//! These implement the second level of the paper's hybrid (2-level)
//! approach, taken from Cebrián et al., IPDPS 2009 \[2\]: when DVFS alone
//! leaves power spikes over the budget, the core is throttled with
//! progressively more aggressive micro-architectural techniques —
//! fetch throttling, issue-width restriction and instruction-window
//! (ROB) resizing.

use serde::{Deserialize, Serialize};

/// Active micro-architectural throttle state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Throttle {
    /// Fetch only once every `fetch_every` cycles (1 = no throttling).
    pub fetch_every: u32,
    /// Issue width cap (≤ configured issue width).
    pub issue_width: usize,
    /// Usable ROB entries (≤ configured ROB size).
    pub rob_cap: usize,
}

impl Throttle {
    /// No throttling.
    pub fn none() -> Self {
        Throttle {
            fetch_every: 1,
            issue_width: usize::MAX,
            rob_cap: usize::MAX,
        }
    }

    /// The graded levels used by the 2-level mechanism, mildest first:
    /// 0 = off, 1 = fetch/2, 2 = fetch/2 + issue 3, 3 = fetch/3 + issue 2 +
    /// ROB/2. Even level 3 leaves the machine running: micro-architectural
    /// techniques have a power floor (leakage, clocks, minimum activity),
    /// which is why a naive per-core budget cannot always be met — the gap
    /// PTB closes with balancing.
    pub fn level(l: u8) -> Self {
        match l {
            0 => Self::none(),
            1 => Throttle {
                fetch_every: 2,
                issue_width: usize::MAX,
                rob_cap: usize::MAX,
            },
            2 => Throttle {
                fetch_every: 2,
                issue_width: 3,
                rob_cap: usize::MAX,
            },
            _ => Throttle {
                fetch_every: 3,
                issue_width: 2,
                rob_cap: 64,
            },
        }
    }

    /// Number of graded levels (0..=3).
    pub const LEVELS: u8 = 4;

    /// Is any throttling active?
    pub fn active(&self) -> bool {
        *self != Self::none()
    }
}

impl Default for Throttle {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_monotonically_more_aggressive() {
        let l: Vec<Throttle> = (0..4).map(Throttle::level).collect();
        assert!(!l[0].active());
        assert!(l[1].active() && l[2].active() && l[3].active());
        assert!(l[1].fetch_every <= l[2].fetch_every);
        assert!(l[2].fetch_every <= l[3].fetch_every);
        assert!(l[2].issue_width >= l[3].issue_width);
        assert!(l[3].rob_cap < usize::MAX);
    }

    #[test]
    fn default_is_off() {
        assert!(!Throttle::default().active());
        assert_eq!(Throttle::level(0), Throttle::none());
    }
}
