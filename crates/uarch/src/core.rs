//! The out-of-order core pipeline.
//!
//! Stage order within a tick: writeback → commit → issue → dispatch →
//! fetch. A tick corresponds to one *core* clock; under DFS/DVFS the
//! simulator simply skips ticks, so all internal latencies are in core
//! cycles.

use crate::bpred::Gshare;
use crate::config::CoreConfig;
use crate::icache::{ICache, ICacheConfig};
use crate::stats::CoreStats;
use crate::throttle::Throttle;
use ptb_isa::{
    Addr, CoreId, DynInst, ExecCtx, Fetch, InstStream, OpKind, RmwOp, RmwToken, StreamEnv,
};
use ptb_power::{CoreActivity, Ptht, TokenClass};
use std::collections::{HashMap, VecDeque};

/// Memory access class as seen by the core (mapped to `ptb-mem`'s
/// `AccessKind` by the simulator; kept separate so this crate does not
/// depend on the memory system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreMemKind {
    /// Read.
    Load,
    /// Write (post-commit, from the store buffer).
    Store,
    /// Atomic read-modify-write.
    Rmw,
}

/// A memory request emitted by the core; the simulator forwards it to the
/// memory system and routes the completion back via [`Core::mem_response`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreMemReq {
    /// Core-local correlation id.
    pub id: u64,
    /// Access class.
    pub kind: CoreMemKind,
    /// Byte address.
    pub addr: Addr,
}

/// An atomic RMW whose ownership acquisition just completed; the simulator
/// must now apply the functional operation (in arrival order) and report
/// the old value to the instruction stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmwExec {
    /// Stream correlation token.
    pub token: RmwToken,
    /// Word address.
    pub addr: Addr,
    /// Operation.
    pub op: RmwOp,
    /// Operand.
    pub operand: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Issued,
    Done,
}

/// Where a fetched instruction currently lives, by sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeqLoc {
    Committed,
    InRob(usize),
    NotDispatched,
}

#[derive(Debug)]
struct RobEntry {
    inst: DynInst,
    seq: u64,
    state: EntryState,
    deps: [Option<u64>; 2],
    dispatched_at: u64,
    mem_pending: Option<u64>,
    /// Entry is queued in the ready list (issue candidates).
    in_ready: bool,
}

#[derive(Debug)]
struct FrontEntry {
    inst: DynInst,
    seq: u64,
    ready_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct SbEntry {
    addr: Addr,
    mem_id: Option<u64>,
}

/// One out-of-order core.
pub struct Core {
    /// This core's identity (tile index).
    pub id: CoreId,
    cfg: CoreConfig,
    /// Micro-architectural throttle currently applied (power mechanisms).
    pub throttle: Throttle,
    now: u64,
    seq: u64,
    frontq: VecDeque<FrontEntry>,
    rob: VecDeque<RobEntry>,
    /// Seqs of entries whose operands are ready (issue candidates).
    ready: VecDeque<u64>,
    /// FU-completion ring: `completing[cycle % RING]` lists seqs whose
    /// execution finishes that cycle.
    completing: [Vec<u64>; Self::RING],
    /// Cache lines with an in-flight store (dispatch -> store-buffer
    /// drain), for load forwarding in O(1).
    store_lines: HashMap<u64, u32>,
    /// ROB entries with an outstanding memory access (power: active).
    mem_inflight: usize,
    lsq_count: usize,
    store_buffer: VecDeque<SbEntry>,
    bpred: Gshare,
    /// PC-indexed power-token history (read at fetch, written at commit).
    pub ptht: Ptht,
    /// L1 instruction cache (misses stall fetch).
    pub icache: ICache,
    icache_stall_until: u64,
    /// Fetch blocked until the branch with this seq completes.
    redirect_block: Option<u64>,
    stream_done: bool,
    next_mem_id: u64,
    mem_out: Vec<CoreMemReq>,
    rmw_out: Vec<RmwExec>,
    /// Sum of PTHT estimates of instructions fetched this tick.
    fetch_estimate: f64,
    last_ctx: ExecCtx,
    /// Statistics.
    pub stats: CoreStats,
    base_tokens: [f64; 8],
}

impl Core {
    /// Create a core. `base_tokens` are the per-class base token costs
    /// (usually `PowerParams::class_base`), used for PTHT training.
    pub fn new(id: CoreId, cfg: CoreConfig, base_tokens: [f64; 8]) -> Self {
        Core {
            id,
            cfg,
            throttle: Throttle::none(),
            now: 0,
            seq: 0,
            frontq: VecDeque::new(),
            rob: VecDeque::with_capacity(cfg.rob_size),
            ready: VecDeque::new(),
            completing: std::array::from_fn(|_| Vec::new()),
            store_lines: HashMap::new(),
            mem_inflight: 0,
            lsq_count: 0,
            store_buffer: VecDeque::new(),
            bpred: Gshare::new(),
            ptht: Ptht::default(),
            icache: ICache::new(ICacheConfig {
                miss_penalty: cfg.icache_miss_penalty,
                ..ICacheConfig::default()
            }),
            icache_stall_until: 0,
            redirect_block: None,
            stream_done: false,
            next_mem_id: 0,
            mem_out: Vec::new(),
            rmw_out: Vec::new(),
            fetch_estimate: 0.0,
            last_ctx: ExecCtx::BUSY,
            stats: CoreStats::default(),
            base_tokens,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Local (core) cycle count.
    pub fn local_cycle(&self) -> u64 {
        self.now
    }

    /// True when the stream ended and all in-flight work retired.
    pub fn is_done(&self) -> bool {
        self.stream_done
            && self.frontq.is_empty()
            && self.rob.is_empty()
            && self.store_buffer.is_empty()
    }

    /// The execution-context tag of the oldest in-flight instruction (the
    /// architectural "what is this core doing"), falling back to the last
    /// committed context when the pipeline is empty.
    pub fn current_ctx(&self) -> ExecCtx {
        self.rob
            .front()
            .map(|e| e.inst.ctx)
            .unwrap_or(self.last_ctx)
    }

    /// Drain memory requests produced by the last tick.
    pub fn drain_mem_requests(&mut self, out: &mut Vec<CoreMemReq>) {
        out.append(&mut self.mem_out);
    }

    /// Drain RMW executions produced by the last tick (apply functionally,
    /// then call `stream.rmw_result`).
    pub fn drain_rmw_execs(&mut self, out: &mut Vec<RmwExec>) {
        out.append(&mut self.rmw_out);
    }

    /// Sum of PTHT estimates of instructions fetched in the last tick
    /// (the hardware's per-cycle power estimate; resets on read).
    pub fn take_fetch_estimate(&mut self) -> f64 {
        std::mem::take(&mut self.fetch_estimate)
    }

    /// Deliver a memory completion for request `id`.
    pub fn mem_response(&mut self, id: u64) {
        // Store-buffer drain?
        if let Some(pos) = self.store_buffer.iter().position(|s| s.mem_id == Some(id)) {
            let line = self.store_buffer[pos].addr.line_index();
            self.store_buffer.remove(pos);
            if let Some(n) = self.store_lines.get_mut(&line) {
                *n -= 1;
                if *n == 0 {
                    self.store_lines.remove(&line);
                }
            }
            return;
        }
        if let Some(pos) = self.rob.iter().position(|e| e.mem_pending == Some(id)) {
            let e = &mut self.rob[pos];
            e.mem_pending = None;
            self.mem_inflight -= 1;
            let seq = e.seq;
            if e.inst.kind == OpKind::AtomicRmw {
                let rmw = e.inst.rmw.expect("validated at fetch");
                let addr = e.inst.mem.expect("validated at fetch").addr;
                self.rmw_out.push(RmwExec {
                    token: rmw.token,
                    addr,
                    op: rmw.op,
                    operand: rmw.operand,
                });
            }
            self.complete_entry(seq);
        }
    }

    /// Completion-ring size; must exceed the longest FU latency.
    const RING: usize = 8;
    /// Maximum register-dependence distance workloads may emit.
    pub const MAX_DEP_DIST: u8 = 8;

    /// Schedule entry `seq` to complete execution at cycle `at`.
    fn schedule_complete(&mut self, seq: u64, at: u64) {
        debug_assert!(at > self.now && at - self.now < Self::RING as u64);
        self.completing[(at % Self::RING as u64) as usize].push(seq);
    }

    /// Mark entry `seq` Done and wake any dependents within dep range.
    fn complete_entry(&mut self, seq: u64) {
        if let SeqLoc::InRob(idx) = self.locate_seq(seq) {
            if self.rob[idx].state != EntryState::Done {
                self.rob[idx].state = EntryState::Done;
            }
        }
        self.wake_dependents(seq);
    }

    /// Push consumers of `seq` (which just completed) onto the ready list.
    /// Dependence distances are bounded by [`Self::MAX_DEP_DIST`], so only
    /// the next few entries can consume this producer.
    fn wake_dependents(&mut self, seq: u64) {
        for k in 1..=u64::from(Self::MAX_DEP_DIST) {
            let target = seq + k;
            if let SeqLoc::InRob(idx) = self.locate_seq(target) {
                let e = &self.rob[idx];
                if e.state == EntryState::Waiting
                    && !e.in_ready
                    && e.inst.kind != OpKind::AtomicRmw
                    && e.deps.contains(&Some(seq))
                    && self.deps_done(&self.rob[idx])
                {
                    self.rob[idx].in_ready = true;
                    self.ready.push_back(target);
                }
            }
        }
    }

    /// Where instruction `seq` currently lives.
    fn locate_seq(&self, seq: u64) -> SeqLoc {
        if let Some(front) = self.rob.front() {
            if seq < front.seq {
                return SeqLoc::Committed;
            }
            let idx = (seq - front.seq) as usize;
            if idx < self.rob.len() {
                return SeqLoc::InRob(idx);
            }
            return SeqLoc::NotDispatched;
        }
        // Empty ROB: anything still queued in the front-end is
        // not-dispatched; everything older has committed.
        match self.frontq.front() {
            Some(f) if seq >= f.seq => SeqLoc::NotDispatched,
            _ => SeqLoc::Committed,
        }
    }

    fn deps_done(&self, e: &RobEntry) -> bool {
        e.deps.iter().all(|d| match d {
            None => true,
            Some(seq) => match self.locate_seq(*seq) {
                SeqLoc::Committed => true,
                SeqLoc::InRob(idx) => self.rob[idx].state == EntryState::Done,
                // A producer can never be younger than its consumer.
                SeqLoc::NotDispatched => unreachable!("producer younger than consumer"),
            },
        })
    }

    fn next_mem_req(&mut self, kind: CoreMemKind, addr: Addr) -> u64 {
        let id = self.next_mem_id;
        self.next_mem_id += 1;
        self.stats.mem_requests += 1;
        self.mem_out.push(CoreMemReq { id, kind, addr });
        id
    }

    /// Is there an in-flight store (dispatched but not yet drained to
    /// memory) to the same line? If so a load forwards from it. This
    /// approximates same-line forwarding without an O(ROB) scan; the rare
    /// younger-store false positive only shortens one load.
    fn store_forward_hit(&self, line: Addr) -> bool {
        self.store_lines.contains_key(&line.line_index())
    }

    /// Advance the core by one core-clock cycle.
    pub fn tick(&mut self, stream: &mut dyn InstStream, env: &mut dyn StreamEnv) -> CoreActivity {
        self.now += 1;
        self.stats.cycles += 1;
        let mut act = CoreActivity {
            ticked: true,
            ..Default::default()
        };

        self.writeback();
        self.commit(&mut act);
        self.drain_store_buffer();
        self.issue(&mut act);
        self.dispatch(&mut act);
        self.fetch(stream, env, &mut act);

        act.rob_occupancy = self.rob.len() as u32;
        act.rob_active = (self.ready.len() + self.mem_inflight) as u32;
        act.lsq_occupancy = self.lsq_count as u32;
        act
    }

    fn writeback(&mut self) {
        let slot = (self.now % Self::RING as u64) as usize;
        let due = std::mem::take(&mut self.completing[slot]);
        for seq in due {
            self.complete_entry(seq);
        }
        // Branch redirect resolution.
        if let Some(seq) = self.redirect_block {
            let resolved = match self.locate_seq(seq) {
                SeqLoc::Committed => true,
                SeqLoc::InRob(idx) => self.rob[idx].state == EntryState::Done,
                SeqLoc::NotDispatched => false,
            };
            if resolved {
                self.redirect_block = None;
            }
        }
    }

    fn commit(&mut self, act: &mut CoreActivity) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if head.state != EntryState::Done {
                break;
            }
            if head.inst.kind == OpKind::Store && self.store_buffer.len() >= self.cfg.store_buffer {
                break; // structural stall on the store buffer
            }
            let e = self.rob.pop_front().expect("checked");
            if e.inst.kind == OpKind::Store {
                let addr = e.inst.mem.expect("validated").addr;
                self.store_buffer.push_back(SbEntry { addr, mem_id: None });
            }
            if e.inst.kind.is_mem() {
                self.lsq_count -= 1;
            }
            let residency = (self.now - e.dispatched_at) as f64;
            let tokens = self.base_tokens[TokenClass::of(e.inst.kind).index()] + residency;
            self.ptht.update(e.inst.pc, tokens);
            act.ptht_accesses += 1;
            act.committed += 1;
            self.stats.committed += 1;
            if e.inst.ctx.spinning {
                self.stats.committed_spin += 1;
            }
            self.last_ctx = e.inst.ctx;
        }
    }

    fn drain_store_buffer(&mut self) {
        if self.store_buffer.is_empty() {
            return;
        }
        // Up to two stores in flight to memory at once, issued in order.
        let in_flight = self
            .store_buffer
            .iter()
            .filter(|s| s.mem_id.is_some())
            .count();
        if in_flight >= 2 {
            return;
        }
        let mut budget = 2 - in_flight;
        for i in 0..self.store_buffer.len() {
            if budget == 0 {
                break;
            }
            if self.store_buffer[i].mem_id.is_none() {
                let addr = self.store_buffer[i].addr;
                let id = self.next_mem_req(CoreMemKind::Store, addr);
                self.store_buffer[i].mem_id = Some(id);
                budget -= 1;
            }
        }
    }

    fn issue(&mut self, act: &mut CoreActivity) {
        let width = self.cfg.issue_width.min(self.throttle.issue_width);
        let mut issued = 0usize;
        let mut fu_used = [0usize; 8];
        let mut mem_ports = 0usize;
        let now = self.now;
        // Atomics issue only from the ROB head (memory-ordering point);
        // they are kept out of the ready list and checked here.
        if let Some(head) = self.rob.front() {
            if head.inst.kind == OpKind::AtomicRmw
                && head.state == EntryState::Waiting
                && self.deps_done(head)
            {
                let addr = self.rob[0].inst.mem.expect("validated").addr;
                let id = self.next_mem_req(CoreMemKind::Rmw, addr);
                self.rob[0].state = EntryState::Issued;
                self.rob[0].mem_pending = Some(id);
                self.mem_inflight += 1;
                mem_ports += 1;
                issued += 1;
                act.issued += 1;
                act.issued_base_tokens +=
                    self.base_tokens[TokenClass::of(OpKind::AtomicRmw).index()];
                fu_used[TokenClass::of(OpKind::AtomicRmw).index()] += 1;
            }
        }
        // Ready-list select: pop candidates oldest-first; entries blocked
        // by structural limits go back for next cycle.
        let mut leftovers: Vec<u64> = Vec::new();
        while issued < width {
            let Some(seq) = self.ready.pop_front() else {
                break;
            };
            let SeqLoc::InRob(idx) = self.locate_seq(seq) else {
                continue;
            };
            if self.rob[idx].state != EntryState::Waiting {
                self.rob[idx].in_ready = false;
                continue;
            }
            let kind = self.rob[idx].inst.kind;
            let class = TokenClass::of(kind);
            let structurally_blocked = fu_used[class.index()] >= self.cfg.fu_count(kind)
                || (kind.is_mem() && mem_ports >= 2);
            if structurally_blocked {
                leftovers.push(seq);
                continue;
            }
            match kind {
                OpKind::Load => {
                    let addr = self.rob[idx].inst.mem.expect("validated").addr;
                    if self.store_forward_hit(addr.line()) {
                        self.stats.store_forwards += 1;
                        self.rob[idx].state = EntryState::Issued;
                        self.schedule_complete(seq, now + 1);
                    } else {
                        let id = self.next_mem_req(CoreMemKind::Load, addr);
                        self.rob[idx].state = EntryState::Issued;
                        self.rob[idx].mem_pending = Some(id);
                        self.mem_inflight += 1;
                    }
                    mem_ports += 1;
                }
                OpKind::Store => {
                    // Address generation; data heads to memory post-commit.
                    self.rob[idx].state = EntryState::Issued;
                    self.schedule_complete(seq, now + self.cfg.latency(kind));
                    mem_ports += 1;
                }
                OpKind::AtomicRmw => unreachable!("atomics never enter the ready list"),
                _ => {
                    self.rob[idx].state = EntryState::Issued;
                    self.schedule_complete(seq, now + self.cfg.latency(kind));
                }
            }
            self.rob[idx].in_ready = false;
            fu_used[class.index()] += 1;
            issued += 1;
            act.issued += 1;
            act.issued_base_tokens += self.base_tokens[class.index()];
        }
        // Structurally-blocked entries retry next cycle, oldest first.
        for seq in leftovers.into_iter().rev() {
            self.ready.push_front(seq);
        }
    }

    fn dispatch(&mut self, act: &mut CoreActivity) {
        let rob_cap = self.cfg.rob_size.min(self.throttle.rob_cap);
        for _ in 0..self.cfg.decode_width {
            let Some(front) = self.frontq.front() else {
                break;
            };
            if front.ready_at > self.now {
                break;
            }
            if self.rob.len() >= rob_cap {
                self.stats.rob_full_cycles += 1;
                break;
            }
            if front.inst.kind.is_mem() && self.lsq_count >= self.cfg.lsq_size {
                break;
            }
            let f = self.frontq.pop_front().expect("checked");
            // A dependence older than the first instruction resolves to
            // "no producer" (already-architectural value). Distances are
            // bounded so completion wake-up only scans a small window.
            let dep_of = |d: Option<u8>| {
                debug_assert!(
                    d.is_none_or(|d| (1..=Self::MAX_DEP_DIST).contains(&d)),
                    "dependence distance out of range"
                );
                d.and_then(|d| f.seq.checked_sub(u64::from(d)))
            };
            let deps = [dep_of(f.inst.dep1), dep_of(f.inst.dep2)];
            if f.inst.kind.is_mem() {
                self.lsq_count += 1;
            }
            if f.inst.kind == OpKind::Store {
                let line = f.inst.mem.expect("validated").addr.line_index();
                *self.store_lines.entry(line).or_insert(0) += 1;
            }
            let entry = RobEntry {
                inst: f.inst,
                seq: f.seq,
                state: EntryState::Waiting,
                deps,
                dispatched_at: self.now,
                mem_pending: None,
                in_ready: false,
            };
            let ready_now = f.inst.kind != OpKind::AtomicRmw && self.deps_done(&entry);
            self.rob.push_back(entry);
            if ready_now {
                self.rob.back_mut().expect("just pushed").in_ready = true;
                self.ready.push_back(f.seq);
            }
            act.dispatched += 1;
        }
    }

    fn fetch(
        &mut self,
        stream: &mut dyn InstStream,
        env: &mut dyn StreamEnv,
        act: &mut CoreActivity,
    ) {
        if self.stream_done {
            return;
        }
        if self.throttle.fetch_every > 1
            && !self
                .now
                .is_multiple_of(u64::from(self.throttle.fetch_every))
        {
            return;
        }
        if self.redirect_block.is_some() {
            // The front-end runs down the wrong path until redirect.
            self.stats.mispredict_stall_cycles += 1;
            act.wrongpath += self.cfg.fetch_width as u32;
            return;
        }
        if self.icache_stall_until > self.now {
            self.stats.icache_stall_cycles += 1;
            return;
        }
        let cap = (self.cfg.frontend_depth as usize + 2) * self.cfg.fetch_width;
        for _ in 0..self.cfg.fetch_width {
            if self.frontq.len() >= cap {
                break;
            }
            match stream.next(env) {
                Fetch::Done => {
                    self.stream_done = true;
                    break;
                }
                Fetch::Stall => {
                    self.stats.stream_stall_cycles += 1;
                    break;
                }
                Fetch::Inst(inst) => {
                    debug_assert!(inst.validate().is_ok(), "invalid instruction from stream");
                    // I-cache probe: a miss fills the line and stalls fetch
                    // for the fill latency; the missing instruction itself
                    // proceeds this cycle (critical-word-first restart).
                    if !self.icache.fetch(inst.pc) {
                        self.icache_stall_until = self.now + self.icache.miss_penalty();
                    }
                    self.fetch_estimate += self.ptht.estimate(inst.pc);
                    act.ptht_accesses += 1;
                    let seq = self.seq;
                    self.seq += 1;
                    act.fetched += 1;
                    let mut taken_break = false;
                    if inst.kind == OpKind::Branch {
                        let b = inst.branch.expect("validated");
                        self.stats.branches += 1;
                        let miss = self.bpred.predict_and_train(inst.pc, b.taken);
                        if miss {
                            self.stats.mispredicts += 1;
                            self.redirect_block = Some(seq);
                        }
                        taken_break = b.taken || miss;
                    } else if inst.kind == OpKind::Jump {
                        taken_break = true;
                    }
                    self.frontq.push_back(FrontEntry {
                        inst,
                        seq,
                        ready_at: self.now + self.cfg.frontend_depth,
                    });
                    if taken_break || self.icache_stall_until > self.now {
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptb_isa::stream::{FnEnv, VecStream};
    use ptb_isa::{RmwOp, RmwRequest};
    use ptb_power::PowerParams;

    fn core() -> Core {
        Core::new(
            CoreId(0),
            CoreConfig::default(),
            PowerParams::default().class_base,
        )
    }

    fn env() -> FnEnv<impl Fn(Addr) -> u64> {
        FnEnv {
            read: |_| 0,
            cycle: 0,
        }
    }

    /// Run until the core is done; panics on timeout. Returns cycles used.
    fn run_to_completion(c: &mut Core, s: &mut VecStream, respond_after: u64) -> u64 {
        let mut e = env();
        let mut pending: Vec<(u64, u64)> = Vec::new(); // (due, id)
        for _ in 0..200_000 {
            let _ = c.tick(s, &mut e);
            let mut reqs = Vec::new();
            c.drain_mem_requests(&mut reqs);
            for r in reqs {
                pending.push((c.local_cycle() + respond_after, r.id));
            }
            let now = c.local_cycle();
            pending.retain(|&(due, id)| {
                if due <= now {
                    c.mem_response(id);
                    false
                } else {
                    true
                }
            });
            let mut rmws = Vec::new();
            c.drain_rmw_execs(&mut rmws);
            for r in rmws {
                s.rmw_result(r.token, 0);
            }
            if c.is_done() {
                return c.local_cycle();
            }
        }
        panic!("core did not finish");
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let insts: Vec<DynInst> = (0..4000)
            .map(|i| DynInst::compute(0x1000 + i % 64 * 4, OpKind::IntAlu))
            .collect();
        let mut c = core();
        let mut s = VecStream::new(insts);
        let cycles = run_to_completion(&mut c, &mut s, 10);
        let ipc = 4000.0 / cycles as f64;
        assert!(
            ipc > 3.0,
            "independent ALU IPC {ipc} too low ({cycles} cycles)"
        );
    }

    #[test]
    fn dependent_chain_limits_ipc_to_one() {
        let insts: Vec<DynInst> = (0..2000)
            .map(|i| DynInst::compute(0x1000 + i % 64 * 4, OpKind::IntAlu).with_deps(Some(1), None))
            .collect();
        let mut c = core();
        let mut s = VecStream::new(insts);
        let cycles = run_to_completion(&mut c, &mut s, 10);
        let ipc = 2000.0 / cycles as f64;
        assert!(ipc < 1.2, "chained IPC {ipc} should be ~1");
        assert!(ipc > 0.7, "chained IPC {ipc} suspiciously low");
    }

    #[test]
    fn int_mul_throughput_limited_by_two_units() {
        let insts: Vec<DynInst> = (0..2000)
            .map(|i| DynInst::compute(0x1000 + i % 64 * 4, OpKind::IntMul))
            .collect();
        let mut c = core();
        let mut s = VecStream::new(insts);
        let cycles = run_to_completion(&mut c, &mut s, 10);
        let ipc = 2000.0 / cycles as f64;
        assert!(ipc <= 2.1, "IntMul IPC {ipc} exceeds 2 FUs");
        assert!(ipc > 1.5, "IntMul IPC {ipc} too low");
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // Alternating-taken branch at one PC is learnable; a
        // pseudo-random one is not. Compare cycle counts.
        let well_predicted: Vec<DynInst> = (0..2000)
            .map(|i| {
                if i % 4 == 3 {
                    DynInst::branch(0x1000 + (i % 64) * 4, true, 0x1000)
                } else {
                    DynInst::compute(0x1000 + (i % 64) * 4, OpKind::IntAlu)
                }
            })
            .collect();
        let mut x = 0x9e3779b97f4a7c15u64;
        let poorly_predicted: Vec<DynInst> = (0..2000)
            .map(|i| {
                if i % 4 == 3 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    DynInst::branch(0x1000 + (i % 64) * 4, (x >> 62) & 1 == 1, 0x1000)
                } else {
                    DynInst::compute(0x1000 + (i % 64) * 4, OpKind::IntAlu)
                }
            })
            .collect();
        let mut c1 = core();
        let mut s1 = VecStream::new(well_predicted);
        let good = run_to_completion(&mut c1, &mut s1, 10);
        let mut c2 = core();
        let mut s2 = VecStream::new(poorly_predicted);
        let bad = run_to_completion(&mut c2, &mut s2, 10);
        assert!(
            bad as f64 > good as f64 * 1.5,
            "mispredicts should hurt: good={good}, bad={bad}"
        );
        assert!(c2.stats.mispredicts > c1.stats.mispredicts * 3);
    }

    #[test]
    fn loads_wait_for_memory() {
        let insts: Vec<DynInst> = (0..100)
            .map(|i| DynInst::load(0x1000 + i * 4, Addr(0x1000_0000 + i * 4096)))
            .collect();
        let mut c = core();
        let mut s = VecStream::new(insts);
        let slow = run_to_completion(&mut c, &mut s, 200);
        let mut c2 = core();
        let mut s2 = VecStream::new(
            (0..100)
                .map(|i| DynInst::load(0x1000 + i * 4, Addr(0x1000_0000 + i * 4096)))
                .collect(),
        );
        let fast = run_to_completion(&mut c2, &mut s2, 2);
        assert!(
            slow > fast,
            "memory latency must matter: slow={slow}, fast={fast}"
        );
    }

    #[test]
    fn stores_commit_through_store_buffer() {
        let insts: Vec<DynInst> = (0..50)
            .map(|i| DynInst::store(0x1000 + i * 4, Addr(0x1000_0000 + i * 64)))
            .collect();
        let mut c = core();
        let mut s = VecStream::new(insts);
        // Even with slow memory, stores shouldn't serialise commit fully:
        // 50 stores with 100-cycle memory at 2 outstanding ≈ 2500 cycles;
        // without a store buffer at commit it would be ≥ 5000.
        let cycles = run_to_completion(&mut c, &mut s, 100);
        assert!(
            cycles < 3500,
            "store buffer not overlapping stores: {cycles}"
        );
        assert_eq!(c.stats.committed, 50);
    }

    #[test]
    fn load_forwards_from_older_store() {
        let a = Addr(0x1000_0040);
        let insts = vec![
            DynInst::store(0x1000, a),
            DynInst::load(0x1004, a),
            DynInst::compute(0x1008, OpKind::IntAlu),
        ];
        let mut c = core();
        let mut s = VecStream::new(insts);
        run_to_completion(&mut c, &mut s, 500);
        assert_eq!(c.stats.store_forwards, 1);
    }

    #[test]
    fn rmw_executes_at_head_and_reports() {
        let req = RmwRequest {
            op: RmwOp::TestAndSet,
            operand: 1,
            token: RmwToken(42),
        };
        let insts = vec![
            DynInst::compute(0x1000, OpKind::IntAlu),
            DynInst::rmw(0x1004, Addr(0x8000_0000), req),
            DynInst::compute(0x1008, OpKind::IntAlu),
        ];
        let mut c = core();
        let mut s = VecStream::new(insts);
        let mut e = env();
        let mut got_rmw = None;
        let mut pending: Vec<(u64, u64)> = Vec::new();
        for _ in 0..10_000 {
            c.tick(&mut s, &mut e);
            let mut reqs = Vec::new();
            c.drain_mem_requests(&mut reqs);
            for r in reqs {
                assert_eq!(r.kind, CoreMemKind::Rmw);
                pending.push((c.local_cycle() + 50, r.id));
            }
            let now = c.local_cycle();
            pending.retain(|&(due, id)| {
                if due <= now {
                    c.mem_response(id);
                    false
                } else {
                    true
                }
            });
            let mut rmws = Vec::new();
            c.drain_rmw_execs(&mut rmws);
            for r in rmws {
                got_rmw = Some(r);
                s.rmw_result(r.token, 0);
            }
            if c.is_done() {
                break;
            }
        }
        let r = got_rmw.expect("RMW never executed");
        assert_eq!(r.token, RmwToken(42));
        assert_eq!(r.op, RmwOp::TestAndSet);
        assert!(c.is_done());
    }

    #[test]
    fn fetch_throttling_slows_execution() {
        let mk = || -> Vec<DynInst> {
            (0..2000)
                .map(|i| DynInst::compute(0x1000 + i % 64 * 4, OpKind::IntAlu))
                .collect()
        };
        let mut c1 = core();
        let mut s1 = VecStream::new(mk());
        let fast = run_to_completion(&mut c1, &mut s1, 10);
        let mut c2 = core();
        c2.throttle = Throttle::level(3);
        let mut s2 = VecStream::new(mk());
        let slow = run_to_completion(&mut c2, &mut s2, 10);
        assert!(
            slow as f64 > fast as f64 * 2.0,
            "throttle level 3: fast={fast}, slow={slow}"
        );
    }

    #[test]
    fn ptht_trains_and_estimates_accurately_on_stable_loop() {
        let insts: Vec<DynInst> = (0..8000)
            .map(|i| DynInst::compute(0x1000 + (i % 32) * 4, OpKind::IntAlu))
            .collect();
        let mut c = core();
        let mut s = VecStream::new(insts);
        run_to_completion(&mut c, &mut s, 10);
        assert!(
            c.ptht.relative_error() < 0.25,
            "PTHT relative error {} too high for a stable loop",
            c.ptht.relative_error()
        );
    }

    #[test]
    fn activity_sample_reflects_work() {
        let insts: Vec<DynInst> = (0..64)
            .map(|i| DynInst::compute(0x1000 + i * 4, OpKind::IntAlu))
            .collect();
        let mut c = core();
        let mut s = VecStream::new(insts);
        let mut e = env();
        let a1 = c.tick(&mut s, &mut e);
        assert!(a1.ticked);
        // First fetch group hits the I-cache cold miss after one slot.
        assert!(a1.fetched >= 1);
        // After the cold miss + frontend delay, dispatch/issue kick in and
        // all instructions pass through issue exactly once.
        let mut total_issued = a1.issued;
        let mut total_fetched = a1.fetched;
        for _ in 0..200 {
            let a = c.tick(&mut s, &mut e);
            total_issued += a.issued;
            total_fetched += a.fetched;
        }
        assert_eq!(total_fetched, 64);
        assert_eq!(total_issued, 64);
    }

    #[test]
    fn current_ctx_tracks_instruction_tags() {
        use ptb_isa::LockId;
        let spin_ctx = ExecCtx::lock_spin(LockId(3));
        let insts: Vec<DynInst> = (0..64)
            .map(|i| DynInst::compute(0x1000 + i * 4, OpKind::IntAlu).with_ctx(spin_ctx))
            .collect();
        let mut c = core();
        assert_eq!(c.current_ctx(), ExecCtx::BUSY);
        let mut s = VecStream::new(insts);
        let mut e = env();
        for _ in 0..20 {
            c.tick(&mut s, &mut e);
        }
        assert_eq!(c.current_ctx(), spin_ctx);
        run_to_completion(&mut c, &mut s, 10);
        assert_eq!(c.stats.committed_spin, 64);
    }

    #[test]
    fn done_only_after_pipeline_drains() {
        let insts = vec![DynInst::store(0x1000, Addr(0x1000_0000))];
        let mut c = core();
        let mut s = VecStream::new(insts);
        let mut e = env();
        let mut req_id = None;
        for _ in 0..200 {
            c.tick(&mut s, &mut e);
            let mut reqs = Vec::new();
            c.drain_mem_requests(&mut reqs);
            if let Some(r) = reqs.first() {
                req_id = Some(r.id);
                break;
            }
        }
        // Store issued to memory; the core must not be done until the
        // response lands.
        assert!(!c.is_done());
        c.mem_response(req_id.expect("store request"));
        let mut e2 = env();
        // A few more ticks let fetch ride out the I-cache cold-miss stall
        // and observe end-of-stream.
        for _ in 0..20 {
            c.tick(&mut s, &mut e2);
        }
        assert!(c.is_done());
    }

    #[test]
    fn deterministic_execution() {
        let mk = || -> Vec<DynInst> {
            (0..500)
                .map(|i| match i % 7 {
                    0 => DynInst::load(0x1000 + (i % 64) * 4, Addr(0x1000_0000 + i * 64)),
                    1 => DynInst::branch(0x1000 + (i % 64) * 4, i % 3 == 0, 0x1000),
                    _ => DynInst::compute(0x1000 + (i % 64) * 4, OpKind::IntAlu),
                })
                .collect()
        };
        let mut c1 = core();
        let mut s1 = VecStream::new(mk());
        let t1 = run_to_completion(&mut c1, &mut s1, 30);
        let mut c2 = core();
        let mut s2 = VecStream::new(mk());
        let t2 = run_to_completion(&mut c2, &mut s2, 30);
        assert_eq!(t1, t2);
        assert_eq!(c1.stats, c2.stats);
    }
}
