//! Shared observability CLI for the experiment binaries.
//!
//! Any binary that accepts these flags strips them from its argv before
//! positional parsing, so they compose with each binary's own arguments:
//!
//! * `--trace-out PATH` — write a Chrome `trace_event` JSON file
//!   (load in Perfetto / `chrome://tracing`);
//! * `--metrics-out PATH` — write the run's counters and profile as a
//!   `metric,value` CSV;
//! * `--profile` — measure wall-clock time per simulator phase and
//!   print a one-line breakdown;
//! * `--audit` — check power-accounting invariants during the run
//!   (panics on violation).
//!
//! With none of the flags given, runs go through [`ptb_obs::NullObserver`]
//! and pay no observability cost at all.

use crate::runner::{Job, Runner, Sweep};
use ptb_core::RunReport;
use ptb_metrics::Table;
use ptb_obs::ObsStack;
use std::path::PathBuf;

/// Default event-ring capacity for `--trace-out` (events beyond this
/// keep only the newest; the drop count is reported).
pub const TRACE_CAPACITY: usize = 1 << 20;

/// Audit stride for `--audit`: check invariants every this many cycles.
pub const AUDIT_STRIDE: u64 = 64;

/// Parsed observability flags (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// Chrome trace output path, from `--trace-out`.
    pub trace_out: Option<PathBuf>,
    /// Metrics CSV output path, from `--metrics-out`.
    pub metrics_out: Option<PathBuf>,
    /// Wall-clock phase profiling, from `--profile`.
    pub profile: bool,
    /// Invariant auditing, from `--audit`.
    pub audit: bool,
}

impl ObsArgs {
    /// Strip the observability flags out of `argv` (both `--flag value`
    /// and `--flag=value` forms) and return the parsed set. Unrelated
    /// arguments keep their relative order, so positional parsing can
    /// run on what remains.
    pub fn parse(argv: &mut Vec<String>) -> ObsArgs {
        let mut out = ObsArgs::default();
        let mut i = 0;
        while i < argv.len() {
            let (flag, inline) = match argv[i].split_once('=') {
                Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
                None => (argv[i].clone(), None),
            };
            match flag.as_str() {
                "--trace-out" | "--metrics-out" => {
                    argv.remove(i);
                    let value = inline.unwrap_or_else(|| {
                        if i < argv.len() {
                            argv.remove(i)
                        } else {
                            eprintln!("error: {flag} requires a PATH argument");
                            std::process::exit(2);
                        }
                    });
                    let path = PathBuf::from(value);
                    if flag == "--trace-out" {
                        out.trace_out = Some(path);
                    } else {
                        out.metrics_out = Some(path);
                    }
                }
                "--profile" => {
                    argv.remove(i);
                    out.profile = true;
                }
                "--audit" => {
                    argv.remove(i);
                    out.audit = true;
                }
                _ => i += 1,
            }
        }
        out
    }

    /// True when any flag asked for observation.
    pub fn enabled(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.profile || self.audit
    }

    /// Build the observer stack these flags describe. Counters are on
    /// whenever anything is observed — they are cheap and feed
    /// `RunReport::extra_metrics`.
    pub fn stack(&self) -> ObsStack {
        let mut s = ObsStack::new();
        if self.enabled() {
            s = s.with_counters();
        }
        if self.trace_out.is_some() {
            s = s.with_recorder(TRACE_CAPACITY);
        }
        if self.audit {
            s = s.with_audit(AUDIT_STRIDE);
        }
        if self.profile {
            s = s.with_profiler();
        }
        s
    }

    /// Run `job` under these flags: unobserved (zero-cost) when no flag
    /// is set, otherwise through the configured [`ObsStack`] with
    /// artefacts written and counters merged into the report's
    /// `extra_metrics`.
    pub fn run_one(&self, runner: &Runner, job: Job) -> RunReport {
        if !self.enabled() {
            return runner.run_one(job);
        }
        let mut stack = self.stack();
        let mut report = runner.run_one_observed(job, &mut stack);
        stack.merge_extra_metrics(&mut report.extra_metrics);
        self.finish(&stack);
        report
    }

    /// Run a whole sweep under these flags.
    ///
    /// With no flag set this is exactly [`Runner::sweep`] — parallel,
    /// farm-cached, failure-isolating. With observation on, the jobs
    /// run sequentially (deterministic artefact content) through one
    /// shared [`ObsStack`], always live (a cache hit would observe
    /// nothing), failing fast on the first error: counters accumulate
    /// across the whole sweep, the trace ring covers its tail, and each
    /// report's `extra_metrics` carries the stack state as of that run.
    pub fn run_sweep(&self, runner: &Runner, jobs: &[Job]) -> Sweep {
        if !self.enabled() {
            return runner.sweep(jobs);
        }
        let mut stack = self.stack();
        let mut reports = Vec::with_capacity(jobs.len());
        for job in jobs {
            let mut report = runner.run_one_observed(*job, &mut stack);
            stack.merge_extra_metrics(&mut report.extra_metrics);
            reports.push(Some(report));
        }
        self.finish(&stack);
        Sweep {
            reports,
            failures: Vec::new(),
        }
    }

    /// Write the artefacts and print the summaries a populated stack
    /// carries. Exposed for binaries that drive the stack by hand
    /// instead of through [`ObsArgs::run_one`].
    pub fn finish(&self, stack: &ObsStack) {
        if let (Some(path), Some(rec)) = (&self.trace_out, &stack.recorder) {
            match std::fs::write(path, rec.chrome_trace_json()) {
                Ok(()) => println!(
                    "[trace: {} events ({} dropped) -> {}]",
                    rec.len(),
                    rec.dropped(),
                    path.display()
                ),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.metrics_out {
            let mut merged = std::collections::BTreeMap::new();
            stack.merge_extra_metrics(&mut merged);
            let mut t = Table::new("metrics", &["metric", "value"]);
            for (k, v) in &merged {
                t.row(vec![k.clone(), format!("{v}")]);
            }
            match std::fs::write(path, t.to_csv()) {
                Ok(()) => println!("[metrics: {} series -> {}]", merged.len(), path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
        if let Some(p) = &stack.profiler {
            println!("[profile: {}]", p.summary());
        }
        if let Some(a) = &stack.audit {
            println!("[audit: {} checks passed]", a.checks());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_strips_flags_and_keeps_positionals() {
        let mut a = argv(&[
            "bench_one",
            "fft",
            "--trace-out",
            "/tmp/t.json",
            "8",
            "--profile",
        ]);
        let o = ObsArgs::parse(&mut a);
        assert_eq!(a, argv(&["bench_one", "fft", "8"]));
        assert_eq!(
            o.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/t.json"))
        );
        assert!(o.profile);
        assert!(!o.audit);
        assert!(o.enabled());
    }

    #[test]
    fn parse_accepts_equals_form() {
        let mut a = argv(&["x", "--metrics-out=/tmp/m.csv", "--audit"]);
        let o = ObsArgs::parse(&mut a);
        assert_eq!(a, argv(&["x"]));
        assert_eq!(
            o.metrics_out.as_deref(),
            Some(std::path::Path::new("/tmp/m.csv"))
        );
        assert!(o.audit);
    }

    #[test]
    fn no_flags_means_disabled() {
        let mut a = argv(&["x", "fft", "16"]);
        let o = ObsArgs::parse(&mut a);
        assert!(!o.enabled());
        assert!(o.stack().is_empty());
    }

    #[test]
    fn stack_matches_flags() {
        let o = ObsArgs {
            trace_out: Some("/tmp/t.json".into()),
            metrics_out: None,
            profile: true,
            audit: false,
        };
        let s = o.stack();
        assert!(s.recorder.is_some());
        assert!(s.counters.is_some());
        assert!(s.profiler.is_some());
        assert!(s.audit.is_none());
    }
}
