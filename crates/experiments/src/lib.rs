//! # ptb-experiments — figure/table regeneration harness
//!
//! One binary per paper artefact (see `DESIGN.md` §4 for the index). All
//! binaries share this library: a thread-parallel sweep [`Runner`] that
//! executes independent simulations across worker threads, plus output
//! helpers that print the paper's rows/series as aligned text and drop a
//! CSV next to it.
//!
//! Environment knobs (all optional):
//! * `PTB_SCALE` — `test` | `small` (default) | `large`;
//! * `PTB_JOBS` — worker threads (default: available parallelism;
//!   `0` is rejected);
//! * `PTB_OUT` — output directory for `.txt`/`.csv` artefacts
//!   (default `target/figures`);
//! * `PTB_CORES` — override the core count of single-core-count figures;
//! * `PTB_FARM_DIR` — `ptb-farm` result store location (default
//!   `target/farm`); previously simulated points load from it instead
//!   of re-simulating, so re-running figure binaries is incremental;
//! * `PTB_NO_CACHE` — set to disable the farm entirely.
//!
//! Every binary also accepts `--no-cache` and `--farm-dir PATH` flags
//! (see [`Runner::from_env_args`]) and the `farm_ctl` binary inspects,
//! resumes, verifies, or garbage-collects a farm store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod obs;
pub mod runner;

pub use obs::ObsArgs;
pub use runner::{emit, emit_partial, Job, Runner, Sweep};

use ptb_core::report::{normalized_aopb_pct, normalized_energy_pct, slowdown_pct};
use ptb_core::{MechanismKind, PtbPolicy};
use ptb_metrics::{mean, Table};
use ptb_workloads::Benchmark;

/// The paper's evaluated mechanism set for 16-core detail figures.
pub fn detail_mechanisms(ptb: MechanismKind) -> Vec<MechanismKind> {
    vec![
        MechanismKind::Dvfs,
        MechanismKind::Dfs,
        MechanismKind::TwoLevel,
        ptb,
    ]
}

/// Shared harness for Figures 10/11/12: per-benchmark normalized energy
/// and AoPB at the default core count for DVFS/DFS/2-level/PTB with the
/// given policy (and, for Figure 13, per-benchmark slowdown).
///
/// Runs with per-job failure isolation (see [`Runner::sweep`]): in
/// `--keep-going` mode a bench whose baseline or any mechanism point
/// failed is dropped from the tables (and named in the artefact
/// footer). The sweep honours the caller's [`ObsArgs`] (see
/// [`ObsArgs::run_sweep`]). Emits `<stem>_energy`, `<stem>_aopb` and
/// returns the jobs and sweep for any extra processing.
pub fn detail_figure(
    runner: &Runner,
    obs: &ObsArgs,
    policy: PtbPolicy,
    relax: f64,
    stem: &str,
    figure_label: &str,
) -> (Vec<Job>, Sweep) {
    let n = runner.default_cores();
    let ptb = MechanismKind::PtbTwoLevel { policy, relax };
    let mechs = detail_mechanisms(ptb);
    let mut jobs = Vec::new();
    for bench in Benchmark::ALL {
        jobs.push(Job::new(bench, MechanismKind::None, n));
        for &m in &mechs {
            jobs.push(Job::new(bench, m, n));
        }
    }
    let sweep = obs.run_sweep(runner, &jobs);
    let stride = 1 + mechs.len();

    let headers = ["bench", "DVFS", "DFS", "2level", "PTB+2level"];
    let mut energy = Table::new(
        format!(
            "{figure_label} (left): normalized energy delta %, {n}-core, {}",
            policy.label()
        ),
        &headers,
    );
    let mut aopb = Table::new(
        format!(
            "{figure_label} (right): normalized AoPB %, {n}-core, {}",
            policy.label()
        ),
        &headers,
    );
    let mut e_cols = vec![Vec::new(); mechs.len()];
    let mut a_cols = vec![Vec::new(); mechs.len()];
    for (bi, bench) in Benchmark::ALL.iter().enumerate() {
        let Some(row) = sweep.row(bi * stride, stride) else {
            continue; // complete rows only; footer names the gaps
        };
        let base = row[0];
        let mut es = Vec::new();
        let mut as_ = Vec::new();
        for mi in 0..mechs.len() {
            let r = row[1 + mi];
            let e = normalized_energy_pct(base, r);
            let a = normalized_aopb_pct(base, r);
            es.push(e);
            as_.push(a);
            e_cols[mi].push(e);
            a_cols[mi].push(a);
        }
        energy.row_f(bench.name(), &es, 1);
        aopb.row_f(bench.name(), &as_, 1);
    }
    energy.row_f(
        "Avg.",
        &e_cols.iter().map(|c| mean(c)).collect::<Vec<_>>(),
        1,
    );
    aopb.row_f(
        "Avg.",
        &a_cols.iter().map(|c| mean(c)).collect::<Vec<_>>(),
        1,
    );
    let dropped = sweep.dropped_labels();
    emit_partial(runner, &format!("{stem}_energy"), &energy, &dropped);
    emit_partial(runner, &format!("{stem}_aopb"), &aopb, &dropped);
    (jobs, sweep)
}

/// Figure 13 companion: per-benchmark performance slowdown table from the
/// sweep produced by [`detail_figure`]. Incomplete benches are skipped,
/// matching the energy/AoPB tables.
pub fn slowdown_table(jobs: &[Job], sweep: &Sweep, title: &str) -> Table {
    let mechs_per_bench = 5; // baseline + 4 mechanisms
    let mut table = Table::new(title, &["bench", "DVFS", "DFS", "2level", "PTB+2level"]);
    let mut cols = vec![Vec::new(); 4];
    for (bi, bench) in Benchmark::ALL.iter().enumerate() {
        let Some(row) = sweep.row(bi * mechs_per_bench, mechs_per_bench) else {
            continue;
        };
        let base = row[0];
        debug_assert_eq!(jobs[bi * mechs_per_bench].bench, *bench);
        let mut vals = Vec::new();
        for mi in 0..4 {
            let s = slowdown_pct(base, row[1 + mi]);
            vals.push(s);
            cols[mi].push(s);
        }
        table.row_f(bench.name(), &vals, 1);
    }
    table.row_f("Avg.", &cols.iter().map(|c| mean(c)).collect::<Vec<_>>(), 1);
    table
}
