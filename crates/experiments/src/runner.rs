//! Parallel sweep execution and artefact emission.

use parking_lot::Mutex;
use ptb_core::{MechanismKind, RunReport, SimConfig, Simulation};
use ptb_metrics::Table;
use ptb_workloads::{Benchmark, Scale};
use std::collections::VecDeque;
use std::path::PathBuf;

/// One simulation to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Benchmark.
    pub bench: Benchmark,
    /// Mechanism.
    pub mech: MechanismKind,
    /// Core count.
    pub n_cores: usize,
    /// Capture a power trace?
    pub trace: bool,
}

impl Job {
    /// A plain job with no trace.
    pub fn new(bench: Benchmark, mech: MechanismKind, n_cores: usize) -> Self {
        Job {
            bench,
            mech,
            n_cores,
            trace: false,
        }
    }
}

/// Thread-parallel simulation sweep runner.
pub struct Runner {
    /// Workload scale.
    pub scale: Scale,
    /// Worker threads.
    pub jobs: usize,
    /// Artefact output directory.
    pub out_dir: PathBuf,
}

impl Runner {
    /// Configure from the environment (see crate docs).
    pub fn from_env() -> Self {
        let scale = match std::env::var("PTB_SCALE").as_deref() {
            Ok("test") => Scale::Test,
            Ok("large") => Scale::Large,
            _ => Scale::Small,
        };
        let jobs = std::env::var("PTB_JOBS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4)
            });
        let out_dir = std::env::var("PTB_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/figures"));
        Runner {
            scale,
            jobs,
            out_dir,
        }
    }

    /// Core count for single-core-count figures (paper: 16), overridable
    /// with `PTB_CORES`.
    pub fn default_cores(&self) -> usize {
        std::env::var("PTB_CORES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(16)
    }

    fn config(&self, job: &Job) -> SimConfig {
        SimConfig {
            n_cores: job.n_cores,
            scale: self.scale,
            mechanism: job.mech,
            capture_trace: job.trace,
            ..SimConfig::default()
        }
    }

    /// Run one job synchronously.
    pub fn run_one(&self, job: Job) -> RunReport {
        self.run_one_observed(job, &mut ptb_obs::NullObserver)
    }

    /// Run one job synchronously, streaming simulation events to `obs`
    /// (see [`ptb_obs::SimObserver`]).
    pub fn run_one_observed<O: ptb_obs::SimObserver>(&self, job: Job, obs: &mut O) -> RunReport {
        Simulation::new(self.config(&job))
            .run_observed(job.bench, obs)
            .unwrap_or_else(|e| {
                panic!(
                    "{} / {} / {} cores failed: {e}",
                    job.bench,
                    job.mech.label(),
                    job.n_cores
                )
            })
    }

    /// Run all jobs across worker threads; results come back in job order.
    pub fn run_all(&self, jobs: &[Job]) -> Vec<RunReport> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..jobs.len()).collect());
        let results: Mutex<Vec<Option<RunReport>>> = Mutex::new(vec![None; jobs.len()]);
        let n_workers = self.jobs.min(jobs.len()).max(1);
        crossbeam::scope(|s| {
            for _ in 0..n_workers {
                s.spawn(|_| loop {
                    let Some(idx) = queue.lock().pop_front() else {
                        break;
                    };
                    let report = self.run_one(jobs[idx]);
                    results.lock()[idx] = Some(report);
                });
            }
        })
        .expect("worker panicked");
        results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("job completed"))
            .collect()
    }
}

// `RunReport` contains no interior mutability and Simulation is
// constructed per job, so sharing &Runner across the scope is safe by
// construction (everything is Sync).

/// Print a table and write `.txt` + `.csv` artefacts into the runner's
/// output directory.
pub fn emit(runner: &Runner, name: &str, table: &Table) {
    let text = table.to_text();
    println!("{text}");
    if let Err(e) = std::fs::create_dir_all(&runner.out_dir) {
        eprintln!("warning: cannot create {}: {e}", runner.out_dir.display());
        return;
    }
    let txt_path = runner.out_dir.join(format!("{name}.txt"));
    let csv_path = runner.out_dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&txt_path, &text) {
        eprintln!("warning: cannot write {}: {e}", txt_path.display());
    }
    if let Err(e) = std::fs::write(&csv_path, table.to_csv()) {
        eprintln!("warning: cannot write {}: {e}", csv_path.display());
    }
    println!("[wrote {} and {}]", txt_path.display(), csv_path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_runner() -> Runner {
        Runner {
            scale: Scale::Test,
            jobs: 4,
            out_dir: std::env::temp_dir().join("ptb-figtest"),
        }
    }

    #[test]
    fn parallel_results_match_serial() {
        let r = test_runner();
        let jobs = vec![
            Job::new(Benchmark::Fft, MechanismKind::None, 2),
            Job::new(Benchmark::Radix, MechanismKind::None, 2),
            Job::new(Benchmark::Fft, MechanismKind::Dvfs, 2),
        ];
        let parallel = r.run_all(&jobs);
        for (job, rep) in jobs.iter().zip(&parallel) {
            let serial = r.run_one(*job);
            assert_eq!(serial.cycles, rep.cycles, "{:?}", job);
            assert_eq!(serial.energy_tokens, rep.energy_tokens);
        }
    }

    #[test]
    fn emit_writes_artifacts() {
        let r = test_runner();
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        emit(&r, "unit_test_table", &t);
        assert!(r.out_dir.join("unit_test_table.txt").exists());
        assert!(r.out_dir.join("unit_test_table.csv").exists());
    }
}
