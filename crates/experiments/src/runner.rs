//! Parallel sweep execution and artefact emission.
//!
//! Sweeps route through the `ptb-farm` content-addressed result store
//! by default: previously simulated points load from disk, misses run
//! in parallel on the farm's work-stealing executor, and every batch
//! prints a one-line `[farm]` hit/miss summary to stderr. Set
//! `PTB_NO_CACHE=1` (or pass `--no-cache`) for the uncached in-process
//! thread pool.

use parking_lot::Mutex;
use ptb_core::{MechanismKind, RunReport, SimConfig, Simulation};
use ptb_farm::{Farm, FarmJob};
use ptb_metrics::Table;
use ptb_workloads::{Benchmark, Scale};
use std::collections::VecDeque;
use std::path::PathBuf;

/// One simulation to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Benchmark.
    pub bench: Benchmark,
    /// Mechanism.
    pub mech: MechanismKind,
    /// Core count.
    pub n_cores: usize,
    /// Capture a power trace?
    pub trace: bool,
}

impl Job {
    /// A plain job with no trace.
    pub fn new(bench: Benchmark, mech: MechanismKind, n_cores: usize) -> Self {
        Job {
            bench,
            mech,
            n_cores,
            trace: false,
        }
    }
}

/// Thread-parallel simulation sweep runner.
pub struct Runner {
    /// Workload scale.
    pub scale: Scale,
    /// Worker threads.
    pub jobs: usize,
    /// Artefact output directory.
    pub out_dir: PathBuf,
    /// Result farm (content-addressed cache + journal); `None` runs
    /// every simulation in-process without persistence.
    pub farm: Option<Farm>,
}

/// Parse a `PTB_SCALE` value. `Err` carries a warning for unparsable
/// input (the caller decides where to print it).
fn parse_scale(raw: Option<&str>) -> Result<Scale, String> {
    match raw {
        None => Ok(Scale::Small),
        Some("test") => Ok(Scale::Test),
        Some("small") => Ok(Scale::Small),
        Some("large") => Ok(Scale::Large),
        Some(other) => Err(format!(
            "unparsable PTB_SCALE={other:?} (expected test|small|large); using small"
        )),
    }
}

/// Parse a `PTB_JOBS` value against a fallback. `Err(None)` means the
/// value was rejected outright (zero); `Err(Some(_))` carries a warning
/// and the caller should fall back.
fn parse_jobs(raw: Option<&str>) -> Result<Option<usize>, Option<String>> {
    match raw {
        None => Ok(None),
        Some(s) => match s.parse::<usize>() {
            Ok(0) => Err(None),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(Some(format!(
                "unparsable PTB_JOBS={s:?}; using available parallelism"
            ))),
        },
    }
}

impl Runner {
    /// Configure from the environment (see crate docs).
    ///
    /// `PTB_JOBS=0` is rejected (process exit 2); unparsable
    /// `PTB_SCALE`/`PTB_JOBS` values warn on stderr and fall back to
    /// their defaults instead of being silently ignored.
    pub fn from_env() -> Self {
        let scale_var = std::env::var("PTB_SCALE").ok();
        let scale = parse_scale(scale_var.as_deref()).unwrap_or_else(|warning| {
            eprintln!("warning: {warning}");
            Scale::Small
        });
        let default_jobs = || {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        };
        let jobs_var = std::env::var("PTB_JOBS").ok();
        let jobs = match parse_jobs(jobs_var.as_deref()) {
            Ok(Some(n)) => n,
            Ok(None) => default_jobs(),
            Err(None) => {
                eprintln!("error: PTB_JOBS must be at least 1, got 0");
                std::process::exit(2);
            }
            Err(Some(warning)) => {
                eprintln!("warning: {warning}");
                default_jobs()
            }
        };
        let out_dir = std::env::var("PTB_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/figures"));
        Runner {
            scale,
            jobs,
            out_dir,
            farm: Farm::from_env(),
        }
    }

    /// [`Runner::from_env`] plus the shared farm CLI flags, stripped
    /// from `argv` (both `--flag value` and `--flag=value` forms) so
    /// each binary's positional parsing runs on what remains:
    ///
    /// * `--no-cache` — bypass the farm entirely (like `PTB_NO_CACHE`);
    /// * `--farm-dir PATH` — store location (overrides `PTB_FARM_DIR`).
    pub fn from_env_args(argv: &mut Vec<String>) -> Self {
        let mut no_cache = false;
        let mut farm_dir: Option<PathBuf> = None;
        let mut i = 0;
        while i < argv.len() {
            let (flag, inline) = match argv[i].split_once('=') {
                Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
                None => (argv[i].clone(), None),
            };
            match flag.as_str() {
                "--no-cache" => {
                    argv.remove(i);
                    no_cache = true;
                }
                "--farm-dir" => {
                    argv.remove(i);
                    let value = inline.unwrap_or_else(|| {
                        if i < argv.len() {
                            argv.remove(i)
                        } else {
                            eprintln!("error: --farm-dir requires a PATH argument");
                            std::process::exit(2);
                        }
                    });
                    farm_dir = Some(PathBuf::from(value));
                }
                _ => i += 1,
            }
        }
        let mut runner = Runner::from_env();
        if no_cache {
            runner.farm = None;
        } else if let Some(dir) = farm_dir {
            match Farm::open(&dir) {
                Ok(farm) => runner.farm = Some(farm),
                Err(e) => {
                    eprintln!(
                        "warning: cannot open farm store {}: {e}; running uncached",
                        dir.display()
                    );
                    runner.farm = None;
                }
            }
        }
        runner
    }

    /// Core count for single-core-count figures (paper: 16), overridable
    /// with `PTB_CORES`.
    pub fn default_cores(&self) -> usize {
        std::env::var("PTB_CORES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(16)
    }

    fn config(&self, job: &Job) -> SimConfig {
        SimConfig {
            n_cores: job.n_cores,
            scale: self.scale,
            mechanism: job.mech,
            capture_trace: job.trace,
            ..SimConfig::default()
        }
    }

    fn farm_job(&self, job: &Job) -> FarmJob {
        FarmJob::new(job.bench, self.config(job))
    }

    /// Run one job synchronously (served from the farm when possible).
    pub fn run_one(&self, job: Job) -> RunReport {
        if let Some(farm) = &self.farm {
            return farm
                .run_batch(std::slice::from_ref(&self.farm_job(&job)), 1)
                .pop()
                .expect("one job in, one report out");
        }
        self.run_one_observed(job, &mut ptb_obs::NullObserver)
    }

    /// Run one job synchronously, streaming simulation events to `obs`
    /// (see [`ptb_obs::SimObserver`]).
    ///
    /// Observed runs always simulate live — they neither read nor write
    /// the farm store, so a cached result can never short-circuit the
    /// event stream the observer was attached for.
    pub fn run_one_observed<O: ptb_obs::SimObserver>(&self, job: Job, obs: &mut O) -> RunReport {
        Simulation::new(self.config(&job))
            .run_observed(job.bench, obs)
            .unwrap_or_else(|e| {
                panic!(
                    "{} / {} / {} cores failed: {e}",
                    job.bench,
                    job.mech.label(),
                    job.n_cores
                )
            })
    }

    /// Run all jobs across worker threads; results come back in job order.
    ///
    /// With a farm attached, the batch is deduplicated, cache hits load
    /// from the store, and only misses simulate (on the farm's
    /// work-stealing executor); the batch outcome is summarised on
    /// stderr. Without one, every job simulates in-process.
    pub fn run_all(&self, jobs: &[Job]) -> Vec<RunReport> {
        if jobs.is_empty() {
            return Vec::new();
        }
        if let Some(farm) = &self.farm {
            let fjobs: Vec<FarmJob> = jobs.iter().map(|j| self.farm_job(j)).collect();
            let before = farm.stats();
            let reports = farm.run_batch(&fjobs, self.jobs);
            let batch = farm.stats().since(&before);
            eprintln!(
                "[farm] {} (store {})",
                batch.summary(),
                farm.dir().display()
            );
            return reports;
        }
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..jobs.len()).collect());
        let results: Mutex<Vec<Option<RunReport>>> = Mutex::new(vec![None; jobs.len()]);
        let n_workers = self.jobs.min(jobs.len()).max(1);
        crossbeam::scope(|s| {
            for _ in 0..n_workers {
                s.spawn(|_| loop {
                    let Some(idx) = queue.lock().pop_front() else {
                        break;
                    };
                    let report = self.run_one(jobs[idx]);
                    results.lock()[idx] = Some(report);
                });
            }
        })
        .expect("worker panicked");
        results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("job completed"))
            .collect()
    }
}

// `RunReport` contains no interior mutability and Simulation is
// constructed per job, so sharing &Runner across the scope is safe by
// construction (everything is Sync).

/// Print a table and write `.txt` + `.csv` artefacts into the runner's
/// output directory.
pub fn emit(runner: &Runner, name: &str, table: &Table) {
    let text = table.to_text();
    println!("{text}");
    if let Err(e) = std::fs::create_dir_all(&runner.out_dir) {
        eprintln!("warning: cannot create {}: {e}", runner.out_dir.display());
        return;
    }
    let txt_path = runner.out_dir.join(format!("{name}.txt"));
    let csv_path = runner.out_dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&txt_path, &text) {
        eprintln!("warning: cannot write {}: {e}", txt_path.display());
    }
    if let Err(e) = std::fs::write(&csv_path, table.to_csv()) {
        eprintln!("warning: cannot write {}: {e}", csv_path.display());
    }
    println!("[wrote {} and {}]", txt_path.display(), csv_path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_runner() -> Runner {
        Runner {
            scale: Scale::Test,
            jobs: 4,
            out_dir: std::env::temp_dir().join("ptb-figtest"),
            farm: None,
        }
    }

    fn farmed_runner(tag: &str) -> (Runner, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("ptb-runner-farm-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let runner = Runner {
            farm: Some(Farm::open(&dir).expect("open farm")),
            ..test_runner()
        };
        (runner, dir)
    }

    #[test]
    fn parallel_results_match_serial() {
        let r = test_runner();
        let jobs = vec![
            Job::new(Benchmark::Fft, MechanismKind::None, 2),
            Job::new(Benchmark::Radix, MechanismKind::None, 2),
            Job::new(Benchmark::Fft, MechanismKind::Dvfs, 2),
        ];
        let parallel = r.run_all(&jobs);
        for (job, rep) in jobs.iter().zip(&parallel) {
            let serial = r.run_one(*job);
            assert_eq!(serial.cycles, rep.cycles, "{:?}", job);
            assert_eq!(serial.energy_tokens, rep.energy_tokens);
        }
    }

    #[test]
    fn farmed_runner_matches_uncached_and_hits_on_rerun() {
        let (r, dir) = farmed_runner("rerun");
        let jobs = vec![
            Job::new(Benchmark::Fft, MechanismKind::None, 2),
            Job::new(Benchmark::Fft, MechanismKind::Dvfs, 2),
        ];
        let cold = r.run_all(&jobs);
        let uncached = test_runner();
        for (job, rep) in jobs.iter().zip(&cold) {
            let direct = uncached.run_one(*job);
            assert_eq!(direct.cycles, rep.cycles, "{job:?}");
        }
        let warm = r.run_all(&jobs);
        let stats = r.farm.as_ref().unwrap().stats();
        assert_eq!(stats.misses, 2, "cold run simulated");
        assert_eq!(stats.hits, 2, "warm run served from store");
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.cycles, w.cycles);
            assert_eq!(c.energy_tokens, w.energy_tokens);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scale_parsing_warns_instead_of_silently_defaulting() {
        assert_eq!(parse_scale(None), Ok(Scale::Small));
        assert_eq!(parse_scale(Some("test")), Ok(Scale::Test));
        assert_eq!(parse_scale(Some("large")), Ok(Scale::Large));
        let err = parse_scale(Some("meduim")).unwrap_err();
        assert!(err.contains("meduim"), "{err}");
    }

    #[test]
    fn jobs_parsing_rejects_zero_and_flags_garbage() {
        assert_eq!(parse_jobs(None), Ok(None));
        assert_eq!(parse_jobs(Some("8")), Ok(Some(8)));
        assert_eq!(parse_jobs(Some("0")), Err(None), "zero is rejected");
        match parse_jobs(Some("many")) {
            Err(Some(w)) => assert!(w.contains("many"), "{w}"),
            other => panic!("expected warning, got {other:?}"),
        }
    }

    #[test]
    fn emit_writes_artifacts() {
        let r = test_runner();
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        emit(&r, "unit_test_table", &t);
        assert!(r.out_dir.join("unit_test_table.txt").exists());
        assert!(r.out_dir.join("unit_test_table.csv").exists());
    }
}
