//! Parallel sweep execution and artefact emission.
//!
//! Sweeps route through the `ptb-farm` content-addressed result store
//! by default: previously simulated points load from disk, misses run
//! in parallel on the farm's work-stealing executor, and every batch
//! prints a one-line `[farm]` hit/miss summary to stderr. Set
//! `PTB_NO_CACHE=1` (or pass `--no-cache`) for the uncached in-process
//! thread pool.

use parking_lot::Mutex;
use ptb_core::{MechanismKind, RunReport, SimConfig, Simulation};
use ptb_farm::{exec, ExecConfig, Farm, FarmJob, JobError, Quarantine};
use ptb_metrics::Table;
use ptb_workloads::{Benchmark, Scale};
use std::collections::{HashSet, VecDeque};
use std::path::PathBuf;
use std::time::Duration;

/// One simulation to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Benchmark.
    pub bench: Benchmark,
    /// Mechanism.
    pub mech: MechanismKind,
    /// Core count.
    pub n_cores: usize,
    /// Capture a power trace?
    pub trace: bool,
}

impl Job {
    /// A plain job with no trace.
    pub fn new(bench: Benchmark, mech: MechanismKind, n_cores: usize) -> Self {
        Job {
            bench,
            mech,
            n_cores,
            trace: false,
        }
    }
}

/// Thread-parallel simulation sweep runner.
pub struct Runner {
    /// Workload scale.
    pub scale: Scale,
    /// Worker threads.
    pub jobs: usize,
    /// Artefact output directory.
    pub out_dir: PathBuf,
    /// Result farm (content-addressed cache + journal); `None` runs
    /// every simulation in-process without persistence.
    pub farm: Option<Farm>,
    /// Degraded-completion contract for [`Runner::sweep`]: `true`
    /// (`--keep-going`) quarantines failed jobs and emits partial
    /// artefacts; `false` (`--fail-fast`, the default) quarantines and
    /// exits nonzero at the first failed batch.
    pub keep_going: bool,
    /// Per-job wall-clock watchdog for [`Runner::sweep`]; a job that
    /// exceeds it is reported as timed out rather than hanging the
    /// sweep. `None` disables.
    pub job_timeout: Option<Duration>,
}

/// Parse a `PTB_SCALE` value. `Err` carries a warning for unparsable
/// input (the caller decides where to print it).
fn parse_scale(raw: Option<&str>) -> Result<Scale, String> {
    match raw {
        None => Ok(Scale::Small),
        Some("test") => Ok(Scale::Test),
        Some("small") => Ok(Scale::Small),
        Some("large") => Ok(Scale::Large),
        Some(other) => Err(format!(
            "unparsable PTB_SCALE={other:?} (expected test|small|large); using small"
        )),
    }
}

/// Parse a `PTB_JOBS` value against a fallback. `Err(None)` means the
/// value was rejected outright (zero); `Err(Some(_))` carries a warning
/// and the caller should fall back.
fn parse_jobs(raw: Option<&str>) -> Result<Option<usize>, Option<String>> {
    match raw {
        None => Ok(None),
        Some(s) => match s.parse::<usize>() {
            Ok(0) => Err(None),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(Some(format!(
                "unparsable PTB_JOBS={s:?}; using available parallelism"
            ))),
        },
    }
}

impl Runner {
    /// Configure from the environment (see crate docs).
    ///
    /// `PTB_JOBS=0` is rejected (process exit 2); unparsable
    /// `PTB_SCALE`/`PTB_JOBS` values warn on stderr and fall back to
    /// their defaults instead of being silently ignored.
    pub fn from_env() -> Self {
        let scale_var = std::env::var("PTB_SCALE").ok();
        let scale = parse_scale(scale_var.as_deref()).unwrap_or_else(|warning| {
            eprintln!("warning: {warning}");
            Scale::Small
        });
        let default_jobs = || {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        };
        let jobs_var = std::env::var("PTB_JOBS").ok();
        let jobs = match parse_jobs(jobs_var.as_deref()) {
            Ok(Some(n)) => n,
            Ok(None) => default_jobs(),
            Err(None) => {
                eprintln!("error: PTB_JOBS must be at least 1, got 0");
                std::process::exit(2);
            }
            Err(Some(warning)) => {
                eprintln!("warning: {warning}");
                default_jobs()
            }
        };
        let out_dir = std::env::var("PTB_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/figures"));
        let keep_going = std::env::var("PTB_KEEP_GOING")
            .map(|v| v != "0")
            .unwrap_or(false);
        let job_timeout = std::env::var("PTB_JOB_TIMEOUT")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .map(Duration::from_secs_f64);
        Runner {
            scale,
            jobs,
            out_dir,
            farm: Farm::from_env(),
            keep_going,
            job_timeout,
        }
    }

    /// [`Runner::from_env`] plus the shared farm CLI flags, stripped
    /// from `argv` (both `--flag value` and `--flag=value` forms) so
    /// each binary's positional parsing runs on what remains:
    ///
    /// * `--no-cache` — bypass the farm entirely (like `PTB_NO_CACHE`);
    /// * `--farm-dir PATH` — store location (overrides `PTB_FARM_DIR`);
    /// * `--keep-going` / `--fail-fast` — quarantine failed jobs and
    ///   emit partial artefacts vs. exit nonzero on the first failed
    ///   batch (the default; overrides `PTB_KEEP_GOING`);
    /// * `--job-timeout SECS` — per-job wall-clock watchdog (overrides
    ///   `PTB_JOB_TIMEOUT`).
    pub fn from_env_args(argv: &mut Vec<String>) -> Self {
        let mut no_cache = false;
        let mut farm_dir: Option<PathBuf> = None;
        let mut keep_going: Option<bool> = None;
        let mut job_timeout: Option<Duration> = None;
        let mut i = 0;
        while i < argv.len() {
            let (flag, inline) = match argv[i].split_once('=') {
                Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
                None => (argv[i].clone(), None),
            };
            let take_value = |argv: &mut Vec<String>, i: usize| {
                inline.clone().unwrap_or_else(|| {
                    if i < argv.len() {
                        argv.remove(i)
                    } else {
                        eprintln!("error: {flag} requires a value");
                        std::process::exit(2);
                    }
                })
            };
            match flag.as_str() {
                "--no-cache" => {
                    argv.remove(i);
                    no_cache = true;
                }
                "--keep-going" => {
                    argv.remove(i);
                    keep_going = Some(true);
                }
                "--fail-fast" => {
                    argv.remove(i);
                    keep_going = Some(false);
                }
                "--farm-dir" => {
                    argv.remove(i);
                    farm_dir = Some(PathBuf::from(take_value(argv, i)));
                }
                "--job-timeout" => {
                    argv.remove(i);
                    let raw = take_value(argv, i);
                    match raw.parse::<f64>() {
                        Ok(s) if s > 0.0 => job_timeout = Some(Duration::from_secs_f64(s)),
                        _ => {
                            eprintln!("error: --job-timeout requires a positive number of seconds");
                            std::process::exit(2);
                        }
                    }
                }
                _ => i += 1,
            }
        }
        let mut runner = Runner::from_env();
        if let Some(kg) = keep_going {
            runner.keep_going = kg;
        }
        if job_timeout.is_some() {
            runner.job_timeout = job_timeout;
        }
        if no_cache {
            runner.farm = None;
        } else if let Some(dir) = farm_dir {
            match Farm::open(&dir) {
                Ok(farm) => runner.farm = Some(farm),
                Err(e) => {
                    eprintln!(
                        "warning: cannot open farm store {}: {e}; running uncached",
                        dir.display()
                    );
                    runner.farm = None;
                }
            }
        }
        runner
    }

    /// Core count for single-core-count figures (paper: 16), overridable
    /// with `PTB_CORES`.
    pub fn default_cores(&self) -> usize {
        std::env::var("PTB_CORES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(16)
    }

    fn config(&self, job: &Job) -> SimConfig {
        SimConfig {
            n_cores: job.n_cores,
            scale: self.scale,
            mechanism: job.mech,
            capture_trace: job.trace,
            ..SimConfig::default()
        }
    }

    fn farm_job(&self, job: &Job) -> FarmJob {
        FarmJob::new(job.bench, self.config(job))
    }

    /// Run one job synchronously (served from the farm when possible).
    pub fn run_one(&self, job: Job) -> RunReport {
        if let Some(farm) = &self.farm {
            return farm
                .run_batch(std::slice::from_ref(&self.farm_job(&job)), 1)
                .pop()
                .expect("one job in, one report out");
        }
        self.run_one_observed(job, &mut ptb_obs::NullObserver)
    }

    /// Run one job synchronously, streaming simulation events to `obs`
    /// (see [`ptb_obs::SimObserver`]).
    ///
    /// Observed runs always simulate live — they neither read nor write
    /// the farm store, so a cached result can never short-circuit the
    /// event stream the observer was attached for.
    pub fn run_one_observed<O: ptb_obs::SimObserver>(&self, job: Job, obs: &mut O) -> RunReport {
        Simulation::new(self.config(&job))
            .run_observed(job.bench, obs)
            .unwrap_or_else(|e| {
                panic!(
                    "{} / {} / {} cores failed: {e}",
                    job.bench,
                    job.mech.label(),
                    job.n_cores
                )
            })
    }

    /// Run all jobs across worker threads; results come back in job order.
    ///
    /// With a farm attached, the batch is deduplicated, cache hits load
    /// from the store, and only misses simulate (on the farm's
    /// work-stealing executor); the batch outcome is summarised on
    /// stderr. Without one, every job simulates in-process.
    pub fn run_all(&self, jobs: &[Job]) -> Vec<RunReport> {
        if jobs.is_empty() {
            return Vec::new();
        }
        if let Some(farm) = &self.farm {
            let fjobs: Vec<FarmJob> = jobs.iter().map(|j| self.farm_job(j)).collect();
            let before = farm.stats();
            let reports = farm.run_batch(&fjobs, self.jobs);
            let batch = farm.stats().since(&before);
            eprintln!(
                "[farm] {} (store {})",
                batch.summary(),
                farm.dir().display()
            );
            return reports;
        }
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..jobs.len()).collect());
        let results: Mutex<Vec<Option<RunReport>>> = Mutex::new(vec![None; jobs.len()]);
        let n_workers = self.jobs.min(jobs.len()).max(1);
        crossbeam::scope(|s| {
            for _ in 0..n_workers {
                s.spawn(|_| loop {
                    let Some(idx) = queue.lock().pop_front() else {
                        break;
                    };
                    let report = self.run_one(jobs[idx]);
                    results.lock()[idx] = Some(report);
                });
            }
        })
        .expect("worker panicked");
        results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("job completed"))
            .collect()
    }

    /// Executor policy for failure-isolating sweeps.
    fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            watchdog: self.job_timeout,
            ..ExecConfig::new(self.jobs)
        }
    }

    /// Run all jobs with per-job failure isolation — the degraded-
    /// completion path behind every figure binary.
    ///
    /// Each job runs inside `catch_unwind` with bounded retry for
    /// transient faults and the runner's wall-clock watchdog; a failed
    /// job occupies its slot as `None` instead of aborting the sweep.
    /// Every failure is appended to the quarantine manifest
    /// (`failed.jsonl` in the farm directory, or the output directory
    /// when running uncached) as a replayable job for `farm_ctl resume`
    /// and `sim_check --replay`. In fail-fast mode (the default) the
    /// process then exits with status 1; with `--keep-going` the
    /// partial [`Sweep`] is returned so callers can emit partial
    /// artefacts with a footer naming the dropped points.
    pub fn sweep(&self, jobs: &[Job]) -> Sweep {
        if jobs.is_empty() {
            return Sweep::default();
        }
        let outcomes: Vec<Result<RunReport, JobError>> = if let Some(farm) = &self.farm {
            let fjobs: Vec<FarmJob> = jobs.iter().map(|j| self.farm_job(j)).collect();
            let before = farm.stats();
            let outcomes = farm.try_run_batch(&fjobs, &self.exec_config());
            let batch = farm.stats().since(&before);
            eprintln!(
                "[farm] {} (store {})",
                batch.summary(),
                farm.dir().display()
            );
            outcomes
        } else {
            exec::run_work_stealing(jobs.to_vec(), &self.exec_config(), |job, ctx| {
                self.farm_job(job).try_simulate(ctx.deadline)
            })
        };

        let mut reports = Vec::with_capacity(jobs.len());
        let mut failures: Vec<(Job, JobError)> = Vec::new();
        for (job, outcome) in jobs.iter().zip(outcomes) {
            match outcome {
                Ok(r) => reports.push(Some(r)),
                Err(e) => {
                    reports.push(None);
                    failures.push((*job, e));
                }
            }
        }
        if !failures.is_empty() {
            self.quarantine_failures(&failures);
            if !self.keep_going {
                eprintln!(
                    "error: {} job(s) failed and --keep-going is not set; \
                     rerun with --keep-going for partial artefacts, or replay \
                     the quarantine manifest with `sim_check --replay`",
                    failures.len()
                );
                std::process::exit(1);
            }
        }
        Sweep { reports, failures }
    }

    /// Append each unique failed job to the quarantine manifest and
    /// report where it went. Duplicated jobs (same content key) are
    /// quarantined once.
    fn quarantine_failures(&self, failures: &[(Job, JobError)]) {
        let quarantine = match &self.farm {
            Some(farm) => farm.quarantine(),
            None => Quarantine::in_dir(&self.out_dir),
        };
        let mut seen = HashSet::new();
        for (job, err) in failures {
            let fjob = self.farm_job(job);
            eprintln!("[sweep] FAILED {}: {err}", fjob.label());
            if !seen.insert(fjob.key()) {
                continue;
            }
            let res = match &self.farm {
                Some(farm) => farm.quarantine_job(&fjob, err),
                None => quarantine.record(&ptb_farm::QuarantineEntry::new(&fjob, err)),
            };
            if let Err(e) = res {
                eprintln!("warning: cannot quarantine {}: {e}", fjob.label());
            }
        }
        eprintln!(
            "[sweep] {} failed job(s) quarantined to {}",
            failures.len(),
            quarantine.path().display()
        );
    }
}

/// Outcome of a failure-isolating [`Runner::sweep`]: one slot per job
/// (in job order), with failed jobs' slots empty and their errors
/// collected separately.
#[derive(Default)]
pub struct Sweep {
    /// One entry per submitted job; `None` marks a failed job.
    pub reports: Vec<Option<RunReport>>,
    /// The failed jobs and why, in job order.
    pub failures: Vec<(Job, JobError)>,
}

impl Sweep {
    /// The report for job slot `idx`, if it succeeded.
    pub fn get(&self, idx: usize) -> Option<&RunReport> {
        self.reports.get(idx).and_then(|r| r.as_ref())
    }

    /// True when every job produced a report.
    pub fn complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Unwrap into plain reports, panicking if any job failed. The
    /// bridge for callers that have already established completeness.
    pub fn expect_complete(self) -> Vec<RunReport> {
        self.reports
            .into_iter()
            .map(|r| r.expect("sweep incomplete: a job failed"))
            .collect()
    }

    /// The `len` consecutive reports starting at slot `start`, if every
    /// one of them succeeded — the "complete rows only" policy: a figure
    /// row whose baseline or any mechanism point failed is skipped
    /// entirely rather than plotted against a partial denominator.
    pub fn row(&self, start: usize, len: usize) -> Option<Vec<&RunReport>> {
        (start..start + len).map(|i| self.get(i)).collect()
    }

    /// Labels of the failed jobs (for partial-artefact footers).
    pub fn dropped_labels(&self) -> Vec<String> {
        self.failures
            .iter()
            .map(|(job, _)| format!("{}/{}/{}c", job.bench, job.mech.label(), job.n_cores))
            .collect()
    }
}

// `RunReport` contains no interior mutability and Simulation is
// constructed per job, so sharing &Runner across the scope is safe by
// construction (everything is Sync).

/// Print a table and write `.txt` + `.csv` artefacts into the runner's
/// output directory.
pub fn emit(runner: &Runner, name: &str, table: &Table) {
    emit_partial(runner, name, table, &[]);
}

/// [`emit`], with the artefact marked as partial: each dropped point in
/// `dropped` is named in a `# dropped: <label>` footer line of both
/// files, so a consumer of a `--keep-going` run can tell a complete
/// artefact from a degraded one without diffing against the full grid.
pub fn emit_partial(runner: &Runner, name: &str, table: &Table, dropped: &[String]) {
    let footer: String = dropped
        .iter()
        .map(|label| format!("# dropped: {label}\n"))
        .collect();
    let mut text = table.to_text();
    if !footer.is_empty() {
        text.push('\n');
        text.push_str(&footer);
    }
    println!("{text}");
    if let Err(e) = std::fs::create_dir_all(&runner.out_dir) {
        eprintln!("warning: cannot create {}: {e}", runner.out_dir.display());
        return;
    }
    let txt_path = runner.out_dir.join(format!("{name}.txt"));
    let csv_path = runner.out_dir.join(format!("{name}.csv"));
    let mut csv = table.to_csv();
    csv.push_str(&footer);
    if let Err(e) = std::fs::write(&txt_path, &text) {
        eprintln!("warning: cannot write {}: {e}", txt_path.display());
    }
    if let Err(e) = std::fs::write(&csv_path, csv) {
        eprintln!("warning: cannot write {}: {e}", csv_path.display());
    }
    println!("[wrote {} and {}]", txt_path.display(), csv_path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_runner() -> Runner {
        Runner {
            scale: Scale::Test,
            jobs: 4,
            out_dir: std::env::temp_dir().join("ptb-figtest"),
            farm: None,
            keep_going: false,
            job_timeout: None,
        }
    }

    fn farmed_runner(tag: &str) -> (Runner, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("ptb-runner-farm-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let runner = Runner {
            farm: Some(Farm::open(&dir).expect("open farm")),
            ..test_runner()
        };
        (runner, dir)
    }

    #[test]
    fn parallel_results_match_serial() {
        let r = test_runner();
        let jobs = vec![
            Job::new(Benchmark::Fft, MechanismKind::None, 2),
            Job::new(Benchmark::Radix, MechanismKind::None, 2),
            Job::new(Benchmark::Fft, MechanismKind::Dvfs, 2),
        ];
        let parallel = r.run_all(&jobs);
        for (job, rep) in jobs.iter().zip(&parallel) {
            let serial = r.run_one(*job);
            assert_eq!(serial.cycles, rep.cycles, "{:?}", job);
            assert_eq!(serial.energy_tokens, rep.energy_tokens);
        }
    }

    #[test]
    fn farmed_runner_matches_uncached_and_hits_on_rerun() {
        let (r, dir) = farmed_runner("rerun");
        let jobs = vec![
            Job::new(Benchmark::Fft, MechanismKind::None, 2),
            Job::new(Benchmark::Fft, MechanismKind::Dvfs, 2),
        ];
        let cold = r.run_all(&jobs);
        let uncached = test_runner();
        for (job, rep) in jobs.iter().zip(&cold) {
            let direct = uncached.run_one(*job);
            assert_eq!(direct.cycles, rep.cycles, "{job:?}");
        }
        let warm = r.run_all(&jobs);
        let stats = r.farm.as_ref().unwrap().stats();
        assert_eq!(stats.misses, 2, "cold run simulated");
        assert_eq!(stats.hits, 2, "warm run served from store");
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.cycles, w.cycles);
            assert_eq!(c.energy_tokens, w.energy_tokens);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scale_parsing_warns_instead_of_silently_defaulting() {
        assert_eq!(parse_scale(None), Ok(Scale::Small));
        assert_eq!(parse_scale(Some("test")), Ok(Scale::Test));
        assert_eq!(parse_scale(Some("large")), Ok(Scale::Large));
        let err = parse_scale(Some("meduim")).unwrap_err();
        assert!(err.contains("meduim"), "{err}");
    }

    #[test]
    fn jobs_parsing_rejects_zero_and_flags_garbage() {
        assert_eq!(parse_jobs(None), Ok(None));
        assert_eq!(parse_jobs(Some("8")), Ok(Some(8)));
        assert_eq!(parse_jobs(Some("0")), Err(None), "zero is rejected");
        match parse_jobs(Some("many")) {
            Err(Some(w)) => assert!(w.contains("many"), "{w}"),
            other => panic!("expected warning, got {other:?}"),
        }
    }

    #[test]
    fn sweep_matches_run_all_when_healthy() {
        let r = test_runner();
        let jobs = vec![
            Job::new(Benchmark::Fft, MechanismKind::None, 2),
            Job::new(Benchmark::Radix, MechanismKind::None, 2),
        ];
        let all = r.run_all(&jobs);
        let swept = r.sweep(&jobs);
        assert!(swept.complete());
        let swept = swept.expect_complete();
        for (a, b) in all.iter().zip(&swept) {
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.energy_tokens, b.energy_tokens);
        }
    }

    #[test]
    fn farmed_sweep_quarantines_and_keeps_going() {
        let (mut r, dir) = farmed_runner("sweep-quarantine");
        r.keep_going = true;
        // A livelock-bound synthetic cannot be built from the figure
        // grid (all benchmarks terminate), so exercise the quarantine
        // path through the farm layer directly with a poisoned config:
        // zero max_cycles makes the simulation error deterministically.
        let farm = r.farm.as_ref().unwrap();
        let bad = FarmJob::new(
            Benchmark::Fft,
            SimConfig {
                n_cores: 2,
                scale: Scale::Test,
                max_cycles: 1,
                ..SimConfig::default()
            },
        );
        let good = FarmJob::new(
            Benchmark::Radix,
            SimConfig {
                n_cores: 2,
                scale: Scale::Test,
                ..SimConfig::default()
            },
        );
        let outcomes = farm.try_run_batch(&[bad.clone(), good.clone()], &ExecConfig::new(2));
        assert!(outcomes[0].is_err(), "truncated run must fail");
        assert!(outcomes[1].is_ok(), "healthy job unaffected");
        let (job, err) = (&bad, outcomes[0].as_ref().unwrap_err());
        farm.quarantine_job(job, err).unwrap();
        let q = farm.quarantine();
        let entries = q.load().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].job.config.max_cycles, 1, "replayable config");
        assert_eq!(farm.stats().quarantined, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn emit_partial_footers_name_dropped_points() {
        let r = test_runner();
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        emit_partial(&r, "unit_test_partial", &t, &["fft/ptb/8c".into()]);
        let csv = std::fs::read_to_string(r.out_dir.join("unit_test_partial.csv")).unwrap();
        assert!(csv.ends_with("# dropped: fft/ptb/8c\n"), "{csv}");
        let txt = std::fs::read_to_string(r.out_dir.join("unit_test_partial.txt")).unwrap();
        assert!(txt.contains("# dropped: fft/ptb/8c"), "{txt}");
    }

    #[test]
    fn emit_writes_artifacts() {
        let r = test_runner();
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        emit(&r, "unit_test_table", &t);
        assert!(r.out_dir.join("unit_test_table.txt").exists());
        assert!(r.out_dir.join("unit_test_table.csv").exists());
    }
}
