//! **Figure 5** — Per-cycle CMP power against the global budget (the
//! motivation plot: even when the chip is over budget, individual cores
//! sit under their local share, so a global mechanism can rebalance).
//!
//! Prints a window of the trace as (cycle, chip power, per-core power,
//! budget) rows; the CSV holds the full captured window. Accepts the
//! shared observability flags (`--trace-out`, `--metrics-out`,
//! `--profile`, `--audit` — see `ptb_experiments::obs`).

use ptb_core::{MechanismKind, SimConfig, Simulation};
use ptb_experiments::{emit, ObsArgs, Runner};
use ptb_metrics::{Histogram, Table};
use ptb_workloads::Benchmark;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let n = 4; // small CMP so per-core curves are readable, as in Fig. 5
    let cfg = SimConfig {
        n_cores: n,
        scale: runner.scale,
        mechanism: MechanismKind::None,
        capture_trace: true,
        ..SimConfig::default()
    };
    let report = if obs.enabled() {
        let mut stack = obs.stack();
        let mut r = Simulation::new(cfg)
            .run_observed(Benchmark::Barnes, &mut stack)
            .expect("run");
        stack.merge_extra_metrics(&mut r.extra_metrics);
        obs.finish(&stack);
        r
    } else {
        Simulation::new(cfg).run(Benchmark::Barnes).expect("run")
    };
    let trace = report.trace.as_ref().expect("trace captured");

    let mut headers: Vec<String> = vec!["cycle".into(), "chip".into(), "budget".into()];
    headers.extend((0..n).map(|c| format!("core{c}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!(
            "Figure 5: per-cycle power (tokens/cycle) vs global budget ({:.0}), {}-core barnes",
            report.budget.global, n
        ),
        &header_refs,
    );
    // Sample a mid-run window, decimated for the text table.
    let start = trace.len() / 2;
    let end = (start + 4000).min(trace.len());
    for i in (start..end).step_by(50) {
        let mut row = vec![
            i.to_string(),
            format!("{:.0}", trace.chip[i]),
            format!("{:.0}", report.budget.global),
        ];
        for c in 0..n {
            row.push(format!("{:.0}", trace.per_core[c][i]));
        }
        table.row(row);
    }
    emit(&runner, "fig05_power_trace", &table);

    // Headline check: of the cycles where the chip is over budget, how
    // many have a donor (a core under its local share)? This is PTB's
    // opportunity window.
    let mut over_cycles = 0usize;
    let mut opportunity = 0usize;
    for i in 0..trace.len() {
        if f64::from(trace.chip[i]) > report.budget.global {
            over_cycles += 1;
            if (0..n).any(|c| f64::from(trace.per_core[c][i]) < report.budget.local) {
                opportunity += 1;
            }
        }
    }
    println!(
        "over-budget cycles with a donor available: {} / {} ({:.1}%)",
        opportunity,
        over_cycles.max(1),
        100.0 * opportunity as f64 / over_cycles.max(1) as f64
    );

    // Chip power distribution relative to the budget.
    let mut hist = Histogram::new(0.0, report.budget.peak_chip, 64);
    for &p in &trace.chip {
        hist.record(f64::from(p));
    }
    println!(
        "chip power: mean {:.0}, p50 {:.0}, p90 {:.0}, p99 {:.0} tokens/cycle; {:.1}% of cycles over the {:.0}-token budget",
        hist.mean(),
        hist.quantile(0.5),
        hist.quantile(0.9),
        hist.quantile(0.99),
        hist.frac_at_least(report.budget.global) * 100.0,
        report.budget.global,
    );
}
