//! **§IV.D worked example** — how many cores fit in a 100 W TDP given each
//! mechanism's budget-matching error (normalized AoPB).
//!
//! Paper numbers: DVFS (65 % error) → 19 cores; 2-level (40 %) → 22;
//! PTB (<10 %) → 29; ideal → 32.

use ptb_experiments::{emit, ObsArgs, Runner};
use ptb_metrics::{cores_within_tdp, Table};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    if obs.enabled() {
        eprintln!("warning: observability flags ignored: tdp_packing does not simulate");
    }
    let runner = Runner::from_env_args(&mut args);
    let tdp = 100.0;
    let per_core_budget = 3.125; // 100W/16 cores at a 50% budget
    let mut t = Table::new(
        "TDP packing (§IV.D): cores fitting a 100W TDP at a 50% per-core budget",
        &[
            "mechanism",
            "AoPB error %",
            "W/core actual",
            "cores in 100W",
        ],
    );
    for (name, err) in [
        ("ideal", 0.0),
        ("PTB+2level", 0.10),
        ("2level", 0.40),
        ("DVFS", 0.65),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.0}", err * 100.0),
            format!("{:.3}", per_core_budget * (1.0 + err)),
            cores_within_tdp(tdp, per_core_budget, err).to_string(),
        ]);
    }
    emit(&runner, "tdp_packing", &t);
}
