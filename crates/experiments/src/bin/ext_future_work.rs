//! **Extensions** — the paper's future-work and scalability proposals,
//! implemented and measured:
//!
//! 1. *Spin gating* (§IV.C closing remark): use PTB's token meter as a
//!    spin detector and park detected spinners on a deep throttle.
//! 2. *Clustered balancers* (§III.E.2): replicate the balancer per group
//!    of 16 cores to scale past the paper's 16-core evaluations.
//! 3. *Temperature stability* (conclusions): the lumped-RC thermal model's
//!    view of each mechanism.

use ptb_core::report::{normalized_aopb_pct, normalized_energy_pct, slowdown_pct};
use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
use ptb_experiments::{emit, emit_partial, Job, ObsArgs, Runner};
use ptb_metrics::{mean, Table};
use ptb_workloads::Benchmark;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let n = runner.default_cores();

    // ---- 1. Spin gating on the contended benchmarks -------------------
    let contended = [
        Benchmark::Unstructured,
        Benchmark::Fluidanimate,
        Benchmark::Waternsq,
        Benchmark::Barnes,
    ];
    let mut jobs = Vec::new();
    for bench in contended {
        jobs.push(Job::new(bench, MechanismKind::None, n));
        jobs.push(Job::new(
            bench,
            MechanismKind::PtbTwoLevel {
                policy: PtbPolicy::Dynamic,
                relax: 0.0,
            },
            n,
        ));
        jobs.push(Job::new(
            bench,
            MechanismKind::PtbSpinGate {
                policy: PtbPolicy::Dynamic,
                relax: 0.0,
            },
            n,
        ));
    }
    let sweep = obs.run_sweep(&runner, &jobs);
    let mut gate = Table::new(
        format!("Extension: PTB spin gating ({n}-core, contended benchmarks)"),
        &[
            "bench",
            "PTB energy%",
            "gate energy%",
            "PTB AoPB%",
            "gate AoPB%",
            "gate slowdown%",
        ],
    );
    let mut cols = vec![Vec::new(); 5];
    for (bi, bench) in contended.iter().enumerate() {
        // Complete rows only: every column shares the bench's baseline.
        let Some(row) = sweep.row(bi * 3, 3) else {
            continue;
        };
        let (base, ptb, g) = (row[0], row[1], row[2]);
        let vals = [
            normalized_energy_pct(base, ptb),
            normalized_energy_pct(base, g),
            normalized_aopb_pct(base, ptb),
            normalized_aopb_pct(base, g),
            slowdown_pct(base, g),
        ];
        for (c, v) in cols.iter_mut().zip(vals) {
            c.push(v);
        }
        gate.row_f(bench.name(), &vals, 1);
    }
    gate.row_f("Avg.", &cols.iter().map(|c| mean(c)).collect::<Vec<_>>(), 1);
    emit_partial(&runner, "ext_spin_gate", &gate, &sweep.dropped_labels());

    // ---- 2. Clustered balancer at 32 cores ----------------------------
    let bench = Benchmark::Watersp;
    let mut cluster_table = Table::new(
        "Extension: clustered balancers on a 32-core CMP (watersp)",
        &["config", "energy%", "AoPB%", "slowdown%"],
    );
    let run32 = |cluster: Option<usize>, mech: MechanismKind| {
        let mut cfg = SimConfig {
            n_cores: 32,
            scale: runner.scale,
            mechanism: mech,
            ..SimConfig::default()
        };
        cfg.ptb.cluster_size = cluster;
        Simulation::new(cfg).run(bench).expect("32-core run")
    };
    let base32 = run32(None, MechanismKind::None);
    for (label, cluster) in [
        ("monolithic (14-cyc wires)", None),
        ("2 x 16-core clusters", Some(16)),
        ("4 x 8-core clusters", Some(8)),
    ] {
        let r = run32(
            cluster,
            MechanismKind::PtbTwoLevel {
                policy: PtbPolicy::ToAll,
                relax: 0.0,
            },
        );
        cluster_table.row_f(
            label,
            &[
                normalized_energy_pct(&base32, &r),
                normalized_aopb_pct(&base32, &r),
                slowdown_pct(&base32, &r),
            ],
            1,
        );
    }
    emit(&runner, "ext_cluster32", &cluster_table);

    // ---- 3. Temperature stability --------------------------------------
    let mut temp = Table::new(
        format!("Extension: temperature under each mechanism ({n}-core barnes, lumped-RC model)"),
        &["mechanism", "mean degC", "max degC", "stddev degC"],
    );
    for mech in [
        MechanismKind::None,
        MechanismKind::Dvfs,
        MechanismKind::TwoLevel,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::Dynamic,
            relax: 0.0,
        },
    ] {
        let r = runner.run_one(Job::new(Benchmark::Barnes, mech, n));
        temp.row_f(
            &r.mechanism.clone(),
            &[r.mean_temp_c, r.max_temp_c, r.temp_stddev_c],
            2,
        );
    }
    emit(&runner, "ext_temperature", &temp);
}
