//! **Figure 9** — Normalized energy (left) and AoPB (right) averaged over
//! all benchmarks, for 2/4/8/16 cores and both PTB distribution policies
//! (ToOne, ToAll), comparing DVFS, DFS, 2-level and PTB+2-level.
//!
//! Expected shape (paper): PTB+2level pulls the average AoPB down to
//! ≈ 8–10 % at 16 cores (vs ≥ 65 % for DVFS/DFS) at ≈ +3 % energy, and
//! accuracy improves with core count (more donors available).

use ptb_core::report::{normalized_aopb_pct, normalized_energy_pct};
use ptb_core::{MechanismKind, PtbPolicy};
use ptb_experiments::{emit_partial, Job, ObsArgs, Runner};
use ptb_metrics::{mean, Table};
use ptb_workloads::Benchmark;

const CORE_COUNTS: [usize; 4] = [2, 4, 8, 16];

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let mechs = |policy: PtbPolicy| {
        [
            MechanismKind::Dvfs,
            MechanismKind::Dfs,
            MechanismKind::TwoLevel,
            MechanismKind::PtbTwoLevel { policy, relax: 0.0 },
        ]
    };

    // Jobs: per policy page, per core count, per benchmark, baseline + 4
    // mechanisms. Baselines and non-PTB mechanisms are shared between the
    // two pages; dedup via a simple cache keyed by (bench, mech, cores).
    let mut jobs: Vec<Job> = Vec::new();
    let push = |j: Job, jobs: &mut Vec<Job>| {
        if !jobs.contains(&j) {
            jobs.push(j);
        }
    };
    for policy in [PtbPolicy::ToOne, PtbPolicy::ToAll] {
        for n in CORE_COUNTS {
            for bench in Benchmark::ALL {
                push(Job::new(bench, MechanismKind::None, n), &mut jobs);
                for m in mechs(policy) {
                    push(Job::new(bench, m, n), &mut jobs);
                }
            }
        }
    }
    let sweep = obs.run_sweep(&runner, &jobs);
    let find = |bench: Benchmark, mech: MechanismKind, n: usize| -> Option<&ptb_core::RunReport> {
        let idx = jobs
            .iter()
            .position(|j| j.bench == bench && j.mech == mech && j.n_cores == n)
            .expect("job exists");
        sweep.get(idx)
    };

    let mut energy = Table::new(
        "Figure 9 (left): normalized energy delta %, averaged over benchmarks",
        &["config", "DVFS", "DFS", "2level", "PTB+2level"],
    );
    let mut aopb = Table::new(
        "Figure 9 (right): normalized AoPB %, averaged over benchmarks",
        &["config", "DVFS", "DFS", "2level", "PTB+2level"],
    );
    for policy in [PtbPolicy::ToOne, PtbPolicy::ToAll] {
        for n in CORE_COUNTS {
            let mut e_cols = Vec::new();
            let mut a_cols = Vec::new();
            for m in mechs(policy) {
                let mut es = Vec::new();
                let mut as_ = Vec::new();
                for bench in Benchmark::ALL {
                    // Averages are over the benchmarks whose baseline
                    // AND mechanism point both survived the sweep.
                    let (Some(base), Some(r)) =
                        (find(bench, MechanismKind::None, n), find(bench, m, n))
                    else {
                        continue;
                    };
                    es.push(normalized_energy_pct(base, r));
                    as_.push(normalized_aopb_pct(base, r));
                }
                e_cols.push(mean(&es));
                a_cols.push(mean(&as_));
            }
            let label = format!("{n}Core_{}", policy.label());
            energy.row_f(&label, &e_cols, 1);
            aopb.row_f(&label, &a_cols, 1);
        }
    }
    let dropped = sweep.dropped_labels();
    emit_partial(&runner, "fig09_energy", &energy, &dropped);
    emit_partial(&runner, "fig09_aopb", &aopb, &dropped);
}
