//! **Figure 14** — Trading accuracy for energy: the relaxed PTB variant
//! (§IV.C) delays triggering local power savings until consumption exceeds
//! the effective budget by +10/20/30 %, across 2–16 cores and both static
//! policies.
//!
//! Expected shape (paper): at 16 cores, relaxing to +20 % turns PTB's
//! ≈ +3 % energy cost into ≈ −4 % savings (matching DVFS) while AoPB stays
//! ≈ 20 % — still far better than DVFS's ≈ 65 %.

use ptb_core::report::{normalized_aopb_pct, normalized_energy_pct};
use ptb_core::{MechanismKind, PtbPolicy};
use ptb_experiments::{emit_partial, Job, ObsArgs, Runner};
use ptb_metrics::{mean, Table};
use ptb_workloads::Benchmark;

const CORE_COUNTS: [usize; 4] = [2, 4, 8, 16];
const RELAX: [f64; 3] = [0.0, 0.2, 0.3];

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let mut jobs: Vec<Job> = Vec::new();
    let push = |j: Job, jobs: &mut Vec<Job>| {
        if !jobs.contains(&j) {
            jobs.push(j);
        }
    };
    for n in CORE_COUNTS {
        for bench in Benchmark::ALL {
            push(Job::new(bench, MechanismKind::None, n), &mut jobs);
            push(Job::new(bench, MechanismKind::Dvfs, n), &mut jobs);
            for policy in [PtbPolicy::ToOne, PtbPolicy::ToAll] {
                for relax in RELAX {
                    push(
                        Job::new(bench, MechanismKind::PtbTwoLevel { policy, relax }, n),
                        &mut jobs,
                    );
                }
            }
        }
    }
    let sweep = obs.run_sweep(&runner, &jobs);
    let find = |bench: Benchmark, mech: MechanismKind, n: usize| -> Option<&ptb_core::RunReport> {
        let idx = jobs
            .iter()
            .position(|j| j.bench == bench && j.mech == mech && j.n_cores == n)
            .expect("job exists");
        sweep.get(idx)
    };

    let mut energy = Table::new(
        "Figure 14 (left): normalized energy delta % vs relaxation, averaged over benchmarks",
        &["config", "DVFS", "PTB+0%", "PTB+20%", "PTB+30%"],
    );
    let mut aopb = Table::new(
        "Figure 14 (right): normalized AoPB % vs relaxation, averaged over benchmarks",
        &["config", "DVFS", "PTB+0%", "PTB+20%", "PTB+30%"],
    );
    for policy in [PtbPolicy::ToOne, PtbPolicy::ToAll] {
        for n in CORE_COUNTS {
            let mut e_row = Vec::new();
            let mut a_row = Vec::new();
            // DVFS reference column.
            let mut es = Vec::new();
            let mut as_ = Vec::new();
            for bench in Benchmark::ALL {
                // Averages are over the benchmarks whose baseline AND
                // mechanism point both survived the sweep.
                let (Some(base), Some(r)) = (
                    find(bench, MechanismKind::None, n),
                    find(bench, MechanismKind::Dvfs, n),
                ) else {
                    continue;
                };
                es.push(normalized_energy_pct(base, r));
                as_.push(normalized_aopb_pct(base, r));
            }
            e_row.push(mean(&es));
            a_row.push(mean(&as_));
            for relax in RELAX {
                let mech = MechanismKind::PtbTwoLevel { policy, relax };
                let mut es = Vec::new();
                let mut as_ = Vec::new();
                for bench in Benchmark::ALL {
                    let (Some(base), Some(r)) =
                        (find(bench, MechanismKind::None, n), find(bench, mech, n))
                    else {
                        continue;
                    };
                    es.push(normalized_energy_pct(base, r));
                    as_.push(normalized_aopb_pct(base, r));
                }
                e_row.push(mean(&es));
                a_row.push(mean(&as_));
            }
            let label = format!("{n}Core_{}", policy.label());
            energy.row_f(&label, &e_row, 1);
            aopb.row_f(&label, &a_row, 1);
        }
    }
    let dropped = sweep.dropped_labels();
    emit_partial(&runner, "fig14_energy", &energy, &dropped);
    emit_partial(&runner, "fig14_aopb", &aopb, &dropped);
}
