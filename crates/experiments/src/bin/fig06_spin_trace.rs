//! **Figure 6** — Per-cycle power signature of a spinning core: an initial
//! burst of useful computation, then the power lowers and stabilises on a
//! plateau once the core enters the spin loop (the pattern PTB can exploit
//! as an indirect spin detector).
//!
//! Uses a purpose-built 2-thread workload: thread 0 grabs a lock and
//! computes a long critical section; thread 1 does a little work and then
//! spins on the lock.

use ptb_core::{MechanismKind, SimConfig, Simulation};
use ptb_experiments::{emit, ObsArgs, Runner};
use ptb_isa::{BlockGenConfig, LockId};
use ptb_metrics::Table;
use ptb_sync::PowerSpinDetector;
use ptb_workloads::{
    stmt::{flatten, Stmt},
    WorkloadSpec,
};

fn spin_workload() -> WorkloadSpec {
    let holder = vec![
        Stmt::Lock(LockId(0)),
        Stmt::Compute {
            profile: 0,
            count: 30_000,
        },
        Stmt::Unlock(LockId(0)),
    ];
    let spinner = vec![
        Stmt::Compute {
            profile: 0,
            count: 2_000,
        },
        Stmt::Lock(LockId(0)),
        Stmt::Compute {
            profile: 0,
            count: 200,
        },
        Stmt::Unlock(LockId(0)),
    ];
    WorkloadSpec {
        name: "spin-trace".into(),
        programs: vec![flatten(&holder), flatten(&spinner)],
        profiles: vec![BlockGenConfig::default()],
        lock_kind: Default::default(),
        seed: 11,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let cfg = SimConfig {
        n_cores: 2,
        mechanism: MechanismKind::None,
        capture_trace: true,
        ..SimConfig::default()
    };
    // This figure drives `run_spec` directly (custom 2-thread workload),
    // so it attaches the observer stack by hand rather than through the
    // runner; unobserved runs keep the zero-cost NullObserver path.
    let sim = Simulation::new(cfg);
    let report = if obs.enabled() {
        let mut stack = obs.stack();
        let r = sim
            .run_spec_observed(&spin_workload(), &mut stack)
            .expect("run");
        obs.finish(&stack);
        r
    } else {
        sim.run_spec(&spin_workload()).expect("run")
    };
    let trace = report.trace.as_ref().expect("trace");
    let spinner = 1usize;

    let mut table = Table::new(
        "Figure 6: per-cycle power of a spinning core (tokens/cycle, 200-cycle means)",
        &["window-start", "spinner-power", "holder-power"],
    );
    let window = 200usize;
    let limit = trace.len().min(20_000);
    for start in (0..limit.saturating_sub(window)).step_by(window) {
        let avg = |c: usize| -> f64 {
            let s: f32 = trace.per_core[c][start..start + window].iter().sum();
            f64::from(s) / window as f64
        };
        table.row_f(&start.to_string(), &[avg(spinner), avg(0)], 1);
    }
    emit(&runner, "fig06_spin_trace", &table);

    // The paper's claim: after the initial burst the spinner's power
    // stabilises well below busy-core power; the power-pattern detector
    // fires. "Busy" is measured on the lock *holder* mid-run (the
    // spinner's own first cycles are cold-start), the plateau on the
    // spinner mid-run.
    let mid = trace.len() / 2;
    let avg_of = |core: usize, range: std::ops::Range<usize>| -> f64 {
        let w = &trace.per_core[core][range];
        w.iter().map(|&x| f64::from(x)).sum::<f64>() / w.len().max(1) as f64
    };
    let busy_avg = avg_of(0, mid..mid + 2000);
    let spin_avg = avg_of(spinner, mid..mid + 2000);
    println!("holder busy avg = {busy_avg:.1} tokens/cycle, spinner plateau avg = {spin_avg:.1}");
    println!("spin/busy ratio = {:.2}", spin_avg / busy_avg);

    let mut det = PowerSpinDetector::new(report.budget.local * 0.8, 0.5, 500);
    let mut detected_at = None;
    for (i, &p) in trace.per_core[spinner].iter().enumerate() {
        if det.observe(f64::from(p)) && detected_at.is_none() {
            detected_at = Some(i);
            break;
        }
    }
    match detected_at {
        Some(i) => println!("power-pattern spin detector fired at cycle {i}"),
        None => println!("power-pattern spin detector did not fire"),
    }
}
