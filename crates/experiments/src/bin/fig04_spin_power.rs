//! **Figure 4** — Power wasted while spinning, normalized to total power,
//! for every benchmark at 2–16 cores.
//!
//! Expected shape (paper): grows with core count, ≈ 10 % on average at 16
//! cores — enough to matter, not enough to match a 50 % budget on its own
//! (the argument for balancing power generally rather than only exploiting
//! spinning).

use ptb_core::MechanismKind;
use ptb_experiments::{emit_partial, Job, ObsArgs, Runner};
use ptb_metrics::{mean, Table};
use ptb_workloads::Benchmark;

const CORE_COUNTS: [usize; 4] = [2, 4, 8, 16];

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let mut jobs = Vec::new();
    for bench in Benchmark::ALL {
        for n in CORE_COUNTS {
            jobs.push(Job::new(bench, MechanismKind::None, n));
        }
    }
    let sweep = obs.run_sweep(&runner, &jobs);

    let mut table = Table::new(
        "Figure 4: spinlock power as % of total power, per benchmark and core count",
        &["bench", "2", "4", "8", "16"],
    );
    let mut per_count: Vec<Vec<f64>> = vec![Vec::new(); CORE_COUNTS.len()];
    for (bi, bench) in Benchmark::ALL.iter().enumerate() {
        // The row spans one bench across all core counts; keep it only
        // when every count simulated (a gap would skew the column Avg.).
        let Some(row) = sweep.row(bi * CORE_COUNTS.len(), CORE_COUNTS.len()) else {
            continue;
        };
        let vals: Vec<f64> = row
            .iter()
            .enumerate()
            .map(|(ci, r)| {
                let v = r.spin_power_frac() * 100.0;
                per_count[ci].push(v);
                v
            })
            .collect();
        table.row_f(bench.name(), &vals, 2);
    }
    table.row_f(
        "Avg.",
        &per_count.iter().map(|c| mean(c)).collect::<Vec<_>>(),
        2,
    );
    emit_partial(&runner, "fig04_spin_power", &table, &sweep.dropped_labels());
}
