//! Quick probe: run one benchmark at one core count under every
//! mechanism and print the headline metrics (used for calibration and as
//! a smoke check before long sweeps).
//!
//! Args: `bench_one [benchmark] [cores]`, plus the shared observability
//! flags (`--trace-out`, `--metrics-out`, `--profile`, `--audit` — see
//! `ptb_experiments::obs`), which apply to the baseline run.

use ptb_core::report::{normalized_aopb_pct, normalized_energy_pct, slowdown_pct};
use ptb_core::{MechanismKind, PtbPolicy};
use ptb_experiments::{Job, ObsArgs, Runner};
use ptb_workloads::Benchmark;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let bench = args
        .get(1)
        .and_then(|s| Benchmark::from_name(s))
        .unwrap_or(Benchmark::Fft);
    let cores = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let t0 = std::time::Instant::now();
    let base = obs.run_one(&runner, Job::new(bench, MechanismKind::None, cores));
    let dt = t0.elapsed();
    println!(
        "{} {}c base: {} cycles, {} committed, {:.2}s wall, {:.2} Mcycles/s, mean power {:.0} (budget {:.0}), over-budget {:.0}%, spin-power {:.1}%",
        bench,
        cores,
        base.cycles,
        base.committed(),
        dt.as_secs_f64(),
        base.cycles as f64 / dt.as_secs_f64() / 1e6,
        base.mean_power,
        base.budget.global,
        base.over_budget_frac() * 100.0,
        base.spin_power_frac() * 100.0,
    );
    for mech in [
        MechanismKind::Dvfs,
        MechanismKind::Dfs,
        MechanismKind::TwoLevel,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToAll,
            relax: 0.0,
        },
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToOne,
            relax: 0.0,
        },
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::Dynamic,
            relax: 0.0,
        },
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToAll,
            relax: 0.2,
        },
    ] {
        let r = runner.run_one(Job::new(bench, mech, cores));
        println!(
            "  {:<24} energy {:+6.1}%  AoPB {:6.1}%  slowdown {:+6.1}%  stddev {:.0}",
            mech.label(),
            normalized_energy_pct(&base, &r),
            normalized_aopb_pct(&base, &r),
            slowdown_pct(&base, &r),
            r.power_stddev,
        );
    }
}
