//! **Figure 3** — Execution-time breakdown (lock-acquisition, lock-release,
//! barrier, busy) for every benchmark at 2, 4, 8 and 16 cores, no power
//! mechanism.
//!
//! Expected shape (paper): spinning time grows with core count;
//! unstructured/fluidanimate show large Lock-Acq fractions;
//! cholesky/blackscholes/swaptions/x264 show almost no contention.

use ptb_core::MechanismKind;
use ptb_experiments::{emit_partial, Job, ObsArgs, Runner};
use ptb_metrics::Table;
use ptb_workloads::Benchmark;

const CORE_COUNTS: [usize; 4] = [2, 4, 8, 16];

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let mut jobs = Vec::new();
    for bench in Benchmark::ALL {
        for n in CORE_COUNTS {
            jobs.push(Job::new(bench, MechanismKind::None, n));
        }
    }
    let sweep = obs.run_sweep(&runner, &jobs);

    let mut table = Table::new(
        "Figure 3: execution-time breakdown (%), per benchmark and core count",
        &["bench", "cores", "lock-acq", "lock-rel", "barrier", "busy"],
    );
    for (bi, bench) in Benchmark::ALL.iter().enumerate() {
        for (ci, n) in CORE_COUNTS.iter().enumerate() {
            // Points are independent here (no shared baseline), so drop
            // only the failed point, not the whole bench.
            let Some(r) = sweep.get(bi * CORE_COUNTS.len() + ci) else {
                continue;
            };
            let f = r.breakdown_frac();
            table.row(vec![
                bench.name().to_string(),
                n.to_string(),
                format!("{:.1}", f[1] * 100.0),
                format!("{:.1}", f[2] * 100.0),
                format!("{:.1}", f[3] * 100.0),
                format!("{:.1}", f[0] * 100.0),
            ]);
        }
    }
    emit_partial(&runner, "fig03_breakdown", &table, &sweep.dropped_labels());
}
