//! **Figure 7** — Worked example of token flow at a barrier: four cores
//! with 10-token local budgets; as each core reaches the barrier and drops
//! to spin power (4 tokens), its 6 spare tokens flow through the balancer
//! to the cores still computing.
//!
//! This drives the real `PtbMechanism` with scripted observations and
//! prints the per-cycle grants, reproducing the 12 → 16 → 28 effective
//! budget progression of the figure (scaled to our token units).

use ptb_core::budget::BudgetSpec;
use ptb_core::mechanisms::{ChipObs, CoreAction, CoreObs, Mechanism, PtbMechanism};
use ptb_core::{PtbConfig, PtbPolicy};
use ptb_experiments::{emit, Runner};
use ptb_isa::{BarrierId, ExecCtx};
use ptb_metrics::Table;
use ptb_power::PowerParams;
use ptb_uarch::CoreConfig;

fn main() {
    let runner = Runner::from_env();
    let n = 4;
    let budget = BudgetSpec::new(&PowerParams::default(), &CoreConfig::default(), n, 0.5);
    let mut ptb = PtbMechanism::new(n, PtbPolicy::ToAll, 0.0, PtbConfig::default());
    let mut actions = vec![CoreAction::default(); n];

    // Script: busy cores draw 1.4× local budget; spinning cores 0.4×.
    // Cores arrive at the barrier one by one, 40 cycles apart.
    let busy = budget.local * 1.4;
    let spin = budget.local * 0.4;
    let arrival = [40u64, 0, 80, 120]; // core 1 first (like Fig. 7a)

    let mut table = Table::new(
        format!(
            "Figure 7: PTB token flow at a barrier (local budget = {:.0} tokens/cycle)",
            budget.local
        ),
        &[
            "cycle",
            "spinning",
            "pool-offered",
            "grant/busy-core",
            "throttled-cores",
        ],
    );
    for cycle in 0..200u64 {
        let cores: Vec<CoreObs> = (0..n)
            .map(|c| {
                let spinning = cycle >= arrival[c];
                CoreObs {
                    tokens: if spinning { spin } else { busy },
                    ctx: if spinning {
                        ExecCtx::barrier_spin(BarrierId(0))
                    } else {
                        ExecCtx::BUSY
                    },
                    done: false,
                }
            })
            .collect();
        let chip: f64 = cores.iter().map(|c| c.tokens).sum::<f64>() + 0.0;
        let before = ptb.tokens_granted;
        let obs = ChipObs {
            cycle,
            chip_tokens: chip,
            uncore_tokens: 0.0,
            cores: &cores,
        };
        ptb.control(&obs, &budget, &mut actions);
        let granted = ptb.tokens_granted - before;
        if cycle % 10 == 0 {
            let spinning = (0..n).filter(|&c| cycle >= arrival[c]).count();
            let busy_cores = n - spinning;
            let throttled = actions.iter().filter(|a| a.throttle.active()).count();
            table.row(vec![
                cycle.to_string(),
                spinning.to_string(),
                format!("{granted:.0}"),
                if busy_cores > 0 {
                    format!("{:.0}", granted / busy_cores as f64)
                } else {
                    "-".into()
                },
                throttled.to_string(),
            ]);
        }
    }
    emit(&runner, "fig07_token_flow", &table);
    println!(
        "total tokens granted over the episode: {:.0}",
        ptb.tokens_granted
    );
}
