//! **Figure 7** — Worked example of token flow at a barrier: four cores
//! with 10-token local budgets; as each core reaches the barrier and drops
//! to spin power (4 tokens), its 6 spare tokens flow through the balancer
//! to the cores still computing.
//!
//! This drives the real `PtbMechanism` with scripted observations and
//! prints the per-cycle grants, reproducing the 12 → 16 → 28 effective
//! budget progression of the figure (scaled to our token units).
//!
//! Accepts the shared observability flags (`--trace-out`,
//! `--metrics-out`, `--audit` — see `ptb_experiments::obs`); because
//! this binary scripts the chip instead of simulating it, the observer
//! stack is fed by hand, which doubles as a demo of driving
//! `SimObserver` outside the simulator (`--profile` has no phases to
//! time here).

use ptb_core::budget::BudgetSpec;
use ptb_core::mechanisms::{ChipObs, CoreAction, CoreObs, Mechanism, PtbMechanism};
use ptb_core::{PtbConfig, PtbPolicy};
use ptb_experiments::{emit, ObsArgs, Runner};
use ptb_isa::{BarrierId, ExecCtx};
use ptb_metrics::Table;
use ptb_obs::{RunEnd, RunMeta, SimObserver, SpinKind, ThrottleObs};
use ptb_power::PowerParams;
use ptb_uarch::CoreConfig;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs_args = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let n = 4;
    let params = PowerParams::default();
    let budget = BudgetSpec::new(&params, &CoreConfig::default(), n, 0.5);
    let mut ptb = PtbMechanism::new(n, PtbPolicy::ToAll, 0.0, PtbConfig::default());
    let mut actions = vec![CoreAction::default(); n];
    let mut stack = obs_args.stack();
    let mut prev_throttle = vec![ptb_uarch::Throttle::none(); n];
    let mut energy_tokens = 0.0f64;
    if obs_args.enabled() {
        stack.on_run_start(&RunMeta {
            benchmark: "fig07-scripted-barrier".into(),
            mechanism: "ptb-toall".into(),
            n_cores: n,
            freq_hz: params.freq_hz,
            budget_tokens: budget.global,
        });
    }

    // Script: busy cores draw 1.4× local budget; spinning cores 0.4×.
    // Cores arrive at the barrier one by one, 40 cycles apart.
    let busy = budget.local * 1.4;
    let spin = budget.local * 0.4;
    let arrival = [40u64, 0, 80, 120]; // core 1 first (like Fig. 7a)

    let mut table = Table::new(
        format!(
            "Figure 7: PTB token flow at a barrier (local budget = {:.0} tokens/cycle)",
            budget.local
        ),
        &[
            "cycle",
            "spinning",
            "pool-offered",
            "grant/busy-core",
            "throttled-cores",
        ],
    );
    for cycle in 0..200u64 {
        let cores: Vec<CoreObs> = (0..n)
            .map(|c| {
                let spinning = cycle >= arrival[c];
                CoreObs {
                    tokens: if spinning { spin } else { busy },
                    ctx: if spinning {
                        ExecCtx::barrier_spin(BarrierId(0))
                    } else {
                        ExecCtx::BUSY
                    },
                    done: false,
                }
            })
            .collect();
        let chip: f64 = cores.iter().map(|c| c.tokens).sum::<f64>() + 0.0;
        let before = ptb.tokens_granted;
        let obs = ChipObs {
            cycle,
            chip_tokens: chip,
            uncore_tokens: 0.0,
            cores: &cores,
        };
        ptb.control(&obs, &budget, &mut actions);
        let granted = ptb.tokens_granted - before;
        if obs_args.enabled() {
            let toks: Vec<f64> = cores.iter().map(|c| c.tokens).collect();
            stack.on_cycle(cycle, &toks, 0.0, chip);
            energy_tokens += chip;
            for c in 0..n {
                if cycle == arrival[c] {
                    stack.on_spin_enter(cycle, c, SpinKind::Barrier);
                }
                if actions[c].throttle != prev_throttle[c] {
                    prev_throttle[c] = actions[c].throttle;
                    let th = actions[c].throttle;
                    stack.on_throttle_change(
                        cycle,
                        c,
                        ThrottleObs {
                            fetch_every: th.fetch_every,
                            issue_width: th.issue_width,
                            rob_cap: th.rob_cap,
                        },
                    );
                }
            }
        }
        if cycle % 10 == 0 {
            let spinning = (0..n).filter(|&c| cycle >= arrival[c]).count();
            let busy_cores = n - spinning;
            let throttled = actions.iter().filter(|a| a.throttle.active()).count();
            table.row(vec![
                cycle.to_string(),
                spinning.to_string(),
                format!("{granted:.0}"),
                if busy_cores > 0 {
                    format!("{:.0}", granted / busy_cores as f64)
                } else {
                    "-".into()
                },
                throttled.to_string(),
            ]);
        }
    }
    if obs_args.enabled() {
        stack.on_run_end(&RunEnd {
            cycles: 200,
            energy_tokens,
        });
        obs_args.finish(&stack);
    }
    emit(&runner, "fig07_token_flow", &table);
    println!(
        "total tokens granted over the episode: {:.0}",
        ptb.tokens_granted
    );
}
