//! **Figure 12** — Per-benchmark normalized energy and AoPB for a 16-core
//! CMP with the **dynamic policy selector** (§IV.B): ToOne while spinning
//! is lock-spinning, ToAll while it is barrier-spinning.
//!
//! Expected shape (paper): the best of both static policies — energy ≈
//! +2 % (1 % better than static ToAll, 3 % better than static ToOne) and
//! the lowest AoPB.

use ptb_core::PtbPolicy;
use ptb_experiments::{detail_figure, ObsArgs, Runner};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    detail_figure(
        &runner,
        &obs,
        PtbPolicy::Dynamic,
        0.0,
        "fig12_dynamic",
        "Figure 12",
    );
}
