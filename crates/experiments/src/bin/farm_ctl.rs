//! Operate on a `ptb-farm` result store without re-running a figure.
//!
//! ```text
//! farm_ctl status            # entries, store bytes, shard fanout,
//!                            # journal hit/miss traffic, pending +
//!                            # quarantined jobs
//! farm_ctl status --json     # the same as one machine-readable JSON
//!                            # object (for the serve smoke job and
//!                            # loadgen assertions)
//! farm_ctl resume            # run the journal's unfinished jobs, then
//!                            # retry the quarantine manifest
//! farm_ctl verify            # integrity-scan every entry, drop bad ones
//! farm_ctl gc                # verify + compact the journal
//! farm_ctl migrate           # rewrite every entry into the binary
//!                            # envelope (--format json converts back);
//!                            # flat legacy stores are sharded in place
//! farm_ctl workers           # fleet view of a running ptb-serve
//!                            # (--addr HOST:PORT, default
//!                            # 127.0.0.1:7878): live workers and
//!                            # outstanding leases
//! ```
//!
//! All subcommands honour `PTB_FARM_DIR` and the shared `--farm-dir
//! PATH` flag; `resume` uses `PTB_JOBS` worker threads and honours
//! `--job-timeout`. Jobs that fail again during a resume stay in (or
//! are added to) `failed.jsonl`; jobs that now succeed are removed from
//! it. Farm outcome counters are printed in the `farm.*` namespace via
//! `ptb-obs` (plus `farm.chaos.*` under fault injection).

use ptb_experiments::Runner;
use ptb_farm::{EntryFormat, ExecConfig};
use serde::{json, Map, Value};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    // `workers` talks to a running ptb-serve over HTTP and needs no
    // farm store of its own — handle it before the farm-open gate.
    if args.get(1).map(String::as_str) == Some("workers") {
        workers_cmd(&args);
        return;
    }
    let runner = Runner::from_env_args(&mut args);
    let Some(farm) = &runner.farm else {
        eprintln!("error: no farm available (PTB_NO_CACHE set, or store unopenable)");
        std::process::exit(2);
    };
    let cmd = args.get(1).map(String::as_str).unwrap_or("status");
    match cmd {
        "status" if args.iter().any(|a| a == "--json") => {
            print_status_json(farm);
        }
        "status" => {
            let disk = farm.store().disk_stats().unwrap_or_default();
            let pending = farm.pending().unwrap_or_default();
            let quarantined = farm.quarantine().load().unwrap_or_default();
            println!("farm store: {}", farm.dir().display());
            println!("  entries:     {}", disk.entries);
            println!(
                "  total bytes: {} ({:.2} MiB)",
                disk.total_bytes,
                disk.total_bytes as f64 / (1024.0 * 1024.0)
            );
            println!("  shards:      {}", disk.shards);
            match farm.journal_stats() {
                Ok(t) if !t.is_empty() => {
                    println!(
                        "  journal traffic: {} hits, {} misses, {} deduped, {} completed ({:.0}% hit rate; reset by gc)",
                        t.hits,
                        t.misses,
                        t.deduped,
                        t.completed,
                        if t.hits + t.misses > 0 {
                            100.0 * t.hits as f64 / (t.hits + t.misses) as f64
                        } else {
                            0.0
                        }
                    );
                }
                Ok(_) => println!("  journal traffic: none recorded"),
                Err(e) => eprintln!("warning: cannot read journal stats: {e}"),
            }
            println!("  pending:     {}", pending.len());
            for (key, job) in &pending {
                println!("    {} {}", &key[..12.min(key.len())], job.label());
            }
            println!("  quarantined: {}", quarantined.len());
            for e in &quarantined {
                println!(
                    "    {} {} [{}] {}",
                    &e.key[..12.min(e.key.len())],
                    e.label,
                    e.kind,
                    e.error
                );
            }
        }
        "resume" => {
            let exec = ExecConfig {
                watchdog: runner.job_timeout,
                ..ExecConfig::new(runner.jobs)
            };
            let pending = farm.pending().unwrap_or_default();
            let mut failed = 0usize;
            if pending.is_empty() {
                println!("no pending journal jobs");
            } else {
                println!("resuming {} unfinished jobs…", pending.len());
                match farm.try_resume(&exec) {
                    Ok(done) => {
                        for (key, outcome) in &done {
                            let short = &key[..12.min(key.len())];
                            match outcome {
                                Ok(report) => println!(
                                    "  {short} {}/{}c: {} cycles",
                                    report.benchmark, report.n_cores, report.cycles
                                ),
                                Err(e) => {
                                    println!("  {short} FAILED: {e}");
                                    failed += 1;
                                }
                            }
                        }
                        // Quarantine what failed so it is replayable.
                        for ((_, job), outcome) in pending.iter().zip(&done) {
                            if let Err(e) = &outcome.1 {
                                if let Err(qe) = farm.quarantine_job(job, e) {
                                    eprintln!("warning: cannot quarantine: {qe}");
                                }
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("error: resume failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            // Second leg: retry the quarantine manifest. Recovered jobs
            // drop out of failed.jsonl; persistent ones stay.
            match farm.retry_quarantined(&exec) {
                Ok((0, 0)) => println!("quarantine empty"),
                Ok((recovered, still)) => {
                    println!("quarantine: {recovered} recovered, {still} still failing");
                    failed += still;
                }
                Err(e) => {
                    eprintln!("error: quarantine retry failed: {e}");
                    std::process::exit(1);
                }
            }
            print_counters(farm);
            if failed > 0 {
                std::process::exit(1);
            }
        }
        "verify" | "gc" => {
            match farm.verify() {
                Ok((ok, dropped)) => {
                    println!("verified {ok} entries, dropped {dropped}");
                }
                Err(e) => {
                    eprintln!("error: verify failed: {e}");
                    std::process::exit(1);
                }
            }
            if cmd == "gc" {
                // Reopening compacts the journal when nothing is pending.
                let pending = farm.pending().unwrap_or_default();
                if pending.is_empty() {
                    if let Err(e) = ptb_farm::Journal::truncate(farm.dir().join("journal.jsonl")) {
                        eprintln!("warning: cannot compact journal: {e}");
                    } else {
                        println!("journal compacted");
                    }
                } else {
                    println!("journal kept: {} jobs still pending", pending.len());
                }
            }
            print_counters(farm);
        }
        "migrate" => {
            let target = match args.iter().position(|a| a == "--format") {
                Some(i) => {
                    let name = args.get(i + 1).map(String::as_str).unwrap_or("");
                    match EntryFormat::parse(name) {
                        Some(f) => f,
                        None => {
                            eprintln!("error: --format takes json|bin, got {name:?}");
                            std::process::exit(2);
                        }
                    }
                }
                None => EntryFormat::Binary,
            };
            match farm.store().migrate(target) {
                Ok(m) => {
                    println!(
                        "migrated to {target}: {} converted, {} already {target}, {} dropped",
                        m.converted, m.already, m.dropped
                    );
                }
                Err(e) => {
                    eprintln!("error: migrate failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!(
                "error: unknown subcommand {other:?} (status|resume|verify|gc|migrate|workers)"
            );
            std::process::exit(2);
        }
    }
}

/// `workers`: GET `/v1/workers` from a running `ptb-serve` and print
/// the fleet — live workers and outstanding leases. `--json` passes
/// the server's object through verbatim.
fn workers_cmd(args: &[String]) {
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let sock: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: bad --addr {addr:?}: {e}");
            std::process::exit(2);
        }
    };
    let (status, body) = match ptb_serve::http_call(sock, "GET", "/v1/workers", None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot reach ptb-serve at {addr}: {e}");
            std::process::exit(1);
        }
    };
    if status != 200 {
        eprintln!("error: GET /v1/workers: HTTP {status}: {body}");
        std::process::exit(1);
    }
    if args.iter().any(|a| a == "--json") {
        println!("{body}");
        return;
    }
    let v = match json::parse(&body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: bad /v1/workers JSON: {e}");
            std::process::exit(1);
        }
    };
    let arr = |key: &str| -> Vec<Value> {
        v.as_object()
            .and_then(|o| o.get(key))
            .and_then(|x| match x {
                Value::Array(a) => Some(a.clone()),
                _ => None,
            })
            .unwrap_or_default()
    };
    let field = |item: &Value, key: &str| -> String {
        item.as_object()
            .and_then(|o| o.get(key))
            .map(|x| match x {
                Value::Str(s) => s.clone(),
                other => json::to_string(other),
            })
            .unwrap_or_else(|| "-".into())
    };
    let remote_active = v
        .as_object()
        .and_then(|o| o.get("remote_active"))
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let workers = arr("workers");
    println!(
        "fleet at {addr}: {} workers ({})",
        workers.len(),
        if remote_active {
            "remote execution active"
        } else {
            "local-only"
        }
    );
    for w in &workers {
        println!(
            "  {} live={} last_seen={}ms claimed={} completed={} failed={}",
            field(w, "name"),
            field(w, "live"),
            field(w, "last_seen_ms"),
            field(w, "claimed"),
            field(w, "completed"),
            field(w, "failed")
        );
    }
    let leases = arr("leases");
    println!("leases: {}", leases.len());
    for l in &leases {
        println!(
            "  {} -> {} expires_in={}ms heartbeats={}",
            {
                let k = field(l, "key");
                k[..12.min(k.len())].to_string()
            },
            field(l, "worker"),
            field(l, "expires_in_ms"),
            field(l, "heartbeats")
        );
    }
}

/// `status --json`: one JSON object on stdout, nothing else — consumed
/// by the CI serve-smoke job and by loadgen's zero-loss assertions.
fn print_status_json(farm: &ptb_farm::Farm) {
    let disk = farm.store().disk_stats().unwrap_or_default();
    let pending = farm.pending().unwrap_or_default();
    let quarantined = farm.quarantine().load().unwrap_or_default();
    let traffic = farm.journal_stats().unwrap_or_default();
    let mut obj = Map::new();
    obj.insert("dir".into(), Value::Str(farm.dir().display().to_string()));
    obj.insert("entries".into(), Value::U64(disk.entries));
    obj.insert("total_bytes".into(), Value::U64(disk.total_bytes));
    obj.insert("shards".into(), Value::U64(disk.shards));
    obj.insert(
        "store_format".into(),
        Value::Str(farm.store().format().to_string()),
    );
    let mut journal = Map::new();
    journal.insert("hits".into(), Value::U64(traffic.hits));
    journal.insert("misses".into(), Value::U64(traffic.misses));
    journal.insert("deduped".into(), Value::U64(traffic.deduped));
    journal.insert("completed".into(), Value::U64(traffic.completed));
    obj.insert("journal".into(), Value::Object(journal));
    obj.insert("pending".into(), Value::U64(pending.len() as u64));
    obj.insert("quarantined".into(), Value::U64(quarantined.len() as u64));
    println!("{}", json::to_string(&Value::Object(obj)));
}

fn print_counters(farm: &ptb_farm::Farm) {
    let mut registry = ptb_obs::CounterRegistry::new();
    registry.merge(&farm.counters());
    print!("{}", registry.to_table("farm counters").to_text());
}
