//! Operate on a `ptb-farm` result store without re-running a figure.
//!
//! ```text
//! farm_ctl status            # entry count, pending jobs, store location
//! farm_ctl resume            # run exactly the journal's unfinished jobs
//! farm_ctl verify            # integrity-scan every entry, drop bad ones
//! farm_ctl gc                # verify + compact the journal
//! ```
//!
//! All subcommands honour `PTB_FARM_DIR` and the shared `--farm-dir
//! PATH` flag; `resume` uses `PTB_JOBS` worker threads. Farm outcome
//! counters are printed in the `farm.*` namespace via `ptb-obs`.

use ptb_experiments::Runner;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let runner = Runner::from_env_args(&mut args);
    let Some(farm) = &runner.farm else {
        eprintln!("error: no farm available (PTB_NO_CACHE set, or store unopenable)");
        std::process::exit(2);
    };
    let cmd = args.get(1).map(String::as_str).unwrap_or("status");
    match cmd {
        "status" => {
            let keys = farm.store().keys().unwrap_or_default();
            let pending = farm.pending().unwrap_or_default();
            println!("farm store: {}", farm.dir().display());
            println!("  entries:  {}", keys.len());
            println!("  pending:  {}", pending.len());
            for (key, job) in &pending {
                println!("    {} {}", &key[..12.min(key.len())], job.label());
            }
        }
        "resume" => {
            let pending = farm.pending().unwrap_or_default();
            if pending.is_empty() {
                println!("nothing to resume");
                return;
            }
            println!("resuming {} unfinished jobs…", pending.len());
            match farm.resume(runner.jobs) {
                Ok(done) => {
                    for (key, report) in &done {
                        println!(
                            "  {} {}/{}c: {} cycles",
                            &key[..12.min(key.len())],
                            report.benchmark,
                            report.n_cores,
                            report.cycles
                        );
                    }
                    print_counters(farm);
                }
                Err(e) => {
                    eprintln!("error: resume failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "verify" | "gc" => {
            match farm.verify() {
                Ok((ok, dropped)) => {
                    println!("verified {ok} entries, dropped {dropped}");
                }
                Err(e) => {
                    eprintln!("error: verify failed: {e}");
                    std::process::exit(1);
                }
            }
            if cmd == "gc" {
                // Reopening compacts the journal when nothing is pending.
                let pending = farm.pending().unwrap_or_default();
                if pending.is_empty() {
                    if let Err(e) = ptb_farm::Journal::truncate(farm.dir().join("journal.jsonl")) {
                        eprintln!("warning: cannot compact journal: {e}");
                    } else {
                        println!("journal compacted");
                    }
                } else {
                    println!("journal kept: {} jobs still pending", pending.len());
                }
            }
            print_counters(farm);
        }
        other => {
            eprintln!("error: unknown subcommand {other:?} (status|resume|verify|gc)");
            std::process::exit(2);
        }
    }
}

fn print_counters(farm: &ptb_farm::Farm) {
    let mut registry = ptb_obs::CounterRegistry::new();
    registry.merge(&farm.stats().counters());
    print!("{}", registry.to_table("farm counters").to_text());
}
