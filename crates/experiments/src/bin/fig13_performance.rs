//! **Figure 13** — Per-benchmark performance slowdown for a 16-core CMP
//! with the dynamic policy selector (plus DVFS/DFS/2-level references).
//!
//! Expected shape (paper): PTB within ~2 % of DVFS on average;
//! unstructured is the benchmark most hurt by the micro-architectural
//! mechanisms.

use ptb_core::PtbPolicy;
use ptb_experiments::{detail_figure, emit_partial, slowdown_table, ObsArgs, Runner};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let (jobs, sweep) = detail_figure(
        &runner,
        &obs,
        PtbPolicy::Dynamic,
        0.0,
        "fig13_detail",
        "Figure 13 companion",
    );
    let table = slowdown_table(
        &jobs,
        &sweep,
        "Figure 13: performance slowdown %, 16-core, dynamic policy selector",
    );
    emit_partial(
        &runner,
        "fig13_performance",
        &table,
        &sweep.dropped_labels(),
    );
}
