//! **Figure 2** — Normalized energy (left) and AoPB (right) for a 16-core
//! CMP with a 50 % power budget, using the *naive* equal split of the
//! global budget: DVFS, DFS and the 2-level hybrid applied per core.
//!
//! Expected shape (paper): energies within ±10 % of baseline; average AoPB
//! stuck around 40–50 % (2-level best), with Ocean/Radix especially bad
//! (≈ 70–80 %) because synchronisation makes per-core budgets the wrong
//! unit — the motivation for PTB.

use ptb_core::MechanismKind;
use ptb_experiments::{emit_partial, Job, ObsArgs, Runner};
use ptb_metrics::{mean, Table};
use ptb_workloads::Benchmark;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    let n = runner.default_cores();
    let mechs = [
        MechanismKind::Dvfs,
        MechanismKind::Dfs,
        MechanismKind::TwoLevel,
    ];

    let mut jobs = Vec::new();
    for bench in Benchmark::ALL {
        jobs.push(Job::new(bench, MechanismKind::None, n));
        for m in mechs {
            jobs.push(Job::new(bench, m, n));
        }
    }
    let sweep = obs.run_sweep(&runner, &jobs);

    let mut energy = Table::new(
        format!(
            "Figure 2 (left): normalized energy delta %, {n}-core CMP, 50% budget, naive split"
        ),
        &["bench", "DVFS", "DFS", "2level"],
    );
    let mut aopb = Table::new(
        format!("Figure 2 (right): normalized AoPB %, {n}-core CMP, 50% budget, naive split"),
        &["bench", "DVFS", "DFS", "2level"],
    );
    let stride = 1 + mechs.len();
    let mut cols_energy = vec![Vec::new(); mechs.len()];
    let mut cols_aopb = vec![Vec::new(); mechs.len()];
    for (bi, bench) in Benchmark::ALL.iter().enumerate() {
        // Complete rows only: a bench whose baseline or any mechanism
        // point was quarantined is dropped (named in the footer).
        let Some(row) = sweep.row(bi * stride, stride) else {
            continue;
        };
        let base = row[0];
        let mut evals = Vec::new();
        let mut avals = Vec::new();
        for (mi, _) in mechs.iter().enumerate() {
            let r = row[1 + mi];
            let e = ptb_core::report::normalized_energy_pct(base, r);
            let a = ptb_core::report::normalized_aopb_pct(base, r);
            evals.push(e);
            avals.push(a);
            cols_energy[mi].push(e);
            cols_aopb[mi].push(a);
        }
        energy.row_f(bench.name(), &evals, 1);
        aopb.row_f(bench.name(), &avals, 1);
    }
    energy.row_f(
        "Avg.",
        &cols_energy.iter().map(|c| mean(c)).collect::<Vec<_>>(),
        1,
    );
    aopb.row_f(
        "Avg.",
        &cols_aopb.iter().map(|c| mean(c)).collect::<Vec<_>>(),
        1,
    );

    let dropped = sweep.dropped_labels();
    emit_partial(&runner, "fig02_energy", &energy, &dropped);
    emit_partial(&runner, "fig02_aopb", &aopb, &dropped);
}
