//! **Figure 11** — Per-benchmark normalized energy and AoPB for a 16-core
//! CMP with the **ToOne** PTB policy.
//!
//! Expected shape (paper): slightly worse than ToAll on average, but
//! better on lock-bound, imbalanced programs (unstructured, waternsq)
//! where giving all spare power to the critical-section owner helps most.

use ptb_core::PtbPolicy;
use ptb_experiments::{detail_figure, ObsArgs, Runner};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    detail_figure(
        &runner,
        &obs,
        PtbPolicy::ToOne,
        0.0,
        "fig11_toone",
        "Figure 11",
    );
}
