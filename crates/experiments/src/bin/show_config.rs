//! **Tables 1 & 2** — print the simulated CMP configuration and the
//! benchmark roster, as configured in this reproduction.

use ptb_core::budget::BudgetSpec;
use ptb_core::SimConfig;
use ptb_experiments::{emit, ObsArgs, Runner};
use ptb_metrics::Table;
use ptb_workloads::{Benchmark, Scale};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    if obs.enabled() {
        eprintln!("warning: observability flags ignored: show_config does not simulate");
    }
    let runner = Runner::from_env_args(&mut args);
    let cfg = SimConfig::default();

    let mut t1 = Table::new(
        "Table 1: simulated CMP configuration",
        &["parameter", "value"],
    );
    let kv = |t: &mut Table, k: &str, v: String| {
        t.row(vec![k.to_string(), v]);
    };
    kv(
        &mut t1,
        "Frequency",
        format!("{:.0} MHz", cfg.power.freq_hz / 1e6),
    );
    kv(
        &mut t1,
        "Instruction window (ROB)",
        format!("{} entries", cfg.core.rob_size),
    );
    kv(
        &mut t1,
        "Load/store queue",
        format!("{} entries", cfg.core.lsq_size),
    );
    kv(
        &mut t1,
        "Decode width",
        format!("{} inst/cycle", cfg.core.decode_width),
    );
    kv(
        &mut t1,
        "Issue width",
        format!("{} inst/cycle", cfg.core.issue_width),
    );
    kv(
        &mut t1,
        "Functional units",
        format!(
            "{} IntAlu; {} IntMult; {} FP Alu; {} FP Mult",
            cfg.core.int_alu, cfg.core.int_mul, cfg.core.fp_alu, cfg.core.fp_mul
        ),
    );
    kv(
        &mut t1,
        "Front-end depth",
        format!("{} stages modelled", cfg.core.frontend_depth),
    );
    kv(
        &mut t1,
        "Branch predictor",
        "gshare, 16-bit history, 64KB".into(),
    );
    kv(
        &mut t1,
        "Coherence protocol",
        "MOESI (blocking directory)".into(),
    );
    kv(
        &mut t1,
        "Memory latency",
        format!("{} cycles", cfg.mem.mem_latency),
    );
    kv(&mut t1, "L1 I/D cache", "64KB, 2-way, 1 cycle".into());
    kv(&mut t1, "L2 cache", "1MB/core, 4-way, 12 cycles".into());
    kv(&mut t1, "Topology", "2D mesh".into());
    kv(&mut t1, "Link latency", "4 cycles".into());
    kv(&mut t1, "Flit size", "4 bytes".into());
    kv(&mut t1, "Link bandwidth", "1 flit/cycle".into());
    let budget = BudgetSpec::new(&cfg.power, &cfg.core, 16, 0.5);
    kv(
        &mut t1,
        "Peak chip power (16c)",
        format!(
            "{:.0} tokens/cycle ({:.1} W)",
            budget.peak_chip,
            cfg.power.watts(budget.peak_chip)
        ),
    );
    kv(
        &mut t1,
        "Global budget (50%)",
        format!(
            "{:.0} tokens/cycle ({:.1} W)",
            budget.global,
            cfg.power.watts(budget.global)
        ),
    );
    emit(&runner, "table1_config", &t1);

    let mut t2 = Table::new(
        "Table 2: benchmarks and modelled working sets",
        &[
            "benchmark",
            "suite",
            "compute insts/thread (Small)",
            "lock sites",
            "barriers",
        ],
    );
    for bench in Benchmark::ALL {
        let spec = bench.spec(16, Scale::Small);
        let suite = match bench {
            Benchmark::Blackscholes
            | Benchmark::Fluidanimate
            | Benchmark::Swaptions
            | Benchmark::X264 => "PARSEC",
            _ => "SPLASH-2",
        };
        let prog = &spec.programs[0];
        let locks = prog
            .iter()
            .filter(|s| matches!(s, ptb_workloads::FlatStmt::Lock(_)))
            .count();
        let barriers = prog
            .iter()
            .filter(|s| matches!(s, ptb_workloads::FlatStmt::Barrier(_)))
            .count();
        t2.row(vec![
            bench.name().to_string(),
            suite.to_string(),
            format!("{}", spec.total_compute() / spec.n_threads() as u64),
            locks.to_string(),
            barriers.to_string(),
        ]);
    }
    emit(&runner, "table2_benchmarks", &t2);
}
