//! `sim_check` — fuzz the simulator against its invariant oracles.
//!
//! Draws N random cases from a seed (see `ptb_validate::gen`), runs the
//! full oracle suite on each (token conservation, energy integral,
//! report arithmetic, budget compliance, determinism), periodically adds
//! the metamorphic checks (budget monotonicity, core scaling), and runs
//! the closed-form reference model first. On the first violation the
//! case is greedily shrunk and printed as replayable JSON (both the
//! compact `CaseSpec` and the materialised `SimConfig` canonical form),
//! written to `--out`, and the process exits nonzero — CI uploads the
//! JSON as an artifact.
//!
//! ```text
//! sim_check [--cases N] [--seed S] [--metamorphic-every K] [--out DIR]
//!           [--replay FILE]
//! ```
//!
//! `--seed` accepts decimal, `0x` hex, or any other string (hashed
//! deterministically, so `--seed 0xPTB` is a valid spelling). `--replay`
//! re-runs stored case JSON verbosely instead of fuzzing; it accepts a
//! bare `CaseSpec`, a `sim_check_failure.json` envelope, or a farm
//! quarantine manifest (`failed.jsonl`) whose entries are replayed one
//! by one at test scale under the full oracle suite.

use ptb_farm::QuarantineEntry;
use ptb_validate::TestRng;
use ptb_validate::{
    arbitrary_case, check_budget_monotonicity, check_case, check_core_scaling,
    check_mechanism_vs_baseline, check_reference, shrink, CaseSpec, Violation, WorkloadDesc,
};
use std::io::Write as _;
use std::process::ExitCode;

/// Evaluation budget for shrinking, in oracle invocations (each one is
/// one or two simulations of an ever-smaller case).
const SHRINK_STEPS: usize = 120;

fn parse_seed(s: &str) -> u64 {
    if let Ok(n) = s.parse::<u64>() {
        return n;
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(n) = u64::from_str_radix(hex, 16) {
            return n;
        }
    }
    // Any other spelling: FNV-1a, stable across runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct Args {
    cases: u64,
    seed: u64,
    metamorphic_every: u64,
    out: String,
    replay: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 64,
        seed: parse_seed("0xPTB"),
        metamorphic_every: 8,
        out: ".".into(),
        replay: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--cases" => {
                args.cases = need(i)?.parse().map_err(|e| format!("--cases: {e}"))?;
                i += 2;
            }
            "--seed" => {
                args.seed = parse_seed(need(i)?);
                i += 2;
            }
            "--metamorphic-every" => {
                args.metamorphic_every = need(i)?
                    .parse()
                    .map_err(|e| format!("--metamorphic-every: {e}"))?;
                i += 2;
            }
            "--out" => {
                args.out = need(i)?.clone();
                i += 2;
            }
            "--replay" => {
                args.replay = Some(need(i)?.clone());
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: sim_check [--cases N] [--seed S] [--metamorphic-every K] \
                     [--out DIR] [--replay FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

/// Map a quarantined farm job onto the oracle harness. The mapping
/// deliberately re-materialises at `Scale::Test` (CaseSpec's fixed
/// scale): the point of a quarantine replay is to interrogate the
/// configuration that failed under the full oracle suite cheaply, not
/// to reproduce its exact (possibly hours-long) run length.
fn case_from_quarantine(e: &QuarantineEntry) -> CaseSpec {
    CaseSpec {
        n_cores: e.job.config.n_cores,
        budget_frac: e.job.config.budget_frac,
        mechanism: e.job.config.mechanism,
        wire_bits: e.job.config.ptb.wire_bits,
        latency_override: e.job.config.ptb.latency_override,
        cluster_size: e.job.config.ptb.cluster_size,
        workload: WorkloadDesc::Bench(e.job.bench),
        seed: 0,
    }
}

/// Parse a `--replay` file into labelled cases. Accepts, in order:
/// a bare single-line `CaseSpec`, a `sim_check_failure.json` envelope
/// (`{"case": …}`), or a quarantine manifest — JSONL where each line
/// is a `QuarantineEntry` carrying a replayable `FarmJob`.
fn parse_replay_file(text: &str) -> Result<Vec<(String, CaseSpec)>, String> {
    if let Ok(case) = CaseSpec::from_json(text.trim()) {
        return Ok(vec![("case".into(), case)]);
    }
    if let Ok(v) = serde::json::parse(text) {
        if let Some(c) = v.get("case") {
            let case = CaseSpec::from_json(&serde::json::to_string(c))?;
            return Ok(vec![("case".into(), case)]);
        }
        if v.get("job").is_some() {
            let e = QuarantineEntry::from_value(&v)?;
            return Ok(vec![(e.label.clone(), case_from_quarantine(&e))]);
        }
    }
    // JSONL quarantine manifest: one entry per line, torn tails skipped.
    let cases: Vec<(String, CaseSpec)> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde::json::parse(l).ok())
        .filter_map(|v| QuarantineEntry::from_value(&v).ok())
        .map(|e| (e.label.clone(), case_from_quarantine(&e)))
        .collect();
    if cases.is_empty() {
        return Err("not a CaseSpec, failure envelope, or quarantine manifest".into());
    }
    Ok(cases)
}

/// All oracles for one case; metamorphic checks are opt-in because they
/// cost extra simulations.
fn check_all(case: &CaseSpec, metamorphic: bool) -> Vec<Violation> {
    let mut v = check_case(case);
    if metamorphic {
        v.extend(check_budget_monotonicity(case));
        v.extend(check_core_scaling(case));
        v.extend(check_mechanism_vs_baseline(case));
    }
    v
}

fn report_failure(args: &Args, label: &str, case: &CaseSpec, violations: &[Violation]) {
    eprintln!("\nFAIL [{label}]: {} violation(s)", violations.len());
    for v in violations {
        eprintln!("  {v}");
    }
    let failing: Vec<&str> = violations.iter().map(|v| v.oracle).collect();
    eprintln!("shrinking (budget {SHRINK_STEPS} oracle runs)...");
    let metamorphic = failing.iter().any(|o| {
        o.starts_with("budget-monotonic") || o.starts_with("mechanism-") || *o == "core-scaling"
    });
    let shrunk = shrink(case, SHRINK_STEPS, |c| {
        check_all(c, metamorphic)
            .iter()
            .any(|v| failing.contains(&v.oracle))
    });
    let final_violations = check_all(&shrunk, metamorphic);
    eprintln!("\nshrunk case (replay with `sim_check --replay <file>`):");
    println!("{}", shrunk.to_json());
    eprintln!("\nmaterialised SimConfig (canonical JSON):");
    println!("{}", shrunk.config().canonical_json());
    eprintln!("\nviolations on the shrunk case:");
    for v in &final_violations {
        eprintln!("  {v}");
    }
    let path = std::path::Path::new(&args.out).join("sim_check_failure.json");
    let mut body = String::new();
    body.push_str("{\n  \"case\": ");
    body.push_str(&shrunk.to_json());
    body.push_str(",\n  \"sim_config\": ");
    body.push_str(&shrunk.config().canonical_json());
    body.push_str(",\n  \"violations\": [");
    for (i, v) in final_violations.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&serde::json::to_string(&format!("{v}")));
    }
    body.push_str("]\n}\n");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
        Ok(()) => eprintln!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sim_check: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sim_check: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let cases = match parse_replay_file(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("sim_check: cannot parse {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut failed = 0usize;
        for (label, case) in &cases {
            eprintln!("replaying [{label}] {}", case.to_json());
            let violations = check_all(case, true);
            if violations.is_empty() {
                eprintln!("  PASSED: all oracles hold");
            } else {
                failed += 1;
                eprintln!("  FAILED:");
                for v in &violations {
                    eprintln!("    {v}");
                }
            }
        }
        if failed == 0 {
            eprintln!("replay PASSED: {} case(s), all oracles hold", cases.len());
            return ExitCode::SUCCESS;
        }
        eprintln!("replay FAILED: {failed}/{} case(s)", cases.len());
        return ExitCode::FAILURE;
    }

    // Differential reference model first: cheapest, most precise.
    eprintln!("sim_check: reference model (3 sizes)...");
    for (work, s) in [(512u64, 1u64), (2048, 2), (10_000, 3)] {
        let v = check_reference(work, s ^ args.seed);
        if !v.is_empty() {
            let case = ptb_validate::reference_case(work, s ^ args.seed);
            report_failure(&args, "reference", &case, &v);
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "sim_check: fuzzing {} cases from seed {:#x} (metamorphic every {})...",
        args.cases, args.seed, args.metamorphic_every
    );
    let mut rng = TestRng::new(args.seed);
    for i in 0..args.cases {
        let case = arbitrary_case(&mut rng);
        let metamorphic = args.metamorphic_every > 0 && i % args.metamorphic_every == 0;
        let violations = check_all(&case, metamorphic);
        if !violations.is_empty() {
            report_failure(&args, &format!("case {i}"), &case, &violations);
            return ExitCode::FAILURE;
        }
        if (i + 1) % 8 == 0 || i + 1 == args.cases {
            eprintln!("  {}/{} ok", i + 1, args.cases);
        }
    }
    eprintln!("sim_check: all oracles hold");
    ExitCode::SUCCESS
}
