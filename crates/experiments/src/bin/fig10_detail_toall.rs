//! **Figure 10** — Per-benchmark normalized energy and AoPB for a 16-core
//! CMP with the **ToAll** PTB policy (plus DVFS/DFS/2-level references).
//!
//! Expected shape (paper): PTB AoPB near 10 % on average (Barnes/Ocean
//! drop from ~70 % under the naive split to a few percent); energy within
//! a few percent of baseline, worse on heavily thread-dependent programs
//! (unstructured).

use ptb_core::PtbPolicy;
use ptb_experiments::{detail_figure, ObsArgs, Runner};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    let runner = Runner::from_env_args(&mut args);
    detail_figure(
        &runner,
        &obs,
        PtbPolicy::ToAll,
        0.0,
        "fig10_toall",
        "Figure 10",
    );
}
